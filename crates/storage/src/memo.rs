//! The view memo: incremental re-evaluation of registered expressions.
//!
//! Re-running the same query sentence after every `modify_state` is the
//! dominant access pattern the paper's transaction-time model invites
//! ("what does this view look like *now*?"), and it is exactly the
//! pattern the plain evaluator serves worst: each evaluation recomputes
//! every operator from scratch. The [`ViewRegistry`] turns that cost
//! structure around:
//!
//! * **Identity.** Expressions are hash-consed
//!   ([`txtime_optimizer::ExprInterner`]) into a DAG of [`ExprId`]s, so
//!   structurally identical (sub)expressions — within one sentence or
//!   across sentences — share one node and therefore one cached state.
//! * **Validity.** Each cached node carries a *stamp* per relation its
//!   subtree reads: the relation's id (fresh per `define_relation`, so a
//!   deleted-and-redefined relation can never be confused with its
//!   predecessor) and the transaction number of its latest version.
//!   Commands are the sole mutators of the database state and
//!   transaction numbers increase strictly, so equal stamps imply the
//!   cached state is *the* state the expression denotes — including for
//!   `ρ(I, n)` leaves with `n` in the past, which are immutable once the
//!   clock passes `n`.
//! * **Maintenance.** `modify_state` *queues* an O(1) record — the
//!   relation's state handles before and after the append — via
//!   [`ViewRegistry::queue_modify`]; nothing is diffed or walked on the
//!   write path. On the next memo read ([`ViewRegistry::decide`] or
//!   [`ViewRegistry::eval_and_register`]) the queue is flushed: each
//!   relation's span of queued modifies folds into a single
//!   [`StateDelta`] (`between(first_prev, last_new)` — one linear merge
//!   over the sorted runs), and the registry walks its cached nodes in
//!   ascending id order (ids are topological: children precede parents),
//!   updating each affected view with a per-operator delta rule —
//!   O(changes · log n) single-pass work — falling back to a targeted
//!   re-evaluation from the (already updated) cached children when a
//!   rule does not apply: ×/×̂/δ over the [`delta_beats_reeval`]
//!   threshold, or a child whose own delta was unknown. A write-heavy
//!   burst between reads therefore pays one propagation, not one per
//!   write (the BENCH_5 `memo_modify` write-amplification fix).
//!
//! Node-wise evaluation applies the plain operators rather than the
//! pushdown shapes the engine's un-memoized path uses; the two are
//! observationally identical (value *and* error), which is exactly what
//! the pushdown equivalence tests in [`crate::equiv`] and the memo
//! differential tests pin. Nodes whose evaluation errors are never
//! cached — the next lookup reproduces the error from scratch,
//! identically.
//!
//! ## Delta-rule soundness
//!
//! Every propagated node delta maintains one invariant (and assumes it
//! of its children's deltas): each listed addition/upsert is truly
//! present in the node's *new* state with the listed valid time, each
//! listed removal is truly absent, and every tuple whose membership or
//! valid time actually changed is listed. Deltas may be *supersets* of
//! the actual change (a listed add that was already present); the apply
//! kernels ([`SnapshotState::with_delta`],
//! [`HistoricalState::with_delta`]) are tolerant of exactly that, and
//! every rule below consults the children's *new* states for the final
//! membership truth rather than trusting the lists alone.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::{Mutex, MutexGuard};

use txtime_core::{EvalError, Expr, StateSource, StateValue, TransactionNumber, TxSpec};
use txtime_exec::{MemoCounters, MemoStats};
use txtime_historical::{Entry, HistoricalState, TemporalElement};
use txtime_optimizer::{delta_beats_reeval, ExprId, ExprInterner, ExprNode, NodeOp};
use txtime_snapshot::{SnapshotState, Tuple};

use crate::delta::StateDelta;

/// Default maximum number of registered root expressions.
pub const DEFAULT_MEMO_CAPACITY: usize = 64;

/// Default number of (missed) evaluations before an expression is
/// registered: the first evaluation of a throwaway query should not pay
/// for caching it.
pub const DEFAULT_REGISTER_AFTER: u32 = 2;

/// A relation's validity stamp: its catalog id and the transaction
/// number of its latest committed version.
pub type RelStamp = (u64, TransactionNumber);

/// What the memo needs from an engine beyond [`StateSource`]: the
/// current stamp of each defined relation (`None` when undefined or
/// still empty — nothing evaluable caches against such a relation).
pub trait StampSource: StateSource {
    /// The stamp of `ident`, if it is defined and has a version.
    fn relation_stamp(&self, ident: &str) -> Option<RelStamp>;
}

/// The registry's answer to "should this evaluation use the memo?".
#[derive(Debug)]
pub enum MemoDecision {
    /// A cached, stamp-valid state — the evaluation is already done.
    Hit(StateValue),
    /// Evaluate; if `register`, do it through
    /// [`ViewRegistry::eval_and_register`] so the result (and every
    /// subexpression) is cached for next time.
    Evaluate {
        /// Whether the expression crossed the registration threshold.
        register: bool,
    },
}

/// One cached node: its evaluated state and the stamps it is valid
/// under.
struct NodeView {
    state: StateValue,
    /// One stamp per distinct relation the node's subtree reads.
    stamps: Vec<(String, RelStamp)>,
}

impl NodeView {
    fn valid(&self, src: &dyn StampSource) -> bool {
        self.stamps
            .iter()
            .all(|(ident, stamp)| src.relation_stamp(ident) == Some(*stamp))
    }

    fn set_stamp(&mut self, ident: &str, stamp: RelStamp) {
        for (i, s) in &mut self.stamps {
            if i == ident {
                *s = stamp;
                return;
            }
        }
    }
}

/// How one cached node fared during a propagation pass.
enum Status {
    /// Value unchanged; only the stamp moved (e.g. `ρ(I, n)` with `n`
    /// before the new transaction).
    Bumped,
    /// Value replaced. `Some` carries the node's own delta for its
    /// parents' rules; `None` means the node was recomputed and its
    /// delta is unknown (parents recompute too).
    Changed(Option<StateDelta>),
    /// View dropped (its recomputation errored); parents drop as well.
    Dropped,
}

/// What a child contributed to a parent's delta rule.
type SnapDelta<'a> = (&'a [Tuple], &'a [Tuple]);
type HistDelta<'a> = (&'a [Entry], &'a [Tuple]);

/// One relation's queued-but-unflushed span of `modify_state`s: the
/// state handles before the first queued modify and after the last,
/// plus the commit transactions bracketing the span. Enqueueing is O(1)
/// (states are reference-counted handles); the diff is computed once,
/// at flush.
struct PendingSpan {
    rel_id: u64,
    prev: StateValue,
    new: StateValue,
    first_tx: TransactionNumber,
    last_tx: TransactionNumber,
}

struct Inner {
    interner: ExprInterner,
    /// Cached states, keyed by node id. Iterating the map ascending is a
    /// valid bottom-up propagation order (ids are topological).
    views: BTreeMap<ExprId, NodeView>,
    /// Registered roots with their last-use tick (LRU eviction).
    roots: BTreeMap<ExprId, u64>,
    /// Missed-evaluation counts, for the registration threshold.
    seen: HashMap<ExprId, u32>,
    /// Deferred `modify_state` spans, folded per relation; flushed on
    /// the next read.
    pending: BTreeMap<String, PendingSpan>,
    capacity: usize,
    register_after: u32,
    tick: u64,
}

impl Inner {
    fn bump_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Drops cached views unreachable from any registered root; returns
    /// how many were dropped.
    fn gc(&mut self) -> usize {
        let mut live: BTreeSet<ExprId> = BTreeSet::new();
        let mut stack: Vec<ExprId> = self.roots.keys().copied().collect();
        while let Some(id) = stack.pop() {
            if live.insert(id) {
                stack.extend(self.interner.node(id).children.iter().copied());
            }
        }
        let before = self.views.len();
        self.views.retain(|id, _| live.contains(id));
        before - self.views.len()
    }

    /// Evicts least-recently-used roots down to `capacity`, then GCs;
    /// returns the number of views dropped.
    fn enforce_capacity(&mut self) -> usize {
        while self.roots.len() > self.capacity {
            let Some((&lru, _)) = self.roots.iter().min_by_key(|(_, tick)| **tick) else {
                break;
            };
            self.roots.remove(&lru);
        }
        self.gc()
    }

    /// Drops every view (and root) whose subtree reads `ident`; returns
    /// the number of views dropped.
    fn purge_relation(&mut self, ident: &str) -> usize {
        // Any queued span for the relation is moot once its readers go.
        self.pending.remove(ident);
        let interner = &self.interner;
        let before = self.views.len();
        self.views
            .retain(|id, _| !interner.node(*id).reads_relation(ident));
        let dropped = before - self.views.len();
        self.roots
            .retain(|id, _| !interner.node(*id).reads_relation(ident));
        dropped + self.gc()
    }

    /// Evaluates node `id` bottom-up, reusing stamp-valid cached views
    /// and caching every successfully evaluated node. Mirrors
    /// [`Expr::eval_with`] exactly: children left-to-right, each checked
    /// for the operator's expected state kind before the next evaluates,
    /// so the selected error is identical to the plain evaluator's.
    fn eval_node(
        &mut self,
        id: ExprId,
        src: &dyn StampSource,
        counters: &MemoCounters,
    ) -> Result<StateValue, EvalError> {
        if let Some(view) = self.views.get(&id) {
            if view.valid(src) {
                return Ok(view.state.clone());
            }
            self.views.remove(&id);
            counters.add_invalidations(1);
        }
        let node = self.interner.node(id).clone();
        let c = |i: usize| node.children[i];
        let state = match &node.op {
            NodeOp::Const(Expr::SnapshotConst(s)) => StateValue::Snapshot(s.clone()),
            NodeOp::Const(Expr::HistoricalConst(h)) => StateValue::Historical(h.clone()),
            NodeOp::Const(_) => unreachable!("interner wraps only constant expressions in Const"),
            NodeOp::Rollback(ident, spec) => src.resolve_rollback(ident, *spec, false)?,
            NodeOp::HRollback(ident, spec) => src.resolve_rollback(ident, *spec, true)?,
            NodeOp::Union => {
                let l = self.eval_snap(c(0), src, counters, "union")?;
                let r = self.eval_snap(c(1), src, counters, "union")?;
                StateValue::Snapshot(l.union(&r)?)
            }
            NodeOp::Difference => {
                let l = self.eval_snap(c(0), src, counters, "minus")?;
                let r = self.eval_snap(c(1), src, counters, "minus")?;
                StateValue::Snapshot(l.difference(&r)?)
            }
            NodeOp::Product => {
                let l = self.eval_snap(c(0), src, counters, "times")?;
                let r = self.eval_snap(c(1), src, counters, "times")?;
                StateValue::Snapshot(l.product(&r)?)
            }
            NodeOp::Project(attrs) => {
                let s = self.eval_snap(c(0), src, counters, "project")?;
                StateValue::Snapshot(s.project(attrs)?)
            }
            NodeOp::Select(p) => {
                let s = self.eval_snap(c(0), src, counters, "select")?;
                StateValue::Snapshot(s.select(p)?)
            }
            NodeOp::HUnion => {
                let l = self.eval_hist(c(0), src, counters, "hunion")?;
                let r = self.eval_hist(c(1), src, counters, "hunion")?;
                StateValue::Historical(l.hunion(&r)?)
            }
            NodeOp::HDifference => {
                let l = self.eval_hist(c(0), src, counters, "hminus")?;
                let r = self.eval_hist(c(1), src, counters, "hminus")?;
                StateValue::Historical(l.hdifference(&r)?)
            }
            NodeOp::HProduct => {
                let l = self.eval_hist(c(0), src, counters, "htimes")?;
                let r = self.eval_hist(c(1), src, counters, "htimes")?;
                StateValue::Historical(l.hproduct(&r)?)
            }
            NodeOp::HProject(attrs) => {
                let h = self.eval_hist(c(0), src, counters, "hproject")?;
                StateValue::Historical(h.hproject(attrs)?)
            }
            NodeOp::HSelect(p) => {
                let h = self.eval_hist(c(0), src, counters, "hselect")?;
                StateValue::Historical(h.hselect(p)?)
            }
            NodeOp::Delta(g, v) => {
                let h = self.eval_hist(c(0), src, counters, "delta")?;
                StateValue::Historical(h.delta(g, v)?)
            }
            NodeOp::Join(spec) => {
                let l = self.eval_snap(c(0), src, counters, "join")?;
                let r = self.eval_snap(c(1), src, counters, "join")?;
                StateValue::Snapshot(l.equi_join(&r, spec)?)
            }
            NodeOp::HJoin(spec) => {
                let l = self.eval_hist(c(0), src, counters, "hjoin")?;
                let r = self.eval_hist(c(1), src, counters, "hjoin")?;
                StateValue::Historical(l.hequi_join(&r, spec)?)
            }
        };
        let mut stamps: Vec<(String, RelStamp)> = Vec::new();
        let mut cacheable = true;
        for (ident, _) in &node.reads {
            if stamps.iter().any(|(i, _)| i == ident) {
                continue;
            }
            match src.relation_stamp(ident) {
                Some(stamp) => stamps.push((ident.clone(), stamp)),
                // A successful evaluation implies every read relation is
                // defined and non-empty, but stay sound if a source
                // disagrees: just don't cache.
                None => {
                    cacheable = false;
                    break;
                }
            }
        }
        if cacheable {
            self.views.insert(
                id,
                NodeView {
                    state: state.clone(),
                    stamps,
                },
            );
        }
        Ok(state)
    }

    fn eval_snap(
        &mut self,
        id: ExprId,
        src: &dyn StampSource,
        counters: &MemoCounters,
        operator: &'static str,
    ) -> Result<SnapshotState, EvalError> {
        self.eval_node(id, src, counters)?
            .into_snapshot()
            .ok_or(EvalError::StateKindMismatch {
                operator,
                expected_historical: false,
            })
    }

    fn eval_hist(
        &mut self,
        id: ExprId,
        src: &dyn StampSource,
        counters: &MemoCounters,
        operator: &'static str,
    ) -> Result<HistoricalState, EvalError> {
        self.eval_node(id, src, counters)?
            .into_historical()
            .ok_or(EvalError::StateKindMismatch {
                operator,
                expected_historical: true,
            })
    }

    /// Settles every queued modify span: one folded delta propagation
    /// per touched relation. Called at the top of each memo read.
    fn flush_pending(&mut self, src: &dyn StampSource, counters: &MemoCounters) {
        if self.pending.is_empty() {
            return;
        }
        let pending = std::mem::take(&mut self.pending);
        for (ident, span) in pending {
            let delta = StateDelta::between(&span.prev, &span.new);
            self.propagate(
                &ident,
                span.rel_id,
                &delta,
                span.first_tx,
                span.last_tx,
                src,
                counters,
            );
        }
    }

    /// A span of `modify_state`s against relation `ident`, already
    /// applied to the store and folded into one delta: update every
    /// cached view that reads it. `span_start` is the commit transaction
    /// of the span's first modify, `new_tx` of its last (the eager
    /// single-modify path passes them equal).
    #[allow(clippy::too_many_arguments)]
    fn propagate(
        &mut self,
        ident: &str,
        rel_id: u64,
        rel_delta: &StateDelta,
        span_start: TransactionNumber,
        new_tx: TransactionNumber,
        src: &dyn StampSource,
        counters: &MemoCounters,
    ) {
        if matches!(rel_delta, StateDelta::Reschema(_)) {
            // The relation's scheme (or state kind) changed out from
            // under its readers; no delta rule applies.
            let dropped = self.purge_relation(ident);
            counters.add_invalidations(dropped as u64);
            return;
        }
        let stamp = (rel_id, new_tx);
        let ids: Vec<ExprId> = self.views.keys().copied().collect();
        let mut statuses: HashMap<ExprId, Status> = HashMap::new();
        for id in ids {
            if !self.views.contains_key(&id) {
                continue;
            }
            let node = self.interner.node(id).clone();
            if !node.reads_relation(ident) {
                continue;
            }
            match &node.op {
                NodeOp::Rollback(_, spec) | NodeOp::HRollback(_, spec) => {
                    // `state_at(n)` with `n` below the whole span
                    // resolves to a version these appends cannot have
                    // touched (appends only add strictly newer
                    // versions): the value is immutable, only the stamp
                    // moves. A probe at or past the span's last
                    // transaction sees exactly the folded delta. A probe
                    // landing *inside* the span (several modifies folded
                    // into one flush) names an intermediate version the
                    // fold skipped — drop the view and leave no status,
                    // so parents recompute and the next evaluation
                    // re-resolves the probe from the store.
                    if matches!(spec, TxSpec::At(n) if *n >= span_start && *n < new_tx) {
                        self.views.remove(&id);
                        counters.add_invalidations(1);
                        continue;
                    }
                    let affected = match spec {
                        TxSpec::Current => true,
                        TxSpec::At(n) => *n >= new_tx,
                    };
                    if affected {
                        let view = self.views.get_mut(&id).expect("checked above");
                        rel_delta.apply_in_place(&mut view.state);
                        view.set_stamp(ident, stamp);
                        counters.add_propagation(rel_delta.change_count() as u64);
                        statuses.insert(id, Status::Changed(Some(rel_delta.clone())));
                    } else {
                        let view = self.views.get_mut(&id).expect("checked above");
                        view.set_stamp(ident, stamp);
                        statuses.insert(id, Status::Bumped);
                    }
                }
                NodeOp::Const(_) => unreachable!("constants read no relations"),
                _ => {
                    let mut any_dropped = false;
                    let mut any_changed = false;
                    let mut any_unknown = false;
                    for child in &node.children {
                        if !self.interner.node(*child).reads_relation(ident) {
                            continue;
                        }
                        match statuses.get(child) {
                            Some(Status::Bumped) => {}
                            Some(Status::Changed(Some(_))) => any_changed = true,
                            Some(Status::Changed(None)) => any_unknown = true,
                            Some(Status::Dropped) => any_dropped = true,
                            // A reading child without a cached view:
                            // its new value is unknown here.
                            None => any_unknown = true,
                        }
                    }
                    if any_dropped {
                        // The child's evaluation errors; so would this
                        // node's. Drop the view — the next lookup
                        // reproduces the error from scratch.
                        self.views.remove(&id);
                        counters.add_invalidations(1);
                        statuses.insert(id, Status::Dropped);
                    } else if !any_changed && !any_unknown {
                        let view = self.views.get_mut(&id).expect("checked above");
                        view.set_stamp(ident, stamp);
                        statuses.insert(id, Status::Bumped);
                    } else {
                        let ruled = if any_unknown {
                            None
                        } else {
                            self.delta_rule(&node, id, &statuses)
                        };
                        match ruled {
                            Some((_, delta)) if delta.change_count() == 0 => {
                                // The change filtered out entirely below
                                // this node; keep the cached state (and
                                // its shared runs) untouched.
                                let view = self.views.get_mut(&id).expect("checked above");
                                view.set_stamp(ident, stamp);
                                counters.add_propagation(0);
                                statuses.insert(id, Status::Changed(Some(delta)));
                            }
                            Some((state, delta)) => {
                                let view = self.views.get_mut(&id).expect("checked above");
                                view.state = state;
                                view.set_stamp(ident, stamp);
                                counters.add_propagation(delta.change_count() as u64);
                                statuses.insert(id, Status::Changed(Some(delta)));
                            }
                            None => {
                                // Targeted re-evaluation: the children's
                                // views already hold their new states,
                                // so this recomputes exactly one
                                // operator (plus any uncached inputs).
                                self.views.remove(&id);
                                match self.eval_node(id, src, counters) {
                                    Ok(_) => {
                                        counters.add_fallback();
                                        statuses.insert(id, Status::Changed(None));
                                    }
                                    Err(_) => {
                                        counters.add_invalidations(1);
                                        statuses.insert(id, Status::Dropped);
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    /// A child's snapshot-delta contribution: empty when unchanged,
    /// `None` when no rule applies (wrong kind — defensive only).
    fn snap_delta<'a>(
        &self,
        statuses: &'a HashMap<ExprId, Status>,
        child: ExprId,
    ) -> Option<SnapDelta<'a>> {
        match statuses.get(&child) {
            None | Some(Status::Bumped) => Some((&[], &[])),
            Some(Status::Changed(Some(StateDelta::Snapshot { added, removed }))) => {
                Some((added, removed))
            }
            _ => None,
        }
    }

    fn hist_delta<'a>(
        &self,
        statuses: &'a HashMap<ExprId, Status>,
        child: ExprId,
    ) -> Option<HistDelta<'a>> {
        match statuses.get(&child) {
            None | Some(Status::Bumped) => Some((&[], &[])),
            Some(Status::Changed(Some(StateDelta::Historical { upserted, removed }))) => {
                Some((upserted, removed))
            }
            _ => None,
        }
    }

    /// The child's *new* (already propagated) state.
    fn snap_state(&self, child: ExprId) -> Option<&SnapshotState> {
        match &self.views.get(&child)?.state {
            StateValue::Snapshot(s) => Some(s),
            StateValue::Historical(_) => None,
        }
    }

    fn hist_state(&self, child: ExprId) -> Option<&HistoricalState> {
        match &self.views.get(&child)?.state {
            StateValue::Historical(h) => Some(h),
            StateValue::Snapshot(_) => None,
        }
    }

    /// Applies the per-operator delta rule for `node`, whose changed
    /// children all carry exact deltas. Returns the node's new state and
    /// its own delta, or `None` when the rule declines (threshold, or a
    /// defensive kind mismatch) and the caller should recompute.
    fn delta_rule(
        &self,
        node: &ExprNode,
        id: ExprId,
        statuses: &HashMap<ExprId, Status>,
    ) -> Option<(StateValue, StateDelta)> {
        let out_old = &self.views.get(&id)?.state;
        let c = |i: usize| node.children[i];
        match &node.op {
            NodeOp::Select(p) => {
                let (added, removed) = self.snap_delta(statuses, c(0))?;
                let StateValue::Snapshot(s_old) = out_old else {
                    return None;
                };
                let compiled = p.compile(s_old.schema()).ok()?;
                let added: Vec<Tuple> =
                    added.iter().filter(|t| compiled.eval(t)).cloned().collect();
                let removed: Vec<Tuple> = removed
                    .iter()
                    .filter(|t| compiled.eval(t))
                    .cloned()
                    .collect();
                let out = s_old.with_delta(&removed, &added).ok()?;
                Some((
                    StateValue::Snapshot(out),
                    StateDelta::Snapshot { added, removed },
                ))
            }
            NodeOp::Project(attrs) => {
                let (added, removed) = self.snap_delta(statuses, c(0))?;
                let child = self.snap_state(c(0))?;
                let StateValue::Snapshot(s_old) = out_old else {
                    return None;
                };
                let (_, indices) = child.schema().project(attrs).ok()?;
                let added: BTreeSet<Tuple> = added.iter().map(|t| t.project(&indices)).collect();
                // A projected image loses membership only if *no* tuple
                // of the new child still projects to it: one pass over
                // the child run settles the survivors.
                let mut candidates: BTreeSet<Tuple> =
                    removed.iter().map(|t| t.project(&indices)).collect();
                for img in &added {
                    candidates.remove(img);
                }
                if !candidates.is_empty() {
                    for u in child.run() {
                        candidates.remove(&u.project(&indices));
                        if candidates.is_empty() {
                            break;
                        }
                    }
                }
                let added: Vec<Tuple> = added.into_iter().collect();
                let removed: Vec<Tuple> = candidates.into_iter().collect();
                let out = s_old.with_delta(&removed, &added).ok()?;
                Some((
                    StateValue::Snapshot(out),
                    StateDelta::Snapshot { added, removed },
                ))
            }
            NodeOp::Union => {
                let (add_a, rem_a) = self.snap_delta(statuses, c(0))?;
                let (add_b, rem_b) = self.snap_delta(statuses, c(1))?;
                let a_new = self.snap_state(c(0))?;
                let b_new = self.snap_state(c(1))?;
                let StateValue::Snapshot(s_old) = out_old else {
                    return None;
                };
                let added: Vec<Tuple> = add_a.iter().chain(add_b).cloned().collect();
                let removed: Vec<Tuple> = rem_a
                    .iter()
                    .chain(rem_b)
                    .filter(|t| !a_new.contains(t) && !b_new.contains(t))
                    .cloned()
                    .collect();
                let out = s_old.with_delta(&removed, &added).ok()?;
                Some((
                    StateValue::Snapshot(out),
                    StateDelta::Snapshot { added, removed },
                ))
            }
            NodeOp::Difference => {
                let (add_a, rem_a) = self.snap_delta(statuses, c(0))?;
                let (add_b, rem_b) = self.snap_delta(statuses, c(1))?;
                let a_new = self.snap_state(c(0))?;
                let b_new = self.snap_state(c(1))?;
                let StateValue::Snapshot(s_old) = out_old else {
                    return None;
                };
                let affected: BTreeSet<&Tuple> = add_a
                    .iter()
                    .chain(rem_a)
                    .chain(add_b)
                    .chain(rem_b)
                    .collect();
                let mut added = Vec::new();
                let mut removed = Vec::new();
                for t in affected {
                    if a_new.contains(t) && !b_new.contains(t) {
                        added.push(t.clone());
                    } else {
                        removed.push(t.clone());
                    }
                }
                let out = s_old.with_delta(&removed, &added).ok()?;
                Some((
                    StateValue::Snapshot(out),
                    StateDelta::Snapshot { added, removed },
                ))
            }
            NodeOp::Product => {
                let a_changed = matches!(statuses.get(&c(0)), Some(Status::Changed(_)));
                let b_changed = matches!(statuses.get(&c(1)), Some(Status::Changed(_)));
                if a_changed && b_changed {
                    // Δa × Δb cross terms make the rule quadratic in the
                    // deltas; recomputing from the cached children is
                    // simpler and no slower.
                    return None;
                }
                let (delta_side, fixed_side, fixed_is_right) = if a_changed {
                    (c(0), c(1), true)
                } else {
                    (c(1), c(0), false)
                };
                let (add, rem) = self.snap_delta(statuses, delta_side)?;
                let fixed = self.snap_state(fixed_side)?;
                let changed = self.snap_state(delta_side)?;
                // Rule cost is Δ·|fixed| pairs vs |a|·|b| for a
                // recompute (cost.rs holds the headroom factor).
                if !delta_beats_reeval(
                    (add.len() + rem.len()).saturating_mul(fixed.len()),
                    changed.len().saturating_mul(fixed.len()),
                ) {
                    return None;
                }
                let StateValue::Snapshot(s_old) = out_old else {
                    return None;
                };
                let pair = |t: &Tuple, u: &Tuple| {
                    if fixed_is_right {
                        t.concat(u)
                    } else {
                        u.concat(t)
                    }
                };
                let mut added = Vec::with_capacity(add.len() * fixed.len());
                let mut removed = Vec::with_capacity(rem.len() * fixed.len());
                for t in add {
                    for u in fixed.run() {
                        added.push(pair(t, u));
                    }
                }
                for t in rem {
                    for u in fixed.run() {
                        removed.push(pair(t, u));
                    }
                }
                let out = s_old.with_delta(&removed, &added).ok()?;
                Some((
                    StateValue::Snapshot(out),
                    StateDelta::Snapshot { added, removed },
                ))
            }
            NodeOp::HSelect(p) => {
                let (ups, rem) = self.hist_delta(statuses, c(0))?;
                let StateValue::Historical(h_old) = out_old else {
                    return None;
                };
                let compiled = p.compile(h_old.schema()).ok()?;
                let upserted: Vec<Entry> = ups
                    .iter()
                    .filter(|(t, _)| compiled.eval(t))
                    .cloned()
                    .collect();
                let removed: Vec<Tuple> =
                    rem.iter().filter(|t| compiled.eval(t)).cloned().collect();
                let out = h_old.with_delta(&removed, &upserted).ok()?;
                Some((
                    StateValue::Historical(out),
                    StateDelta::Historical { upserted, removed },
                ))
            }
            NodeOp::HProject(attrs) => {
                let (ups, rem) = self.hist_delta(statuses, c(0))?;
                let child = self.hist_state(c(0))?;
                let StateValue::Historical(h_old) = out_old else {
                    return None;
                };
                let (_, indices) = child.schema().project(attrs).ok()?;
                // A changed image's new valid time is the union over all
                // its surviving pre-images: one pass accumulates it.
                let candidates: BTreeSet<Tuple> = ups
                    .iter()
                    .map(|(t, _)| t.project(&indices))
                    .chain(rem.iter().map(|t| t.project(&indices)))
                    .collect();
                let mut acc: BTreeMap<Tuple, TemporalElement> = BTreeMap::new();
                for (u, e) in child.iter() {
                    let img = u.project(&indices);
                    if candidates.contains(&img) {
                        acc.entry(img)
                            .and_modify(|a| *a = a.union(e))
                            .or_insert_with(|| e.clone());
                    }
                }
                let mut upserted = Vec::new();
                let mut removed = Vec::new();
                for img in candidates {
                    match acc.remove(&img) {
                        Some(e) => upserted.push((img, e)),
                        None => removed.push(img),
                    }
                }
                let out = h_old.with_delta(&removed, &upserted).ok()?;
                Some((
                    StateValue::Historical(out),
                    StateDelta::Historical { upserted, removed },
                ))
            }
            NodeOp::HUnion => {
                let (ups_a, rem_a) = self.hist_delta(statuses, c(0))?;
                let (ups_b, rem_b) = self.hist_delta(statuses, c(1))?;
                let a_new = self.hist_state(c(0))?;
                let b_new = self.hist_state(c(1))?;
                let StateValue::Historical(h_old) = out_old else {
                    return None;
                };
                let affected: BTreeSet<&Tuple> = ups_a
                    .iter()
                    .map(|(t, _)| t)
                    .chain(rem_a)
                    .chain(ups_b.iter().map(|(t, _)| t))
                    .chain(rem_b)
                    .collect();
                let mut upserted = Vec::new();
                let mut removed = Vec::new();
                for t in affected {
                    match (a_new.valid_time(t), b_new.valid_time(t)) {
                        (None, None) => removed.push(t.clone()),
                        (Some(x), None) => upserted.push((t.clone(), x.clone())),
                        (None, Some(y)) => upserted.push((t.clone(), y.clone())),
                        (Some(x), Some(y)) => upserted.push((t.clone(), x.union(y))),
                    }
                }
                let out = h_old.with_delta(&removed, &upserted).ok()?;
                Some((
                    StateValue::Historical(out),
                    StateDelta::Historical { upserted, removed },
                ))
            }
            NodeOp::HDifference => {
                let (ups_a, rem_a) = self.hist_delta(statuses, c(0))?;
                let (ups_b, rem_b) = self.hist_delta(statuses, c(1))?;
                let a_new = self.hist_state(c(0))?;
                let b_new = self.hist_state(c(1))?;
                let StateValue::Historical(h_old) = out_old else {
                    return None;
                };
                let affected: BTreeSet<&Tuple> = ups_a
                    .iter()
                    .map(|(t, _)| t)
                    .chain(rem_a)
                    .chain(ups_b.iter().map(|(t, _)| t))
                    .chain(rem_b)
                    .collect();
                let mut upserted = Vec::new();
                let mut removed = Vec::new();
                for t in affected {
                    match a_new.valid_time(t) {
                        None => removed.push(t.clone()),
                        Some(x) => {
                            let e = match b_new.valid_time(t) {
                                Some(y) => x.difference(y),
                                None => x.clone(),
                            };
                            if e.is_empty() {
                                removed.push(t.clone());
                            } else {
                                upserted.push((t.clone(), e));
                            }
                        }
                    }
                }
                let out = h_old.with_delta(&removed, &upserted).ok()?;
                Some((
                    StateValue::Historical(out),
                    StateDelta::Historical { upserted, removed },
                ))
            }
            NodeOp::HProduct => {
                let a_changed = matches!(statuses.get(&c(0)), Some(Status::Changed(_)));
                let b_changed = matches!(statuses.get(&c(1)), Some(Status::Changed(_)));
                if a_changed && b_changed {
                    return None;
                }
                let (delta_side, fixed_side, fixed_is_right) = if a_changed {
                    (c(0), c(1), true)
                } else {
                    (c(1), c(0), false)
                };
                let (ups, rem) = self.hist_delta(statuses, delta_side)?;
                let fixed = self.hist_state(fixed_side)?;
                let changed = self.hist_state(delta_side)?;
                if !delta_beats_reeval(
                    (ups.len() + rem.len()).saturating_mul(fixed.len()),
                    changed.len().saturating_mul(fixed.len()),
                ) {
                    return None;
                }
                let StateValue::Historical(h_old) = out_old else {
                    return None;
                };
                let mut upserted = Vec::new();
                let mut removed = Vec::new();
                for (t, e) in ups {
                    for (u, eu) in fixed.iter() {
                        let (pt, x) = if fixed_is_right {
                            (t.concat(u), e.intersect(eu))
                        } else {
                            (u.concat(t), eu.intersect(e))
                        };
                        if x.is_empty() {
                            removed.push(pt);
                        } else {
                            upserted.push((pt, x));
                        }
                    }
                }
                for t in rem {
                    for (u, _) in fixed.iter() {
                        removed.push(if fixed_is_right {
                            t.concat(u)
                        } else {
                            u.concat(t)
                        });
                    }
                }
                let out = h_old.with_delta(&removed, &upserted).ok()?;
                Some((
                    StateValue::Historical(out),
                    StateDelta::Historical { upserted, removed },
                ))
            }
            NodeOp::Delta(g, v) => {
                let (ups, rem) = self.hist_delta(statuses, c(0))?;
                let child = self.hist_state(c(0))?;
                // δ's rule is O(Δ), but after a large churn the delta
                // approaches the input and a recompute's single fused
                // scan wins.
                if !delta_beats_reeval(ups.len() + rem.len(), child.len()) {
                    return None;
                }
                let StateValue::Historical(h_old) = out_old else {
                    return None;
                };
                let mut upserted = Vec::new();
                let mut removed: Vec<Tuple> = rem.to_vec();
                for (t, e) in ups {
                    if g.eval(e) {
                        let ne = v.eval(e);
                        if ne.is_empty() {
                            removed.push(t.clone());
                        } else {
                            upserted.push((t.clone(), ne));
                        }
                    } else {
                        removed.push(t.clone());
                    }
                }
                let out = h_old.with_delta(&removed, &upserted).ok()?;
                Some((
                    StateValue::Historical(out),
                    StateDelta::Historical { upserted, removed },
                ))
            }
            // Joins have no incremental rule yet (a delta on either side
            // re-probes the whole other side anyway): recompute.
            NodeOp::Join(..) | NodeOp::HJoin(..) => None,
            NodeOp::Const(_) | NodeOp::Rollback(..) | NodeOp::HRollback(..) => None,
        }
    }
}

/// The view memo: hash-consed expression keys over cached, incrementally
/// maintained states. Interior mutability throughout — lookups and
/// propagation take `&self`, so the engine can consult it mid-borrow.
pub struct ViewRegistry {
    inner: Mutex<Inner>,
    counters: MemoCounters,
}

impl Default for ViewRegistry {
    fn default() -> ViewRegistry {
        ViewRegistry::new()
    }
}

impl ViewRegistry {
    /// A registry with the default capacity and registration threshold.
    pub fn new() -> ViewRegistry {
        ViewRegistry::with_capacity(DEFAULT_MEMO_CAPACITY)
    }

    /// A registry holding at most `capacity` root expressions (0
    /// disables the memo entirely).
    pub fn with_capacity(capacity: usize) -> ViewRegistry {
        ViewRegistry {
            inner: Mutex::new(Inner {
                interner: ExprInterner::new(),
                views: BTreeMap::new(),
                roots: BTreeMap::new(),
                seen: HashMap::new(),
                pending: BTreeMap::new(),
                capacity,
                register_after: DEFAULT_REGISTER_AFTER,
                tick: 0,
            }),
            counters: MemoCounters::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        // A panicked holder can only have been mid-update of plain maps;
        // recover the data rather than poisoning every later query.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Consults the memo for `expr`: a stamp-valid cached state, or the
    /// instruction to evaluate (and whether to register the result).
    pub fn decide(&self, expr: &Expr, src: &dyn StampSource) -> MemoDecision {
        // Relation-free expressions — notably the constant literal every
        // `modify_state` evaluates — can never be stamped or
        // invalidated, so they are never worth a view. Deciding them
        // before touching the interner keeps the write path from
        // hashing multi-thousand-tuple constant payloads into the DAG
        // (the `reads` walk visits operator nodes only, not payloads).
        if expr.reads().is_empty() {
            return MemoDecision::Evaluate { register: false };
        }
        let mut inner = self.lock();
        if inner.capacity == 0 {
            return MemoDecision::Evaluate { register: false };
        }
        inner.flush_pending(src, &self.counters);
        let id = inner.interner.intern(expr);
        if let Some(view) = inner.views.get(&id) {
            if view.valid(src) {
                let state = view.state.clone();
                self.counters.add_hit();
                let tick = inner.bump_tick();
                if let Some(t) = inner.roots.get_mut(&id) {
                    *t = tick;
                }
                return MemoDecision::Hit(state);
            }
            // Stale views are normally repaired by propagation; reaching
            // here means the backing relation changed outside it
            // (evolution, truncation) — drop and re-evaluate.
            inner.views.remove(&id);
            self.counters.add_invalidations(1);
        }
        if inner.interner.node(id).reads.is_empty() {
            // Nothing to stamp against: constant expressions are cheap
            // clones anyway and can never be invalidated soundly.
            return MemoDecision::Evaluate { register: false };
        }
        self.counters.add_miss();
        let register_after = inner.register_after;
        let seen = inner.seen.entry(id).or_insert(0);
        *seen = seen.saturating_add(1);
        let register = *seen >= register_after;
        MemoDecision::Evaluate { register }
    }

    /// Evaluates `expr` node-wise, caching every subexpression's state,
    /// and registers it as a root. Result — value and error — is
    /// identical to the engine's plain evaluation.
    pub fn eval_and_register(
        &self,
        expr: &Expr,
        src: &dyn StampSource,
    ) -> Result<StateValue, EvalError> {
        let mut inner = self.lock();
        inner.flush_pending(src, &self.counters);
        let id = inner.interner.intern(expr);
        let result = inner.eval_node(id, src, &self.counters);
        if result.is_ok() {
            let tick = inner.bump_tick();
            if inner.roots.insert(id, tick).is_none() {
                self.counters.add_registration();
            }
            let dropped = inner.enforce_capacity();
            self.counters.add_invalidations(dropped as u64);
        }
        result
    }

    /// Whether any cached view reads `ident` — the engine's cheap guard
    /// for whether a `modify_state` needs its delta computed at all.
    pub fn has_readers(&self, ident: &str) -> bool {
        let inner = self.lock();
        inner
            .views
            .keys()
            .any(|id| inner.interner.node(*id).reads_relation(ident))
    }

    /// Records one `modify_state` against `ident` (already applied to
    /// the store, committed at `new_tx`) for deferred propagation — the
    /// engine's write-path entry. `prev` is the relation's state just
    /// before the append (`None` for its very first state).
    ///
    /// The call is O(1): states are reference-counted handles, and
    /// consecutive modifies to one relation fold into a single span
    /// whose diff is computed once, on the next memo read. A scheme or
    /// state-kind boundary (no delta rule can cross it) is settled
    /// immediately by purging the relation's readers.
    pub fn queue_modify(
        &self,
        ident: &str,
        rel_id: u64,
        prev: Option<&StateValue>,
        new: &StateValue,
        new_tx: TransactionNumber,
    ) {
        let mut inner = self.lock();
        if inner.capacity == 0 {
            return;
        }
        let comparable = match (prev, new) {
            (Some(StateValue::Snapshot(a)), StateValue::Snapshot(b)) => a.schema() == b.schema(),
            (Some(StateValue::Historical(a)), StateValue::Historical(b)) => {
                a.schema() == b.schema()
            }
            _ => false,
        };
        if !comparable {
            let dropped = inner.purge_relation(ident);
            self.counters.add_invalidations(dropped as u64);
            return;
        }
        if let Some(span) = inner.pending.get_mut(ident) {
            // Fold at enqueue: keep the span's opening state, advance
            // its closing one — `between(prev, new)` at flush covers
            // the whole run of modifies.
            span.new = new.clone();
            span.last_tx = new_tx;
            return;
        }
        if !inner
            .views
            .keys()
            .any(|id| inner.interner.node(*id).reads_relation(ident))
        {
            // No cached view reads the relation; anything registered
            // later evaluates against the already-modified store.
            return;
        }
        let prev = prev.expect("comparable implies a prior state").clone();
        inner.pending.insert(
            ident.to_string(),
            PendingSpan {
                rel_id,
                prev,
                new: new.clone(),
                first_tx: new_tx,
                last_tx: new_tx,
            },
        );
    }

    /// Propagates the delta one `modify_state` applied to `ident`
    /// (already in the store, committed at `new_tx`) through every
    /// cached view that reads it — the eager path
    /// ([`ViewRegistry::queue_modify`] is the engine's deferred one).
    pub fn apply_modify(
        &self,
        ident: &str,
        rel_id: u64,
        delta: &StateDelta,
        new_tx: TransactionNumber,
        src: &dyn StampSource,
    ) {
        let mut inner = self.lock();
        inner.propagate(ident, rel_id, delta, new_tx, new_tx, src, &self.counters);
    }

    /// Folds and propagates every queued `modify_state` span now — the
    /// shutdown path. The lazy write path queues spans to be settled on
    /// the next read; an engine going away with spans still queued must
    /// settle them first so no cached view outlives the writes it has
    /// not yet seen.
    pub fn flush(&self, src: &dyn StampSource) {
        let mut inner = self.lock();
        inner.flush_pending(src, &self.counters);
    }

    /// How many relations have a queued, not-yet-propagated write span.
    pub fn pending_spans(&self) -> usize {
        self.lock().pending.len()
    }

    /// Drops every cached view whose subtree reads `ident` — the sound
    /// response to deletion, scheme evolution, and history truncation.
    pub fn purge_relation(&self, ident: &str) {
        let mut inner = self.lock();
        let dropped = inner.purge_relation(ident);
        self.counters.add_invalidations(dropped as u64);
    }

    /// Drops every cached view and registration (the interner and its
    /// ids survive — they are pure identities).
    pub fn clear(&self) {
        let mut inner = self.lock();
        let dropped = inner.views.len();
        inner.views.clear();
        inner.roots.clear();
        inner.seen.clear();
        inner.pending.clear();
        self.counters.add_invalidations(dropped as u64);
    }

    /// Resizes the root capacity; 0 disables the memo and drops
    /// everything cached.
    pub fn set_capacity(&self, capacity: usize) {
        let mut inner = self.lock();
        inner.capacity = capacity;
        let dropped = if capacity == 0 {
            let d = inner.views.len();
            inner.views.clear();
            inner.roots.clear();
            inner.seen.clear();
            inner.pending.clear();
            d
        } else {
            inner.enforce_capacity()
        };
        self.counters.add_invalidations(dropped as u64);
    }

    /// Sets how many missed evaluations an expression needs before it is
    /// registered (1 = register on first evaluation).
    pub fn set_register_after(&self, evals: u32) {
        self.lock().register_after = evals.max(1);
    }

    /// A point-in-time snapshot of the memo counters and gauges.
    pub fn stats(&self) -> MemoStats {
        let inner = self.lock();
        self.counters.snapshot(inner.roots.len(), inner.views.len())
    }

    /// Zeroes the counters (cached state is untouched).
    pub fn reset_stats(&self) {
        self.counters.reset();
    }

    /// The expression interner's footprint: (distinct nodes, bytes).
    pub fn interner_footprint(&self) -> (usize, usize) {
        let inner = self.lock();
        (inner.interner.len(), inner.interner.size_bytes())
    }
}

impl std::fmt::Debug for ViewRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("ViewRegistry")
            .field("roots", &s.roots)
            .field("views", &s.views)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txtime_snapshot::{DomainType, Predicate, Schema, Value};

    /// A miniature stamp source: one snapshot state per relation.
    struct FakeDb {
        rels: BTreeMap<String, (u64, TransactionNumber, StateValue)>,
    }

    impl FakeDb {
        fn new() -> FakeDb {
            FakeDb {
                rels: BTreeMap::new(),
            }
        }

        fn set(&mut self, ident: &str, rel_id: u64, tx: u64, state: StateValue) {
            self.rels
                .insert(ident.to_string(), (rel_id, TransactionNumber(tx), state));
        }
    }

    impl StateSource for FakeDb {
        fn resolve_rollback(
            &self,
            ident: &str,
            _spec: TxSpec,
            _historical: bool,
        ) -> Result<StateValue, EvalError> {
            self.rels
                .get(ident)
                .map(|(_, _, s)| s.clone())
                .ok_or_else(|| EvalError::UndefinedRelation(ident.to_string()))
        }
    }

    impl StampSource for FakeDb {
        fn relation_stamp(&self, ident: &str) -> Option<RelStamp> {
            self.rels.get(ident).map(|(id, tx, _)| (*id, *tx))
        }
    }

    fn snap(vals: &[i64]) -> SnapshotState {
        let schema = Schema::new(vec![("x", DomainType::Int)]).unwrap();
        SnapshotState::from_rows(schema, vals.iter().map(|&v| vec![Value::Int(v)])).unwrap()
    }

    fn positive(e: Expr) -> Expr {
        e.select(Predicate::gt_const("x", Value::Int(0)))
    }

    #[test]
    fn register_then_hit_then_propagate() {
        let mut db = FakeDb::new();
        db.set("r", 7, 3, StateValue::Snapshot(snap(&[-1, 1, 2])));
        let memo = ViewRegistry::new();
        memo.set_register_after(1);
        let expr = positive(Expr::current("r"));

        assert!(matches!(
            memo.decide(&expr, &db),
            MemoDecision::Evaluate { register: true }
        ));
        let v = memo.eval_and_register(&expr, &db).unwrap();
        assert_eq!(v, StateValue::Snapshot(snap(&[1, 2])));

        let MemoDecision::Hit(hit) = memo.decide(&expr, &db) else {
            panic!("expected a hit");
        };
        assert_eq!(hit, v);

        // One tuple added, one removed; the view follows without a
        // re-evaluation.
        db.set("r", 7, 4, StateValue::Snapshot(snap(&[-1, 2, 5])));
        let delta = StateDelta::Snapshot {
            added: vec![Tuple::new(vec![Value::Int(5)])],
            removed: vec![Tuple::new(vec![Value::Int(1)])],
        };
        memo.apply_modify("r", 7, &delta, TransactionNumber(4), &db);
        let MemoDecision::Hit(hit) = memo.decide(&expr, &db) else {
            panic!("expected a post-propagation hit");
        };
        assert_eq!(hit, StateValue::Snapshot(snap(&[2, 5])));
        let stats = memo.stats();
        assert_eq!(stats.hits, 2);
        assert!(stats.propagations >= 2, "leaf and select both propagate");
    }

    #[test]
    fn shared_subexpressions_share_views() {
        let mut db = FakeDb::new();
        db.set("r", 1, 1, StateValue::Snapshot(snap(&[1, 2])));
        let memo = ViewRegistry::new();
        memo.set_register_after(1);
        // Both operands read the same ρ(r, ∞): 3 distinct nodes, not 4.
        let expr = positive(Expr::current("r")).union(Expr::current("r"));
        memo.decide(&expr, &db);
        memo.eval_and_register(&expr, &db).unwrap();
        assert_eq!(memo.stats().views, 3);
    }

    #[test]
    fn reschema_and_purge_drop_readers() {
        let mut db = FakeDb::new();
        db.set("r", 1, 1, StateValue::Snapshot(snap(&[1])));
        db.set("s", 2, 2, StateValue::Snapshot(snap(&[2])));
        let memo = ViewRegistry::new();
        memo.set_register_after(1);
        let on_r = positive(Expr::current("r"));
        let on_s = positive(Expr::current("s"));
        for e in [&on_r, &on_s] {
            memo.decide(e, &db);
            memo.eval_and_register(e, &db).unwrap();
        }
        assert_eq!(memo.stats().views, 4);

        // A reschema delta invalidates r's readers, leaves s's alone.
        let re = StateDelta::Reschema(Box::new(StateValue::Snapshot(snap(&[9]))));
        memo.apply_modify("r", 1, &re, TransactionNumber(3), &db);
        assert_eq!(memo.stats().views, 2);
        assert!(!memo.has_readers("r"));
        assert!(memo.has_readers("s"));

        memo.purge_relation("s");
        assert_eq!(memo.stats().views, 0);
    }

    #[test]
    fn capacity_zero_disables_and_eviction_bounds_roots() {
        let mut db = FakeDb::new();
        db.set("r", 1, 1, StateValue::Snapshot(snap(&[1])));
        let disabled = ViewRegistry::with_capacity(0);
        assert!(matches!(
            disabled.decide(&Expr::current("r"), &db),
            MemoDecision::Evaluate { register: false }
        ));

        let memo = ViewRegistry::with_capacity(1);
        memo.set_register_after(1);
        for ident in ["a", "b"] {
            db.set(ident, 5, 5, StateValue::Snapshot(snap(&[3])));
            let e = positive(Expr::current(ident));
            memo.decide(&e, &db);
            memo.eval_and_register(&e, &db).unwrap();
        }
        let stats = memo.stats();
        assert_eq!(stats.roots, 1, "LRU eviction keeps one root");
        assert!(stats.views <= 2);
    }

    #[test]
    fn queued_modifies_fold_and_flush_on_read() {
        let mut db = FakeDb::new();
        db.set("r", 7, 3, StateValue::Snapshot(snap(&[-1, 1, 2])));
        let memo = ViewRegistry::new();
        memo.set_register_after(1);
        let expr = positive(Expr::current("r"));
        memo.decide(&expr, &db);
        memo.eval_and_register(&expr, &db).unwrap();

        // A burst of writes between reads: each enqueue is O(1), and
        // the flush on the next read folds the burst into one net-delta
        // propagation (+3 +9 −1 through the select).
        let chain = [
            snap(&[-1, 1, 2, 3]),
            snap(&[-1, 2, 3]),
            snap(&[-1, 2, 3, 9]),
        ];
        let mut prev = StateValue::Snapshot(snap(&[-1, 1, 2]));
        for (i, s) in chain.iter().enumerate() {
            let s = StateValue::Snapshot(s.clone());
            let tx = 4 + i as u64;
            db.set("r", 7, tx, s.clone());
            memo.queue_modify("r", 7, Some(&prev), &s, TransactionNumber(tx));
            prev = s;
        }
        let MemoDecision::Hit(hit) = memo.decide(&expr, &db) else {
            panic!("expected a post-flush hit");
        };
        assert_eq!(hit, StateValue::Snapshot(snap(&[2, 3, 9])));
        let stats = memo.stats();
        // The folded span carries 3 net changes; an eager scheme would
        // have propagated each of the 3 writes separately.
        assert!(
            stats.propagations <= 6,
            "one folded propagation pass, not one per write (saw {})",
            stats.propagations
        );
    }

    #[test]
    fn queue_reschema_purges_readers_immediately() {
        let mut db = FakeDb::new();
        db.set("r", 1, 1, StateValue::Snapshot(snap(&[1])));
        let memo = ViewRegistry::new();
        memo.set_register_after(1);
        let e = positive(Expr::current("r"));
        memo.decide(&e, &db);
        memo.eval_and_register(&e, &db).unwrap();
        assert!(memo.has_readers("r"));

        // A state-kind flip has no delta rule; the queue settles it on
        // the spot rather than deferring an unusable span.
        let hist = StateValue::Historical(
            txtime_historical::HistoricalState::new(
                Schema::new(vec![("x", DomainType::Int)]).unwrap(),
                [(
                    Tuple::new(vec![Value::Int(1)]),
                    txtime_historical::TemporalElement::period(0, 5),
                )],
            )
            .unwrap(),
        );
        let prev = StateValue::Snapshot(snap(&[1]));
        memo.queue_modify("r", 1, Some(&prev), &hist, TransactionNumber(2));
        assert!(!memo.has_readers("r"));
    }

    #[test]
    fn stale_stamp_misses_instead_of_hitting() {
        let mut db = FakeDb::new();
        db.set("r", 1, 1, StateValue::Snapshot(snap(&[1])));
        let memo = ViewRegistry::new();
        memo.set_register_after(1);
        let e = positive(Expr::current("r"));
        memo.decide(&e, &db);
        memo.eval_and_register(&e, &db).unwrap();
        // The relation moved without propagation (as evolution would):
        // the stale view must not be served.
        db.set("r", 1, 9, StateValue::Snapshot(snap(&[4])));
        assert!(matches!(
            memo.decide(&e, &db),
            MemoDecision::Evaluate { register: true }
        ));
        let v = memo.eval_and_register(&e, &db).unwrap();
        assert_eq!(v, StateValue::Snapshot(snap(&[4])));
    }
}
