//! The tuple-timestamp backend: one record per tuple per lifetime.
//!
//! Instead of storing states, this backend stores *tuples* stamped with
//! the half-open transaction-time interval \[start, stop) during which
//! they were part of the relation's current state — the physical design
//! used by Ben-Zvi's Time Relational Model and by POSTGRES, here proven
//! equivalent to the paper's state-sequence semantics by the differential
//! tests.
//!
//! Rollback to `tx` is a filter: every tuple whose interval covers `tx`.
//! Space is proportional to the number of tuple *lifetimes*, not to
//! (versions × state size).
//!
//! Scheme (or state-kind) changes start a fresh *epoch*; each epoch has a
//! single scheme, and rollback first locates the epoch covering the
//! target transaction.

use std::collections::BTreeMap;

use txtime_core::{EvalError, RollbackFilter, StateValue, TransactionNumber};
use txtime_historical::{HistoricalState, TemporalElement};
use txtime_snapshot::{Schema, SnapshotState, Tuple};

use crate::backend::{BackendKind, RollbackStore};

const OPEN: u64 = u64::MAX;

/// A tuple's presence interval, with the valid-time element it carried
/// (historical states only; `None` for snapshot states).
#[derive(Debug, Clone)]
struct Stamp {
    start: u64,
    stop: u64,
    valid: Option<TemporalElement>,
}

#[derive(Debug)]
struct Epoch {
    /// The transaction at which this epoch begins.
    start_tx: TransactionNumber,
    schema: Schema,
    historical: bool,
    records: BTreeMap<Tuple, Vec<Stamp>>,
}

impl Epoch {
    fn new(state: &StateValue, tx: TransactionNumber) -> Epoch {
        let (schema, historical) = match state {
            StateValue::Snapshot(s) => (s.schema().clone(), false),
            StateValue::Historical(h) => (h.schema().clone(), true),
        };
        let mut epoch = Epoch {
            start_tx: tx,
            schema,
            historical,
            records: BTreeMap::new(),
        };
        epoch.apply(state, tx);
        epoch
    }

    fn compatible(&self, state: &StateValue) -> bool {
        match state {
            StateValue::Snapshot(s) => !self.historical && s.schema() == &self.schema,
            StateValue::Historical(h) => self.historical && h.schema() == &self.schema,
        }
    }

    /// Stamp of `tuple` open at the current end of history, if any.
    fn open_stamp(&mut self, tuple: &Tuple) -> Option<&mut Stamp> {
        self.records
            .get_mut(tuple)
            .and_then(|v| v.last_mut())
            .filter(|s| s.stop == OPEN)
    }

    fn apply(&mut self, state: &StateValue, tx: TransactionNumber) {
        match state {
            StateValue::Snapshot(s) => {
                // Close intervals for tuples leaving the state.
                let leaving: Vec<Tuple> = self
                    .records
                    .iter()
                    .filter(|(t, stamps)| {
                        stamps.last().is_some_and(|st| st.stop == OPEN) && !s.contains(t)
                    })
                    .map(|(t, _)| t.clone())
                    .collect();
                for t in leaving {
                    self.open_stamp(&t).expect("filtered to open").stop = tx.0;
                }
                // Open intervals for arriving tuples.
                for t in s.iter() {
                    if self.open_stamp(t).is_none() {
                        self.records.entry(t.clone()).or_default().push(Stamp {
                            start: tx.0,
                            stop: OPEN,
                            valid: None,
                        });
                    }
                }
            }
            StateValue::Historical(h) => {
                // Close intervals for tuples leaving or changing valid time.
                let closing: Vec<Tuple> = self
                    .records
                    .iter()
                    .filter(|(t, stamps)| {
                        stamps.last().is_some_and(|st| {
                            st.stop == OPEN && h.valid_time(t) != st.valid.as_ref()
                        })
                    })
                    .map(|(t, _)| t.clone())
                    .collect();
                for t in closing {
                    self.open_stamp(&t).expect("filtered to open").stop = tx.0;
                }
                // Open intervals for arriving/revalued tuples.
                for (t, e) in h.iter() {
                    if self.open_stamp(t).is_none() {
                        self.records.entry(t.clone()).or_default().push(Stamp {
                            start: tx.0,
                            stop: OPEN,
                            valid: Some(e.clone()),
                        });
                    }
                }
            }
        }
    }

    fn state_at(&self, tx: TransactionNumber) -> StateValue {
        if self.historical {
            let entries = self.records.iter().flat_map(|(t, stamps)| {
                stamps
                    .iter()
                    .filter(|s| s.start <= tx.0 && tx.0 < s.stop)
                    .map(|s| {
                        (
                            t.clone(),
                            s.valid.clone().expect("historical stamps carry elements"),
                        )
                    })
            });
            StateValue::Historical(
                HistoricalState::new(self.schema.clone(), entries)
                    .expect("stored entries are valid"),
            )
        } else {
            let tuples: Vec<Tuple> = self
                .records
                .iter()
                .filter(|(_, stamps)| stamps.iter().any(|s| s.start <= tx.0 && tx.0 < s.stop))
                .map(|(t, _)| t.clone())
                .collect();
            StateValue::Snapshot(
                SnapshotState::new(self.schema.clone(), tuples).expect("stored tuples are valid"),
            )
        }
    }

    /// `state_at` with the selection evaluated *while scanning*: tuples
    /// the predicate rejects are never materialized into the result. The
    /// projection (if any) then runs on the already-reduced state via the
    /// shared filter code, so semantics — errors included — stay
    /// identical to the un-pushed `π ∘ σ ∘ state_at`.
    fn state_at_filtered(
        &self,
        tx: TransactionNumber,
        historical: bool,
        filter: &RollbackFilter<'_>,
    ) -> Result<StateValue, EvalError> {
        let Some(predicate) = filter.predicate.filter(|_| self.historical == historical) else {
            // Nothing to evaluate during the scan (projection-only), or
            // the stored kind cannot satisfy the query — materialize and
            // let the shared filter code apply or diagnose, exactly as
            // the un-pushed path would.
            return filter.apply(self.state_at(tx), historical);
        };
        // Mirror σ/σ̂: compile against this epoch's scheme, wrapping a
        // compile failure the way the operator the caller wrote would
        // (σ surfaces a SnapshotError, σ̂ an HistoricalError).
        let compiled = match predicate.compile(&self.schema) {
            Ok(c) => c,
            Err(e) if self.historical => return Err(EvalError::Historical(e.into())),
            Err(e) => return Err(EvalError::Snapshot(e)),
        };
        let covers = |s: &Stamp| s.start <= tx.0 && tx.0 < s.stop;
        let state = if self.historical {
            let entries = self
                .records
                .iter()
                .filter(|(t, _)| compiled.eval(t))
                .flat_map(|(t, stamps)| {
                    stamps.iter().filter(|s| covers(s)).map(|s| {
                        (
                            t.clone(),
                            s.valid.clone().expect("historical stamps carry elements"),
                        )
                    })
                });
            StateValue::Historical(
                HistoricalState::new(self.schema.clone(), entries)
                    .expect("stored entries are valid"),
            )
        } else {
            let tuples: Vec<Tuple> = self
                .records
                .iter()
                .filter(|(t, _)| compiled.eval(t))
                .filter(|(_, stamps)| stamps.iter().any(covers))
                .map(|(t, _)| t.clone())
                .collect();
            StateValue::Snapshot(
                SnapshotState::new(self.schema.clone(), tuples).expect("stored tuples are valid"),
            )
        };
        let remaining = RollbackFilter {
            predicate: None,
            project: filter.project,
        };
        remaining.apply(state, historical)
    }

    fn space_bytes(&self) -> usize {
        self.records
            .iter()
            .map(|(t, stamps)| {
                t.size_bytes()
                    + stamps
                        .iter()
                        .map(|s| 16 + s.valid.as_ref().map_or(0, TemporalElement::size_bytes))
                        .sum::<usize>()
            })
            .sum()
    }
}

/// The tuple-timestamp store: epochs of interval-stamped tuples.
#[derive(Debug, Default)]
pub struct TupleTimestampStore {
    epochs: Vec<Epoch>,
    txs: Vec<TransactionNumber>,
}

impl TupleTimestampStore {
    /// An empty store.
    pub fn new() -> TupleTimestampStore {
        TupleTimestampStore::default()
    }
}

impl RollbackStore for TupleTimestampStore {
    fn append(&mut self, state: &StateValue, tx: TransactionNumber) {
        debug_assert!(self.txs.last().is_none_or(|t| *t < tx));
        self.txs.push(tx);
        match self.epochs.last_mut() {
            Some(e) if e.compatible(state) => e.apply(state, tx),
            _ => self.epochs.push(Epoch::new(state, tx)),
        }
    }

    fn state_at(&self, tx: TransactionNumber) -> Option<StateValue> {
        if self.txs.first().is_none_or(|t| tx < *t) {
            return None;
        }
        let idx = self.epochs.partition_point(|e| e.start_tx <= tx);
        Some(self.epochs[idx - 1].state_at(tx))
    }

    fn state_at_filtered(
        &self,
        tx: TransactionNumber,
        historical: bool,
        filter: &RollbackFilter<'_>,
    ) -> Result<Option<StateValue>, EvalError> {
        if self.txs.first().is_none_or(|t| tx < *t) {
            return Ok(None);
        }
        let idx = self.epochs.partition_point(|e| e.start_tx <= tx);
        self.epochs[idx - 1]
            .state_at_filtered(tx, historical, filter)
            .map(Some)
    }

    fn current(&self) -> Option<StateValue> {
        self.last_tx().and_then(|t| self.state_at(t))
    }

    fn current_filtered(
        &self,
        historical: bool,
        filter: &RollbackFilter<'_>,
    ) -> Result<Option<StateValue>, EvalError> {
        match self.last_tx() {
            Some(t) => self.state_at_filtered(t, historical, filter),
            None => Ok(None),
        }
    }

    fn version_count(&self) -> usize {
        self.txs.len()
    }

    fn first_tx(&self) -> Option<TransactionNumber> {
        self.txs.first().copied()
    }

    fn last_tx(&self) -> Option<TransactionNumber> {
        self.txs.last().copied()
    }

    fn space_bytes(&self) -> usize {
        self.epochs.iter().map(Epoch::space_bytes).sum::<usize>() + self.txs.len() * 8
    }

    fn version_txs(&self) -> Vec<TransactionNumber> {
        self.txs.clone()
    }

    fn truncate_before(&mut self, tx: TransactionNumber) -> usize {
        let idx = self.txs.partition_point(|t| *t <= tx);
        let Some(floor) = idx.checked_sub(1) else {
            return 0;
        };
        if floor == 0 {
            return 0;
        }
        let floor_tx = self.txs[floor];
        // Drop epochs that ended before the floor.
        let containing = self
            .epochs
            .partition_point(|e| e.start_tx <= floor_tx)
            .saturating_sub(1);
        self.epochs.drain(..containing);
        // Within the surviving epochs, drop stamps wholly before the
        // floor and then empty record entries.
        for epoch in &mut self.epochs {
            for stamps in epoch.records.values_mut() {
                stamps.retain(|s| s.stop > floor_tx.0);
            }
            epoch.records.retain(|_, stamps| !stamps.is_empty());
        }
        self.txs.drain(..floor);
        floor
    }

    fn kind(&self) -> BackendKind {
        BackendKind::TupleTimestamp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txtime_snapshot::{DomainType, Value};

    fn snap(vals: &[i64]) -> StateValue {
        let schema = Schema::new(vec![("x", DomainType::Int)]).unwrap();
        StateValue::Snapshot(
            SnapshotState::from_rows(schema, vals.iter().map(|&v| vec![Value::Int(v)])).unwrap(),
        )
    }

    fn hist(vals: &[(i64, u32, u32)]) -> StateValue {
        let schema = Schema::new(vec![("x", DomainType::Int)]).unwrap();
        StateValue::Historical(
            HistoricalState::new(
                schema,
                vals.iter().map(|&(v, s, e)| {
                    (
                        Tuple::new(vec![Value::Int(v)]),
                        TemporalElement::period(s, e),
                    )
                }),
            )
            .unwrap(),
        )
    }

    #[test]
    fn findstate_contract_snapshot() {
        let mut s = TupleTimestampStore::new();
        s.append(&snap(&[1]), TransactionNumber(1));
        s.append(&snap(&[1, 2]), TransactionNumber(3));
        s.append(&snap(&[2]), TransactionNumber(4));
        s.append(&snap(&[1, 2]), TransactionNumber(7)); // 1 returns
        assert_eq!(s.state_at(TransactionNumber(0)), None);
        assert_eq!(s.state_at(TransactionNumber(1)), Some(snap(&[1])));
        assert_eq!(s.state_at(TransactionNumber(2)), Some(snap(&[1])));
        assert_eq!(s.state_at(TransactionNumber(3)), Some(snap(&[1, 2])));
        assert_eq!(s.state_at(TransactionNumber(5)), Some(snap(&[2])));
        assert_eq!(s.state_at(TransactionNumber(8)), Some(snap(&[1, 2])));
        assert_eq!(s.current(), Some(snap(&[1, 2])));
    }

    #[test]
    fn findstate_contract_historical() {
        let mut s = TupleTimestampStore::new();
        s.append(&hist(&[(1, 0, 5)]), TransactionNumber(1));
        s.append(&hist(&[(1, 0, 9)]), TransactionNumber(4)); // revalued
        assert_eq!(s.state_at(TransactionNumber(2)), Some(hist(&[(1, 0, 5)])));
        assert_eq!(s.state_at(TransactionNumber(4)), Some(hist(&[(1, 0, 9)])));
    }

    #[test]
    fn schema_change_starts_new_epoch() {
        let mut s = TupleTimestampStore::new();
        s.append(&snap(&[1]), TransactionNumber(1));
        let other_schema = Schema::new(vec![("y", DomainType::Int)]).unwrap();
        let other = StateValue::Snapshot(
            SnapshotState::from_rows(other_schema, vec![vec![Value::Int(9)]]).unwrap(),
        );
        s.append(&other, TransactionNumber(2));
        assert_eq!(s.state_at(TransactionNumber(1)), Some(snap(&[1])));
        assert_eq!(s.state_at(TransactionNumber(2)), Some(other));
        assert_eq!(s.epochs.len(), 2);
    }

    #[test]
    fn stable_tuples_are_stored_once() {
        let mut s = TupleTimestampStore::new();
        // A 100-tuple state that never changes, 20 versions.
        let vals: Vec<i64> = (0..100).collect();
        for v in 1..=20u64 {
            s.append(&snap(&vals), TransactionNumber(v));
        }
        let records: usize = s.epochs[0].records.values().map(Vec::len).sum();
        assert_eq!(records, 100); // one lifetime per tuple, not 2000
    }
}
