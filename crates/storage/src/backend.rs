//! The storage-backend abstraction.

use std::fmt;
use std::num::NonZeroUsize;
use std::sync::Arc;

use txtime_core::{EvalError, RollbackFilter, StateValue, TransactionNumber};
use txtime_exec::ExecPool;

use crate::cache::MaterializationCache;
use crate::delta::StateDelta;
use crate::metrics::{CompactionStats, InternerStats, ShardReport, ShardSlot};

/// The error from [`CheckpointPolicy::every_k`] for a zero interval.
///
/// Checkpointing "every 0 versions" has no coherent meaning; earlier
/// revisions silently clamped it to 1, which masked caller bugs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZeroCheckpointInterval;

impl fmt::Display for ZeroCheckpointInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("checkpoint interval must be at least 1 (use CheckpointPolicy::Never to disable checkpoints)")
    }
}

impl std::error::Error for ZeroCheckpointInterval {}

/// How often a delta-based store materializes a full checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointPolicy {
    /// Never checkpoint: one base state, deltas forever.
    Never,
    /// A full state every `k` versions. The payload is non-zero by
    /// construction; build it with [`CheckpointPolicy::every_k`].
    EveryK(NonZeroUsize),
}

impl CheckpointPolicy {
    /// A policy that checkpoints every `k` versions, rejecting `k = 0`
    /// instead of guessing what it meant.
    pub fn every_k(k: usize) -> Result<CheckpointPolicy, ZeroCheckpointInterval> {
        NonZeroUsize::new(k)
            .map(CheckpointPolicy::EveryK)
            .ok_or(ZeroCheckpointInterval)
    }

    /// Whether version number `index` (0-based) should be a checkpoint.
    pub fn is_checkpoint(self, index: usize) -> bool {
        match self {
            CheckpointPolicy::Never => index == 0,
            CheckpointPolicy::EveryK(k) => index.is_multiple_of(k.get()),
        }
    }
}

/// A physical representation of one relation's state sequence.
///
/// The contract — checked by the differential tests in [`crate::equiv`] —
/// is FINDSTATE's: `state_at(tx)` returns the state of the version with
/// the largest transaction number ≤ `tx`, or `None` before the first
/// version.
pub trait RollbackStore: Send + Sync {
    /// Installs a new current state committed at `tx`. Transaction numbers
    /// must be presented in strictly increasing order.
    fn append(&mut self, state: &StateValue, tx: TransactionNumber);

    /// [`RollbackStore::append`], additionally returning the
    /// [`StateDelta`] that carries the previous current state to the new
    /// one — the input to incremental view maintenance. An append to an
    /// empty store returns a `Reschema` delta (there is no "from" state).
    ///
    /// The provided implementation diffs around the plain `append`; the
    /// delta-based stores override it to hand back the delta they compute
    /// for their own representation anyway, so a `modify_state` with
    /// registered dependent views pays for at most one diff.
    fn append_with_delta(&mut self, state: &StateValue, tx: TransactionNumber) -> StateDelta {
        let prev = self.current();
        self.append(state, tx);
        let appended = self.current().expect("append installed a current state");
        match prev {
            Some(p) => StateDelta::between(&p, &appended),
            None => StateDelta::Reschema(Box::new(appended)),
        }
    }

    /// Size of the per-relation string pool, for stores that intern
    /// appended states ([`crate::ForwardDeltaStore`],
    /// [`crate::ReverseDeltaStore`]); `None` for stores without one.
    fn interner_stats(&self) -> Option<InternerStats> {
        None
    }

    /// FINDSTATE: the state current at `tx`.
    fn state_at(&self, tx: TransactionNumber) -> Option<StateValue>;

    /// FINDSTATE for a batch of probes, answered together.
    ///
    /// Answers are positional: `result[i]` is exactly
    /// `state_at(txs[i])`. The provided implementation resolves each
    /// probe independently; the delta-replay backends override it to
    /// replay each chain segment once per batch, capturing every wanted
    /// version along the way, instead of once per probe
    /// ([`crate::Engine::resolve_many`] is the caller).
    fn state_at_many(&self, txs: &[TransactionNumber]) -> Vec<Option<StateValue>> {
        txs.iter().map(|tx| self.state_at(*tx)).collect()
    }

    /// FINDSTATE with a selection/projection pushed into it — the storage
    /// side of `σ_F(ρ(I, N))` and friends.
    ///
    /// The provided implementation materializes the version and then
    /// applies the filter, which is *definitionally* the un-pushed
    /// computation. Stores that can evaluate the filter while scanning
    /// (such as [`crate::TupleTimestampStore`]) override it; the
    /// differential tests in [`crate::equiv`] hold every override to the
    /// same observable behavior, errors included. `Ok(None)` means "no
    /// version at `tx`", exactly like [`RollbackStore::state_at`].
    fn state_at_filtered(
        &self,
        tx: TransactionNumber,
        historical: bool,
        filter: &RollbackFilter<'_>,
    ) -> Result<Option<StateValue>, EvalError> {
        match self.state_at(tx) {
            Some(s) => filter.apply(s, historical).map(Some),
            None => Ok(None),
        }
    }

    /// The most recent state, if any.
    fn current(&self) -> Option<StateValue>;

    /// [`RollbackStore::current`] with a pushed filter; see
    /// [`RollbackStore::state_at_filtered`].
    fn current_filtered(
        &self,
        historical: bool,
        filter: &RollbackFilter<'_>,
    ) -> Result<Option<StateValue>, EvalError> {
        match self.current() {
            Some(s) => filter.apply(s, historical).map(Some),
            None => Ok(None),
        }
    }

    /// Number of versions stored.
    fn version_count(&self) -> usize;

    /// The transaction number of the first version, if any.
    fn first_tx(&self) -> Option<TransactionNumber>;

    /// The transaction number of the most recent version, if any.
    fn last_tx(&self) -> Option<TransactionNumber>;

    /// Approximate logical footprint in bytes (experiment E3).
    fn space_bytes(&self) -> usize;

    /// The commit transaction numbers of every stored version, ascending.
    fn version_txs(&self) -> Vec<TransactionNumber>;

    /// Installs the worker pool the store may fan work out on (per-shard
    /// resolution in [`crate::ShardedStore`]). Unsharded backends run
    /// sequentially and ignore it.
    fn set_pool(&mut self, _pool: &Arc<ExecPool>) {}

    /// Folds the store's delta chain into materialized checkpoints so no
    /// rollback probe replays more than `every` deltas — the compaction
    /// pass bounding worst-case `state_at` latency. Backends without a
    /// replay chain (full-copy, tuple-timestamp) have nothing to fold and
    /// return zero counters.
    fn compact(&mut self, _every: NonZeroUsize) -> CompactionStats {
        CompactionStats::default()
    }

    /// Compaction counters accumulated over the store's lifetime.
    fn compaction_stats(&self) -> CompactionStats {
        CompactionStats::default()
    }

    /// Per-shard chain breakdown; a single-slot report for unsharded
    /// backends.
    fn shard_report(&self) -> ShardReport {
        ShardReport {
            shards: vec![ShardSlot {
                versions: self.version_count(),
                tuples: self.current().map(|s| s.len()).unwrap_or(0),
                bytes: self.space_bytes(),
            }],
            compaction: self.compaction_stats(),
        }
    }

    /// Discards every version strictly older than the version current at
    /// `tx` (the floor version itself is retained, so `state_at(tx)` is
    /// unchanged at and after the floor). Returns the number of versions
    /// dropped; a `tx` before the first version is a no-op.
    fn truncate_before(&mut self, tx: TransactionNumber) -> usize;

    /// The backend's display name.
    fn kind(&self) -> BackendKind;
}

/// The available backend families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// [`crate::FullCopyStore`]
    FullCopy,
    /// [`crate::ForwardDeltaStore`]
    ForwardDelta,
    /// [`crate::ReverseDeltaStore`]
    ReverseDelta,
    /// [`crate::TupleTimestampStore`]
    TupleTimestamp,
}

impl BackendKind {
    /// All backend kinds, for sweeps.
    pub const ALL: [BackendKind; 4] = [
        BackendKind::FullCopy,
        BackendKind::ForwardDelta,
        BackendKind::ReverseDelta,
        BackendKind::TupleTimestamp,
    ];

    /// Instantiates an empty store of this kind (forward-delta stores use
    /// the given checkpoint policy; others ignore it).
    pub fn new_store(self, checkpoints: CheckpointPolicy) -> Box<dyn RollbackStore> {
        self.new_store_with_cache(checkpoints, None)
    }

    /// Instantiates an empty store wired to a shared materialization
    /// cache under the given relation id. Only the delta-replay backends
    /// consult the cache; the others ignore it.
    pub fn new_store_with_cache(
        self,
        checkpoints: CheckpointPolicy,
        cache: Option<(Arc<MaterializationCache>, u64)>,
    ) -> Box<dyn RollbackStore> {
        match self {
            BackendKind::FullCopy => Box::new(crate::FullCopyStore::new()),
            BackendKind::ForwardDelta => {
                Box::new(crate::ForwardDeltaStore::with_cache(checkpoints, cache))
            }
            BackendKind::ReverseDelta => {
                Box::new(crate::ReverseDeltaStore::with_cache(checkpoints, cache))
            }
            BackendKind::TupleTimestamp => Box::new(crate::TupleTimestampStore::new()),
        }
    }
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BackendKind::FullCopy => "full-copy",
            BackendKind::ForwardDelta => "forward-delta",
            BackendKind::ReverseDelta => "reverse-delta",
            BackendKind::TupleTimestamp => "tuple-timestamp",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkpoint_policy() {
        let p = CheckpointPolicy::every_k(4).unwrap();
        assert!(p.is_checkpoint(0));
        assert!(!p.is_checkpoint(3));
        assert!(p.is_checkpoint(4));
        assert!(p.is_checkpoint(8));
        assert!(CheckpointPolicy::Never.is_checkpoint(0));
        assert!(!CheckpointPolicy::Never.is_checkpoint(100));
    }

    #[test]
    fn zero_checkpoint_interval_is_rejected() {
        let err = CheckpointPolicy::every_k(0).unwrap_err();
        assert_eq!(err, ZeroCheckpointInterval);
        assert!(err.to_string().contains("at least 1"));
    }

    #[test]
    fn backend_kinds_instantiate() {
        for k in BackendKind::ALL {
            let s = k.new_store(CheckpointPolicy::every_k(8).unwrap());
            assert_eq!(s.version_count(), 0);
            assert_eq!(s.kind(), k);
            assert!(s.current().is_none());
        }
    }
}
