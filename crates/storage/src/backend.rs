//! The storage-backend abstraction.

use std::fmt;

use txtime_core::{StateValue, TransactionNumber};

/// How often a delta-based store materializes a full checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointPolicy {
    /// Never checkpoint: one base state, deltas forever.
    Never,
    /// A full state every `k` versions (k ≥ 1).
    EveryK(usize),
}

impl CheckpointPolicy {
    /// Whether version number `index` (0-based) should be a checkpoint.
    pub fn is_checkpoint(self, index: usize) -> bool {
        match self {
            CheckpointPolicy::Never => index == 0,
            CheckpointPolicy::EveryK(k) => index.is_multiple_of(k.max(1)),
        }
    }
}

/// A physical representation of one relation's state sequence.
///
/// The contract — checked by the differential tests in [`crate::equiv`] —
/// is FINDSTATE's: `state_at(tx)` returns the state of the version with
/// the largest transaction number ≤ `tx`, or `None` before the first
/// version.
pub trait RollbackStore: Send {
    /// Installs a new current state committed at `tx`. Transaction numbers
    /// must be presented in strictly increasing order.
    fn append(&mut self, state: &StateValue, tx: TransactionNumber);

    /// FINDSTATE: the state current at `tx`.
    fn state_at(&self, tx: TransactionNumber) -> Option<StateValue>;

    /// The most recent state, if any.
    fn current(&self) -> Option<StateValue>;

    /// Number of versions stored.
    fn version_count(&self) -> usize;

    /// The transaction number of the first version, if any.
    fn first_tx(&self) -> Option<TransactionNumber>;

    /// The transaction number of the most recent version, if any.
    fn last_tx(&self) -> Option<TransactionNumber>;

    /// Approximate logical footprint in bytes (experiment E3).
    fn space_bytes(&self) -> usize;

    /// The commit transaction numbers of every stored version, ascending.
    fn version_txs(&self) -> Vec<TransactionNumber>;

    /// Discards every version strictly older than the version current at
    /// `tx` (the floor version itself is retained, so `state_at(tx)` is
    /// unchanged at and after the floor). Returns the number of versions
    /// dropped; a `tx` before the first version is a no-op.
    fn truncate_before(&mut self, tx: TransactionNumber) -> usize;

    /// The backend's display name.
    fn kind(&self) -> BackendKind;
}

/// The available backend families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// [`crate::FullCopyStore`]
    FullCopy,
    /// [`crate::ForwardDeltaStore`]
    ForwardDelta,
    /// [`crate::ReverseDeltaStore`]
    ReverseDelta,
    /// [`crate::TupleTimestampStore`]
    TupleTimestamp,
}

impl BackendKind {
    /// All backend kinds, for sweeps.
    pub const ALL: [BackendKind; 4] = [
        BackendKind::FullCopy,
        BackendKind::ForwardDelta,
        BackendKind::ReverseDelta,
        BackendKind::TupleTimestamp,
    ];

    /// Instantiates an empty store of this kind (forward-delta stores use
    /// the given checkpoint policy; others ignore it).
    pub fn new_store(self, checkpoints: CheckpointPolicy) -> Box<dyn RollbackStore> {
        match self {
            BackendKind::FullCopy => Box::new(crate::FullCopyStore::new()),
            BackendKind::ForwardDelta => Box::new(crate::ForwardDeltaStore::new(checkpoints)),
            BackendKind::ReverseDelta => Box::new(crate::ReverseDeltaStore::new()),
            BackendKind::TupleTimestamp => Box::new(crate::TupleTimestampStore::new()),
        }
    }
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BackendKind::FullCopy => "full-copy",
            BackendKind::ForwardDelta => "forward-delta",
            BackendKind::ReverseDelta => "reverse-delta",
            BackendKind::TupleTimestamp => "tuple-timestamp",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkpoint_policy() {
        let p = CheckpointPolicy::EveryK(4);
        assert!(p.is_checkpoint(0));
        assert!(!p.is_checkpoint(3));
        assert!(p.is_checkpoint(4));
        assert!(p.is_checkpoint(8));
        assert!(CheckpointPolicy::Never.is_checkpoint(0));
        assert!(!CheckpointPolicy::Never.is_checkpoint(100));
    }

    #[test]
    fn backend_kinds_instantiate() {
        for k in BackendKind::ALL {
            let s = k.new_store(CheckpointPolicy::EveryK(8));
            assert_eq!(s.version_count(), 0);
            assert_eq!(s.kind(), k);
            assert!(s.current().is_none());
        }
    }
}
