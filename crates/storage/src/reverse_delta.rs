//! The reverse-delta backend: current state in full, deltas backwards.

use std::collections::{BTreeMap, BTreeSet};
use std::num::NonZeroUsize;
use std::sync::Arc;

use txtime_core::{StateValue, TransactionNumber};
use txtime_snapshot::StrInterner;

use crate::backend::{BackendKind, CheckpointPolicy, RollbackStore};
use crate::cache::MaterializationCache;
use crate::delta::{intern_state, StateDelta};
use crate::metrics::{CompactionStats, InternerStats};

/// Stores the current state materialized and, for each superseded version
/// `i`, the reverse delta carrying version `i+1` back to version `i`.
///
/// Current-state access is O(1); `state_at(tx)` walks backwards applying
/// reverse deltas until it reaches the target version (or a materialized
/// checkpoint nearer to it), so the cost of a rollback grows with how far
/// in the past it reaches — the natural trade-off when most queries are
/// about the present (the same trade-off made by, e.g., RCS and by Reed's
/// versioned objects). A [`CheckpointPolicy`] and the explicit
/// [`RollbackStore::compact`] pass bound that replay length by pinning
/// full states at interval version indices.
#[derive(Debug, Default)]
pub struct ReverseDeltaStore {
    /// Reverse deltas: `undo[i]` carries version `i+1` to version `i`.
    undo: Vec<StateDelta>,
    /// Transaction numbers of every version, ascending.
    txs: Vec<TransactionNumber>,
    /// The materialized current state.
    current: Option<StateValue>,
    /// Materialized checkpoints keyed by version index: replay seeds
    /// closer to old targets than the current state. Installed at append
    /// time under [`CheckpointPolicy::EveryK`] and retroactively by
    /// [`RollbackStore::compact`].
    ckpts: BTreeMap<usize, StateValue>,
    /// When to checkpoint at append time. `Never` keeps the pure
    /// reverse-delta representation: one current state, deltas all the
    /// way back.
    policy: Option<CheckpointPolicy>,
    /// Lifetime compaction counters.
    compaction: CompactionStats,
    /// Shared materialization cache and this relation's id within it.
    cache: Option<(Arc<MaterializationCache>, u64)>,
    /// Per-relation string pool: every appended state is interned, so
    /// replay compares strings by pointer and never re-hashes them.
    interner: StrInterner,
}

impl ReverseDeltaStore {
    /// An empty store without append-time checkpoints.
    pub fn new() -> ReverseDeltaStore {
        ReverseDeltaStore::default()
    }

    /// An empty store with the given checkpoint policy, wired to a shared
    /// materialization cache under the given relation id.
    pub fn with_cache(
        policy: CheckpointPolicy,
        cache: Option<(Arc<MaterializationCache>, u64)>,
    ) -> ReverseDeltaStore {
        ReverseDeltaStore {
            policy: Some(policy),
            cache,
            ..ReverseDeltaStore::default()
        }
    }

    /// The nearest replay seed strictly above `target` and below `limit`:
    /// the closest checkpoint if one exists, else `limit` (whose state the
    /// caller supplies).
    fn checkpoint_seed(&self, target: usize, limit: usize) -> Option<(usize, StateValue)> {
        self.ckpts
            .range(target + 1..limit.max(target + 1))
            .next()
            .map(|(&j, s)| (j, s.clone()))
    }
}

impl RollbackStore for ReverseDeltaStore {
    fn append(&mut self, state: &StateValue, tx: TransactionNumber) {
        debug_assert!(self.txs.last().is_none_or(|t| *t < tx));
        // Intern once at the door (see ForwardDeltaStore::append).
        let state = intern_state(state, &mut self.interner);
        if let Some(prev) = &self.current {
            self.undo.push(StateDelta::between(&state, prev));
        }
        // Opportunistic checkpoint at the policy's interval: an O(1)
        // clone of the state being installed, pinned as a future replay
        // seed. (`Never` pins nothing — index 0 is the *base* for the
        // forward store, but here it would defeat the representation.)
        if let Some(CheckpointPolicy::EveryK(k)) = self.policy {
            let idx = self.txs.len();
            if idx.is_multiple_of(k.get()) {
                self.ckpts.insert(idx, state.clone());
            }
        }
        self.txs.push(tx);
        self.current = Some(state);
    }

    fn state_at(&self, tx: TransactionNumber) -> Option<StateValue> {
        let idx = self.txs.partition_point(|t| *t <= tx);
        let target = idx.checked_sub(1)?;
        let target_tx = self.txs[target];
        if let Some((cache, rel)) = &self.cache {
            // Counted probe: the caller wanted exactly this version.
            if let Some(state) = cache.get(*rel, target_tx.0) {
                return Some(state);
            }
        }
        // An exact checkpoint answers without any replay.
        if let Some(s) = self.ckpts.get(&target) {
            return Some(s.clone());
        }
        // Replay starts from the materialized current state (version
        // `undo.len()`) unless a checkpoint or a cached version nearer
        // the target can seed it (uncounted, opportunistic probes).
        let mut seed = self.undo.len();
        let mut state = None;
        if let Some((j, s)) = self.checkpoint_seed(target, seed) {
            seed = j;
            state = Some(s);
        }
        if let Some((cache, rel)) = &self.cache {
            if let Some((j, s)) =
                (target + 1..seed).find_map(|j| cache.peek(*rel, self.txs[j].0).map(|s| (j, s)))
            {
                seed = j;
                state = Some(s);
            }
        }
        let mut state =
            state.unwrap_or_else(|| self.current.clone().expect("non-empty store has a current"));
        let mut replayed = 0u64;
        for i in (target..seed).rev() {
            self.undo[i].apply_in_place(&mut state);
            replayed += 1;
        }
        if let Some((cache, rel)) = &self.cache {
            cache.add_replayed(replayed);
            if replayed > 0 {
                // The current state is O(1) to fetch; only replayed
                // versions are worth remembering.
                cache.insert(*rel, target_tx.0, state.clone());
            }
        }
        Some(state)
    }

    /// Batched FINDSTATE: one backward walk from the current state (or
    /// the nearest cached seed) answers every probe, capturing each
    /// wanted version as the walk sweeps past it — instead of one walk
    /// per probe ([`crate::Engine::resolve_many`] is the caller).
    fn state_at_many(&self, txs: &[TransactionNumber]) -> Vec<Option<StateValue>> {
        let floors: Vec<Option<usize>> = txs
            .iter()
            .map(|tx| self.txs.partition_point(|t| *t <= *tx).checked_sub(1))
            .collect();
        // Triage the distinct floor versions through the cache (counted:
        // each was wanted by at least one probe).
        let mut resolved: BTreeMap<usize, StateValue> = BTreeMap::new();
        let mut missing: BTreeSet<usize> = BTreeSet::new();
        for &floor in floors.iter().flatten() {
            if resolved.contains_key(&floor) || missing.contains(&floor) {
                continue;
            }
            if let Some((cache, rel)) = &self.cache {
                if let Some(s) = cache.get(*rel, self.txs[floor].0) {
                    resolved.insert(floor, s);
                    continue;
                }
            }
            if let Some(s) = self.ckpts.get(&floor) {
                resolved.insert(floor, s.clone());
                continue;
            }
            missing.insert(floor);
        }
        if let (Some(&lo), Some(&hi)) = (missing.first(), missing.last()) {
            // Seed the walk at the materialized current state, or at a
            // checkpoint / cached version just above the highest wanted
            // one.
            let mut seed = self.undo.len();
            let mut state = None;
            if let Some((j, s)) = self.checkpoint_seed(hi, seed) {
                seed = j;
                state = Some(s);
            }
            if let Some((cache, rel)) = &self.cache {
                if let Some((j, s)) =
                    (hi + 1..seed).find_map(|j| cache.peek(*rel, self.txs[j].0).map(|s| (j, s)))
                {
                    seed = j;
                    state = Some(s);
                }
            }
            let mut state = state
                .unwrap_or_else(|| self.current.clone().expect("non-empty store has a current"));
            if missing.contains(&seed) {
                // The highest wanted version is the current one: no
                // replay, and nothing worth caching.
                resolved.insert(seed, state.clone());
            }
            let mut replayed = 0u64;
            for i in (lo..seed).rev() {
                self.undo[i].apply_in_place(&mut state);
                replayed += 1;
                if missing.contains(&i) {
                    resolved.insert(i, state.clone());
                    if let Some((cache, rel)) = &self.cache {
                        cache.insert(*rel, self.txs[i].0, state.clone());
                    }
                }
            }
            if let Some((cache, _)) = &self.cache {
                cache.add_replayed(replayed);
            }
        }
        floors
            .iter()
            .map(|f| f.map(|i| resolved[&i].clone()))
            .collect()
    }

    fn current(&self) -> Option<StateValue> {
        self.current.clone()
    }

    fn interner_stats(&self) -> Option<InternerStats> {
        Some(InternerStats {
            strings: self.interner.len(),
            bytes: self.interner.size_bytes(),
        })
    }

    fn version_count(&self) -> usize {
        self.txs.len()
    }

    fn first_tx(&self) -> Option<TransactionNumber> {
        self.txs.first().copied()
    }

    fn last_tx(&self) -> Option<TransactionNumber> {
        self.txs.last().copied()
    }

    fn space_bytes(&self) -> usize {
        // The interner pool is real resident memory owned by this store;
        // count it alongside the deltas it deduplicates.
        self.current.as_ref().map_or(0, StateValue::size_bytes)
            + self.undo.iter().map(StateDelta::size_bytes).sum::<usize>()
            + self
                .ckpts
                .values()
                .map(StateValue::size_bytes)
                .sum::<usize>()
            + self.txs.len() * 8
            + self.interner.size_bytes()
    }

    fn compact(&mut self, every: NonZeroUsize) -> CompactionStats {
        // Pin a checkpoint at every `every`-th version index, so no later
        // probe replays more than `every` deltas. One backward replay
        // from the nearest existing seed fills every missing slot.
        let missing: Vec<usize> = (0..self.undo.len())
            .filter(|i| i.is_multiple_of(every.get()) && !self.ckpts.contains_key(i))
            .collect();
        let (Some(&lo), Some(&hi)) = (missing.first(), missing.last()) else {
            return CompactionStats::default();
        };
        let mut pass = CompactionStats {
            runs: 1,
            ..CompactionStats::default()
        };
        let (seed, mut state) = match self.checkpoint_seed(hi, self.undo.len()) {
            Some((j, s)) => (j, s),
            None => (
                self.undo.len(),
                self.current.clone().expect("undo implies a current state"),
            ),
        };
        let mut want = missing.iter().rev().peekable();
        for i in (lo..seed).rev() {
            self.undo[i].apply_in_place(&mut state);
            pass.deltas_folded += 1;
            if want.peek() == Some(&&i) {
                want.next();
                pass.tuples_folded += state.len() as u64;
                self.ckpts.insert(i, state.clone());
            }
        }
        self.compaction = self.compaction.merged(pass);
        pass
    }

    fn compaction_stats(&self) -> CompactionStats {
        self.compaction
    }

    fn version_txs(&self) -> Vec<TransactionNumber> {
        self.txs.clone()
    }

    fn truncate_before(&mut self, tx: TransactionNumber) -> usize {
        let idx = self.txs.partition_point(|t| *t <= tx);
        match idx.checked_sub(1) {
            Some(floor) if floor > 0 => {
                // undo[i] carries version i+1 back to version i; dropping
                // versions < floor means dropping undo[0..floor] and
                // re-indexing the surviving checkpoints by −floor.
                self.undo.drain(..floor);
                self.txs.drain(..floor);
                self.ckpts = self
                    .ckpts
                    .split_off(&floor)
                    .into_iter()
                    .map(|(i, s)| (i - floor, s))
                    .collect();
                floor
            }
            _ => 0,
        }
    }

    fn kind(&self) -> BackendKind {
        BackendKind::ReverseDelta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txtime_snapshot::{DomainType, Schema, SnapshotState, Value};

    fn snap(vals: &[i64]) -> StateValue {
        let schema = Schema::new(vec![("x", DomainType::Int)]).unwrap();
        StateValue::Snapshot(
            SnapshotState::from_rows(schema, vals.iter().map(|&v| vec![Value::Int(v)])).unwrap(),
        )
    }

    #[test]
    fn findstate_contract() {
        let mut s = ReverseDeltaStore::new();
        s.append(&snap(&[1]), TransactionNumber(1));
        s.append(&snap(&[1, 2]), TransactionNumber(3));
        s.append(&snap(&[2]), TransactionNumber(4));
        assert_eq!(s.state_at(TransactionNumber(0)), None);
        assert_eq!(s.state_at(TransactionNumber(1)), Some(snap(&[1])));
        assert_eq!(s.state_at(TransactionNumber(2)), Some(snap(&[1])));
        assert_eq!(s.state_at(TransactionNumber(3)), Some(snap(&[1, 2])));
        assert_eq!(s.state_at(TransactionNumber(9)), Some(snap(&[2])));
        assert_eq!(s.current(), Some(snap(&[2])));
        assert_eq!(s.version_count(), 3);
    }

    #[test]
    fn compact_pins_checkpoints_and_preserves_answers() {
        let mut s = ReverseDeltaStore::new();
        for v in 1..=100u64 {
            s.append(&snap(&[v as i64]), TransactionNumber(v));
        }
        let before: Vec<_> = (0..=101)
            .map(|v| s.state_at(TransactionNumber(v)))
            .collect();
        let pass = s.compact(NonZeroUsize::new(8).unwrap());
        assert_eq!(pass.runs, 1);
        assert!(pass.deltas_folded > 0);
        assert!(pass.tuples_folded > 0);
        let after: Vec<_> = (0..=101)
            .map(|v| s.state_at(TransactionNumber(v)))
            .collect();
        assert_eq!(before, after);
        // A second pass at the same interval finds nothing to fold.
        assert_eq!(s.compact(NonZeroUsize::new(8).unwrap()).runs, 0);
        assert_eq!(s.compaction_stats().runs, 1);
        // Batched probes agree too.
        let txs: Vec<TransactionNumber> = (0..=101).map(TransactionNumber).collect();
        assert_eq!(s.state_at_many(&txs), before);
    }

    #[test]
    fn append_time_checkpoints_match_never_policy_answers() {
        let mut every = ReverseDeltaStore::with_cache(CheckpointPolicy::every_k(4).unwrap(), None);
        let mut never = ReverseDeltaStore::new();
        for v in 1..=33u64 {
            let state = snap(&[v as i64, -(v as i64)]);
            every.append(&state, TransactionNumber(v));
            never.append(&state, TransactionNumber(v));
        }
        for v in 0..=34u64 {
            assert_eq!(
                every.state_at(TransactionNumber(v)),
                never.state_at(TransactionNumber(v)),
                "at tx {v}"
            );
        }
    }

    #[test]
    fn truncate_reindexes_checkpoints() {
        let mut s = ReverseDeltaStore::with_cache(CheckpointPolicy::every_k(4).unwrap(), None);
        for v in 1..=20u64 {
            s.append(&snap(&[v as i64]), TransactionNumber(v));
        }
        assert!(s.truncate_before(TransactionNumber(10)) > 0);
        for v in 10..=20u64 {
            assert_eq!(s.state_at(TransactionNumber(v)), Some(snap(&[v as i64])));
        }
    }

    #[test]
    fn current_access_needs_no_replay() {
        let mut s = ReverseDeltaStore::new();
        for v in 1..=50u64 {
            s.append(&snap(&[v as i64]), TransactionNumber(v));
        }
        // The current state is materialized — identical regardless of
        // history depth.
        assert_eq!(s.current(), Some(snap(&[50])));
        assert_eq!(s.state_at(TransactionNumber(50)), Some(snap(&[50])));
        // And the very first version is still reachable.
        assert_eq!(s.state_at(TransactionNumber(1)), Some(snap(&[1])));
    }
}
