//! Crash recovery: rebuild an engine by replaying the write-ahead log.

use std::io::BufReader;
use std::path::Path;

use txtime_core::CoreError;

use crate::backend::{BackendKind, CheckpointPolicy};
use crate::engine::Engine;
use crate::wal::{read_journal, WalEntry};

/// The outcome of a recovery run.
pub struct Recovery {
    /// The rebuilt engine (journaling re-enabled on the same file).
    pub engine: Engine,
    /// Number of commands replayed.
    pub replayed: usize,
    /// Corrupt journal lines that were skipped (line number, reason).
    /// A torn final line — the classic crash artifact — appears here.
    pub skipped: Vec<(usize, String)>,
}

/// Rebuilds an engine from the journal at `path`.
///
/// Replay applies the *prefix discipline*: entries are replayed in order
/// until the first corrupt line; everything after a corrupt line is
/// discarded (a torn write invalidates the tail, not just the line).
pub fn recover(
    path: impl AsRef<Path>,
    backend: BackendKind,
    checkpoints: CheckpointPolicy,
) -> Result<Recovery, CoreError> {
    let file = std::fs::File::open(path.as_ref())
        .map_err(|e| CoreError::SchemeChange(format!("cannot open WAL: {e}")))?;
    let entries = read_journal(BufReader::new(file))
        .map_err(|e| CoreError::SchemeChange(format!("cannot read WAL: {e}")))?;

    let mut engine = Engine::new(backend, checkpoints);
    let mut replayed = 0;
    let mut skipped = Vec::new();
    for (i, entry) in entries.into_iter().enumerate() {
        match entry {
            WalEntry::Command(cmd) => {
                engine.execute(&cmd)?;
                replayed += 1;
            }
            WalEntry::Corrupt { line, reason } => {
                skipped.push((line, reason));
                // Prefix discipline: stop at the first torn/corrupt line.
                let _ = i;
                break;
            }
        }
    }
    Ok(Recovery {
        engine,
        replayed,
        skipped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use txtime_core::{Command, Expr, RelationType, TransactionNumber, TxSpec};
    use txtime_snapshot::{DomainType, Schema, SnapshotState, Value};

    fn snap(vals: &[i64]) -> SnapshotState {
        let schema = Schema::new(vec![("x", DomainType::Int)]).unwrap();
        SnapshotState::from_rows(schema, vals.iter().map(|&v| vec![Value::Int(v)])).unwrap()
    }

    fn tmpfile(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("txtime-recovery-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join(format!("{name}-{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn recovery_rebuilds_full_history() {
        let path = tmpfile("rebuild");
        {
            let mut e = Engine::with_wal(
                BackendKind::ForwardDelta,
                CheckpointPolicy::every_k(2).unwrap(),
                &path,
            )
            .unwrap();
            e.execute(&Command::define_relation("r", RelationType::Rollback))
                .unwrap();
            for v in [vec![1], vec![1, 2], vec![3]] {
                e.execute(&Command::modify_state("r", Expr::snapshot_const(snap(&v))))
                    .unwrap();
            }
            // Engine dropped here: the "crash".
        }
        let rec = recover(
            &path,
            BackendKind::ForwardDelta,
            CheckpointPolicy::every_k(2).unwrap(),
        )
        .unwrap();
        assert_eq!(rec.replayed, 4);
        assert!(rec.skipped.is_empty());
        let e = rec.engine;
        assert_eq!(e.tx(), TransactionNumber(4));
        assert_eq!(
            e.eval(&Expr::current("r"))
                .unwrap()
                .into_snapshot()
                .unwrap(),
            snap(&[3])
        );
        assert_eq!(
            e.eval(&Expr::rollback("r", TxSpec::At(TransactionNumber(2))))
                .unwrap()
                .into_snapshot()
                .unwrap(),
            snap(&[1])
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_discarded() {
        let path = tmpfile("torn");
        {
            let mut e =
                Engine::with_wal(BackendKind::FullCopy, CheckpointPolicy::Never, &path).unwrap();
            e.execute(&Command::define_relation("r", RelationType::Rollback))
                .unwrap();
            e.execute(&Command::modify_state(
                "r",
                Expr::snapshot_const(snap(&[1])),
            ))
            .unwrap();
        }
        // Simulate a torn final write.
        let mut data = std::fs::read(&path).unwrap();
        data.truncate(data.len() - 5);
        std::fs::write(&path, data).unwrap();

        let rec = recover(&path, BackendKind::FullCopy, CheckpointPolicy::Never).unwrap();
        assert_eq!(rec.replayed, 1); // only the define survived intact
        assert_eq!(rec.skipped.len(), 1);
        assert_eq!(rec.engine.tx(), TransactionNumber(1));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn display_commands_are_not_journaled() {
        let path = tmpfile("display");
        {
            let mut e =
                Engine::with_wal(BackendKind::FullCopy, CheckpointPolicy::Never, &path).unwrap();
            e.execute(&Command::define_relation("r", RelationType::Rollback))
                .unwrap();
            e.execute(&Command::modify_state(
                "r",
                Expr::snapshot_const(snap(&[1])),
            ))
            .unwrap();
            e.execute(&Command::display(Expr::current("r"))).unwrap();
        }
        let rec = recover(&path, BackendKind::FullCopy, CheckpointPolicy::Never).unwrap();
        assert_eq!(rec.replayed, 2);
        let _ = std::fs::remove_file(&path);
    }
}
