//! Space accounting for experiments E3.

use std::fmt;

use txtime_core::RelationType;

use crate::backend::BackendKind;

/// Space usage of one relation.
#[derive(Debug, Clone)]
pub struct RelationSpace {
    /// Relation name.
    pub name: String,
    /// Relation type.
    pub rtype: RelationType,
    /// The backend storing it.
    pub backend: BackendKind,
    /// Number of stored versions.
    pub versions: usize,
    /// Approximate logical bytes.
    pub bytes: usize,
}

impl RelationSpace {
    /// Bytes per stored version (0 when no versions).
    pub fn bytes_per_version(&self) -> f64 {
        if self.versions == 0 {
            0.0
        } else {
            self.bytes as f64 / self.versions as f64
        }
    }
}

/// Space usage across a catalog.
#[derive(Debug, Clone, Default)]
pub struct SpaceReport {
    /// Per-relation rows.
    pub relations: Vec<RelationSpace>,
}

impl SpaceReport {
    /// Total bytes across all relations.
    pub fn total_bytes(&self) -> usize {
        self.relations.iter().map(|r| r.bytes).sum()
    }

    /// Total stored versions across all relations.
    pub fn total_versions(&self) -> usize {
        self.relations.iter().map(|r| r.versions).sum()
    }
}

impl fmt::Display for SpaceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<12} {:<10} {:<16} {:>9} {:>12} {:>10}",
            "relation", "type", "backend", "versions", "bytes", "B/version"
        )?;
        for r in &self.relations {
            writeln!(
                f,
                "{:<12} {:<10} {:<16} {:>9} {:>12} {:>10.1}",
                r.name,
                r.rtype.to_string(),
                r.backend.to_string(),
                r.versions,
                r.bytes,
                r.bytes_per_version()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_ratios() {
        let report = SpaceReport {
            relations: vec![
                RelationSpace {
                    name: "a".into(),
                    rtype: RelationType::Rollback,
                    backend: BackendKind::FullCopy,
                    versions: 4,
                    bytes: 400,
                },
                RelationSpace {
                    name: "b".into(),
                    rtype: RelationType::Snapshot,
                    backend: BackendKind::FullCopy,
                    versions: 0,
                    bytes: 0,
                },
            ],
        };
        assert_eq!(report.total_bytes(), 400);
        assert_eq!(report.total_versions(), 4);
        assert_eq!(report.relations[0].bytes_per_version(), 100.0);
        assert_eq!(report.relations[1].bytes_per_version(), 0.0);
        assert!(report.to_string().contains("full-copy"));
    }
}
