//! Space accounting (experiment E3) and cache accounting (experiment
//! E10).
//!
//! Parallel-execution accounting — per-operator wall time and chunk
//! counts — lives in `txtime_exec` ([`txtime_exec::ExecStats`],
//! re-exported at this crate's root) and is surfaced alongside these
//! reports by [`crate::Engine::exec_stats`] and `txtime stats`.

use std::fmt;

use txtime_core::RelationType;

use crate::backend::BackendKind;

/// Counters from the engine's materialization cache
/// ([`crate::cache::MaterializationCache`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Counted probes that found a materialized version.
    pub hits: u64,
    /// Counted probes that did not.
    pub misses: u64,
    /// Versions remembered.
    pub insertions: u64,
    /// Entries discarded to make room.
    pub evictions: u64,
    /// Deltas the stores replayed for versions the cache did not have —
    /// the work the cache exists to avoid.
    pub replayed_deltas: u64,
    /// Materialized versions currently held.
    pub entries: usize,
    /// Maximum entries held (0 = caching disabled).
    pub capacity: usize,
}

impl CacheStats {
    /// Fraction of counted probes that hit, in `[0, 1]` (0 when no
    /// probes).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Mean deltas replayed per miss (0 when no misses) — how long the
    /// replay chains were when the cache could not help.
    pub fn replay_per_miss(&self) -> f64 {
        if self.misses == 0 {
            0.0
        } else {
            self.replayed_deltas as f64 / self.misses as f64
        }
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "cache: {}/{} entries, {} hits / {} misses ({:.1}% hit rate)",
            self.entries,
            self.capacity,
            self.hits,
            self.misses,
            self.hit_rate() * 100.0
        )?;
        writeln!(
            f,
            "       {} insertions, {} evictions, {} deltas replayed ({:.1}/miss)",
            self.insertions,
            self.evictions,
            self.replayed_deltas,
            self.replay_per_miss()
        )
    }
}

/// Size of one per-relation string pool
/// ([`txtime_snapshot::StrInterner`]): the delta-based stores intern
/// every appended state so replay compares strings by pointer. PR 4
/// added the pools; this surfaces them through `txtime stats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InternerStats {
    /// Distinct strings pooled.
    pub strings: usize,
    /// Approximate resident bytes of the pool.
    pub bytes: usize,
}

impl InternerStats {
    /// Component-wise sum, for catalog-level totals.
    pub fn merged(self, other: InternerStats) -> InternerStats {
        InternerStats {
            strings: self.strings + other.strings,
            bytes: self.bytes + other.bytes,
        }
    }
}

impl fmt::Display for InternerStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} strings / {} bytes", self.strings, self.bytes)
    }
}

/// Counters from delta-chain compaction: how many passes ran and how
/// much chain they folded into materialized checkpoints
/// ([`crate::RollbackStore::compact`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactionStats {
    /// Compaction passes completed.
    pub runs: u64,
    /// Deltas folded into checkpoints across all passes.
    pub deltas_folded: u64,
    /// Tuples/entries written into the materialized checkpoints.
    pub tuples_folded: u64,
}

impl CompactionStats {
    /// Component-wise sum, for shard- and catalog-level totals.
    pub fn merged(self, other: CompactionStats) -> CompactionStats {
        CompactionStats {
            runs: self.runs + other.runs,
            deltas_folded: self.deltas_folded + other.deltas_folded,
            tuples_folded: self.tuples_folded + other.tuples_folded,
        }
    }
}

impl fmt::Display for CompactionStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} run(s), {} deltas folded, {} tuples folded",
            self.runs, self.deltas_folded, self.tuples_folded
        )
    }
}

/// One shard's row in a [`ShardReport`]: the length and footprint of its
/// private delta chain.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardSlot {
    /// Versions (chain entries) the shard stores.
    pub versions: usize,
    /// Tuples/entries in the shard's current state.
    pub tuples: usize,
    /// Approximate logical bytes of the shard's chain.
    pub bytes: usize,
}

/// Per-shard breakdown of one relation's store — a single-slot report
/// for unsharded backends ([`crate::RollbackStore::shard_report`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardReport {
    /// One row per shard, in shard order.
    pub shards: Vec<ShardSlot>,
    /// Compaction counters accumulated across all shards.
    pub compaction: CompactionStats,
}

impl ShardReport {
    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }
}

impl fmt::Display for ShardReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} shard(s); compaction: {}",
            self.shards.len(),
            self.compaction
        )?;
        for (i, s) in self.shards.iter().enumerate() {
            writeln!(
                f,
                "  shard {:>2}: {:>6} versions {:>8} tuples {:>10} bytes",
                i, s.versions, s.tuples, s.bytes
            )?;
        }
        Ok(())
    }
}

/// Space usage of one relation.
#[derive(Debug, Clone)]
pub struct RelationSpace {
    /// Relation name.
    pub name: String,
    /// Relation type.
    pub rtype: RelationType,
    /// The backend storing it.
    pub backend: BackendKind,
    /// Number of stored versions.
    pub versions: usize,
    /// Approximate logical bytes.
    pub bytes: usize,
}

impl RelationSpace {
    /// Bytes per stored version (0 when no versions).
    pub fn bytes_per_version(&self) -> f64 {
        if self.versions == 0 {
            0.0
        } else {
            self.bytes as f64 / self.versions as f64
        }
    }
}

/// Space usage across a catalog.
#[derive(Debug, Clone, Default)]
pub struct SpaceReport {
    /// Per-relation rows.
    pub relations: Vec<RelationSpace>,
}

impl SpaceReport {
    /// Total bytes across all relations.
    pub fn total_bytes(&self) -> usize {
        self.relations.iter().map(|r| r.bytes).sum()
    }

    /// Total stored versions across all relations.
    pub fn total_versions(&self) -> usize {
        self.relations.iter().map(|r| r.versions).sum()
    }
}

impl fmt::Display for SpaceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<12} {:<10} {:<16} {:>9} {:>12} {:>10}",
            "relation", "type", "backend", "versions", "bytes", "B/version"
        )?;
        for r in &self.relations {
            writeln!(
                f,
                "{:<12} {:<10} {:<16} {:>9} {:>12} {:>10.1}",
                r.name,
                r.rtype.to_string(),
                r.backend.to_string(),
                r.versions,
                r.bytes,
                r.bytes_per_version()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_stats_ratios_and_display() {
        let s = CacheStats {
            hits: 3,
            misses: 1,
            insertions: 2,
            evictions: 1,
            replayed_deltas: 8,
            entries: 2,
            capacity: 4,
        };
        assert_eq!(s.hit_rate(), 0.75);
        assert_eq!(s.replay_per_miss(), 8.0);
        assert!(s.to_string().contains("75.0% hit rate"));
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
        assert_eq!(CacheStats::default().replay_per_miss(), 0.0);
    }

    #[test]
    fn totals_and_ratios() {
        let report = SpaceReport {
            relations: vec![
                RelationSpace {
                    name: "a".into(),
                    rtype: RelationType::Rollback,
                    backend: BackendKind::FullCopy,
                    versions: 4,
                    bytes: 400,
                },
                RelationSpace {
                    name: "b".into(),
                    rtype: RelationType::Snapshot,
                    backend: BackendKind::FullCopy,
                    versions: 0,
                    bytes: 0,
                },
            ],
        };
        assert_eq!(report.total_bytes(), 400);
        assert_eq!(report.total_versions(), 4);
        assert_eq!(report.relations[0].bytes_per_version(), 100.0);
        assert_eq!(report.relations[1].bytes_per_version(), 0.0);
        assert!(report.to_string().contains("full-copy"));
    }
}
