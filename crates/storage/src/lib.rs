#![warn(missing_docs)]

//! Efficient storage for rollback and temporal relations.
//!
//! The paper's semantics stores every state of a rollback relation in
//! full, and says so: "we have favored simplicity of semantics at the
//! expense of efficient direct implementation … However, the semantics do
//! not preclude more efficient implementations using optimization
//! strategies for both storage and retrieval of information" (§2), and
//! "actual implementations will vary considerably in the physical
//! structures used to encode the information on secondary storage.
//! However, the existence of a formal definition of database state allows
//! rigorous statements to be made concerning the correctness of those
//! structures" (§1).
//!
//! This crate supplies those physical structures and makes the rigorous
//! statement executable. Four backends implement [`RollbackStore`]:
//!
//! * [`FullCopyStore`] — every version in full; the direct transcription
//!   of the semantics, and the oracle for the others.
//! * [`ForwardDeltaStore`] — an initial state plus per-transaction deltas,
//!   with optional periodic checkpoints; rollback replays forward from
//!   the nearest checkpoint.
//! * [`ReverseDeltaStore`] — the current state in full plus reverse
//!   deltas; current-state access is O(1) and rollback cost grows with
//!   the *age* of the target, which favours the common recent-query case.
//! * [`TupleTimestampStore`] — each tuple stored once with its
//!   transaction-time interval \[start, stop); rollback is a scan filter.
//!   This is the attribute/tuple-timestamping school of physical design
//!   (Ben-Zvi 1982, POSTGRES) realized for our semantics.
//!
//! [`Engine`] executes the language's commands against a catalog of such
//! stores, writes a textual WAL, and recovers from it; `equiv` provides
//! the differential harness proving each backend observationally equal to
//! the reference semantics.

pub mod archive;
pub mod backend;
pub mod cache;
pub mod delta;
pub mod engine;
pub mod equiv;
pub mod forward_delta;
pub mod full_copy;
pub mod memo;
pub mod metrics;
pub mod recovery;
pub mod reverse_delta;
pub mod shard;
pub mod tuple_ts;
pub mod wal;

pub use archive::ArchiveReport;
pub use backend::{BackendKind, CheckpointPolicy, RollbackStore, ZeroCheckpointInterval};
pub use cache::{MaterializationCache, DEFAULT_CACHE_CAPACITY};
pub use delta::StateDelta;
pub use engine::{parse_auto_compact, Engine, ScriptError};
pub use equiv::check_equivalence;
pub use forward_delta::ForwardDeltaStore;
pub use full_copy::FullCopyStore;
pub use memo::{MemoDecision, StampSource, ViewRegistry, DEFAULT_MEMO_CAPACITY};
pub use metrics::{
    CacheStats, CompactionStats, InternerStats, ShardReport, ShardSlot, SpaceReport,
};
pub use reverse_delta::ReverseDeltaStore;
pub use shard::ShardedStore;
pub use tuple_ts::TupleTimestampStore;
pub use txtime_exec::{ExecPool, ExecStats, MemoStats, OpKind, OpStat};
