//! The differential harness: engine ≡ reference semantics.
//!
//! "Verifying the correctness of such implementations would involve
//! demonstrating the equivalence of their semantics with the simple
//! semantics presented here" (§5). This module performs that
//! demonstration mechanically: it executes the same command sequence on
//! the reference [`txtime_core::Database`] and on an [`Engine`], then
//! compares every observable — the current state and the rollback result
//! of every relation at every transaction number, including error cases.

use txtime_core::{Command, Database, Expr, StateSource, StateValue, TransactionNumber, TxSpec};
use txtime_snapshot::{Predicate, Value};

use crate::backend::{BackendKind, CheckpointPolicy};
use crate::engine::Engine;

/// Probe expressions wrapping one ρ/ρ̂ leaf in the σ/π shapes the engine
/// pushes into resolution, so the differential check exercises the
/// filtered paths (scan-time evaluation, cache seeding) and their error
/// cases, not just bare rollback.
fn rollback_probes(
    name: &str,
    spec: TxSpec,
    historical: bool,
    resolved: Option<&StateValue>,
) -> Vec<Expr> {
    let leaf = || {
        if historical {
            Expr::hrollback(name, spec)
        } else {
            Expr::rollback(name, spec)
        }
    };
    type SelectCtor = fn(Expr, Predicate) -> Expr;
    type ProjectCtor = fn(Expr, Vec<String>) -> Expr;
    let (wrap_select, wrap_project): (SelectCtor, ProjectCtor) = if historical {
        (Expr::hselect, Expr::hproject)
    } else {
        (Expr::select, Expr::project)
    };
    // Error paths: an attribute no scheme has.
    let mut probes = vec![
        wrap_select(leaf(), Predicate::eq_const("absent_attr", Value::Int(0))),
        wrap_project(leaf(), vec!["absent_attr".into()]),
    ];
    // Schema-aware probes, when the reference resolved a state to read a
    // scheme from (its first attribute drives the filters; a type-unaware
    // comparison constant also covers the compile-error path).
    let schema = resolved.map(|s| match s {
        StateValue::Snapshot(s) => s.schema(),
        StateValue::Historical(h) => h.schema(),
    });
    if let Some(schema) = schema {
        let a0 = schema.attribute(0).name.to_string();
        probes.push(wrap_select(leaf(), Predicate::eq_attrs(&a0, &a0)));
        probes.push(wrap_select(leaf(), Predicate::gt_const(&a0, Value::Int(1))));
        probes.push(wrap_project(leaf(), vec![a0.clone()]));
        probes.push(wrap_project(
            wrap_select(leaf(), Predicate::eq_attrs(&a0, &a0)),
            vec![a0],
        ));
    }
    probes
}

/// Runs `commands` against both the reference semantics and an engine of
/// the given backend, and compares every rollback observation. Returns a
/// description of the first divergence, or `Ok` if observationally equal.
pub fn check_equivalence(
    commands: &[Command],
    backend: BackendKind,
    checkpoints: CheckpointPolicy,
) -> Result<(), String> {
    // Reference execution (total semantics: failures are no-ops).
    let mut reference = Database::empty();
    let mut engine = Engine::new(backend, checkpoints);
    for (i, cmd) in commands.iter().enumerate() {
        let ref_result = cmd.execute(&reference);
        let eng_result = engine.execute(cmd);
        match (&ref_result, &eng_result) {
            (Ok((next, _)), Ok(_)) => reference = next.clone(),
            (Err(_), Err(_)) => {}
            (Ok(_), Err(e)) => {
                return Err(format!(
                    "command {i} ({cmd}) succeeded on reference but failed on {backend}: {e}"
                ))
            }
            (Err(e), Ok(_)) => {
                return Err(format!(
                    "command {i} ({cmd}) failed on reference ({e}) but succeeded on {backend}"
                ))
            }
        }
        if reference.tx != engine.tx() {
            return Err(format!(
                "after command {i}: reference tx {} != engine tx {}",
                reference.tx,
                engine.tx()
            ));
        }
    }

    // Compare every rollback observation for every relation at every
    // transaction number from 0 to the final clock (plus one beyond).
    let final_tx = reference.tx.0;
    for (name, rel) in reference.state.iter() {
        let historical = rel.rtype().holds_historical();
        for t in 0..=final_tx + 1 {
            for spec in [TxSpec::At(TransactionNumber(t)), TxSpec::Current] {
                let want = reference.resolve_rollback(name, spec, historical);
                let got = engine.resolve_rollback(name, spec, historical);
                match (&want, &got) {
                    (Ok(a), Ok(b)) if a == b => {}
                    (Err(_), Err(_)) => {}
                    _ => {
                        return Err(format!(
                            "{backend}: relation {name} at {spec:?}: reference {want:?} != engine {got:?}"
                        ))
                    }
                }
                // σ/π over ρ — the shapes the engine pushes into
                // resolution — must agree observably too.
                for probe in rollback_probes(name, spec, historical, want.as_ref().ok()) {
                    let want = probe.eval(&reference);
                    let got = engine.eval(&probe);
                    match (&want, &got) {
                        (Ok(a), Ok(b)) if a == b => {}
                        (Err(_), Err(_)) => {}
                        _ => {
                            return Err(format!(
                                "{backend}: relation {name}: probe {probe} at {spec:?}: reference {want:?} != engine {got:?}"
                            ))
                        }
                    }
                }
            }
        }
        // Current state via the expression layer too.
        let cur_expr = if historical {
            Expr::hcurrent(name.clone())
        } else {
            Expr::current(name.clone())
        };
        let want = cur_expr.eval(&reference);
        let got = engine.eval(&cur_expr);
        match (&want, &got) {
            (Ok(a), Ok(b)) if a == b => {}
            (Err(_), Err(_)) => {}
            _ => {
                return Err(format!(
                    "{backend}: relation {name} current-state mismatch: {want:?} vs {got:?}"
                ))
            }
        }
    }
    // The engine must not have relations the reference lacks.
    for name in engine.relations() {
        if reference.state.lookup(name).is_none() {
            return Err(format!("{backend}: engine has extra relation {name}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use txtime_core::RelationType;
    use txtime_snapshot::{DomainType, Schema, SnapshotState, Value};

    fn snap(vals: &[i64]) -> SnapshotState {
        let schema = Schema::new(vec![("x", DomainType::Int)]).unwrap();
        SnapshotState::from_rows(schema, vals.iter().map(|&v| vec![Value::Int(v)])).unwrap()
    }

    #[test]
    fn hand_written_sequence_is_equivalent_on_all_backends() {
        let cmds = vec![
            Command::define_relation("r", RelationType::Rollback),
            Command::modify_state("r", Expr::snapshot_const(snap(&[1]))),
            Command::modify_state(
                "r",
                Expr::current("r").union(Expr::snapshot_const(snap(&[2]))),
            ),
            Command::define_relation("s", RelationType::Snapshot),
            Command::modify_state("s", Expr::snapshot_const(snap(&[9]))),
            Command::modify_state("r", Expr::current("r").difference(Expr::current("s"))),
        ];
        for backend in BackendKind::ALL {
            check_equivalence(&cmds, backend, CheckpointPolicy::every_k(2).unwrap()).unwrap();
        }
    }

    #[test]
    fn failing_commands_stay_equivalent() {
        let cmds = vec![
            Command::define_relation("r", RelationType::Rollback),
            Command::define_relation("r", RelationType::Snapshot), // fails on both
            Command::modify_state("ghost", Expr::current("ghost")), // fails on both
            Command::modify_state("r", Expr::snapshot_const(snap(&[1]))),
        ];
        for backend in BackendKind::ALL {
            check_equivalence(&cmds, backend, CheckpointPolicy::Never).unwrap();
        }
    }
}
