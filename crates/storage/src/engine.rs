//! The storage engine: the language executed over efficient backends.
//!
//! `Engine` implements exactly the observable behaviour of the reference
//! semantics (`txtime_core`), but represents each rollback/temporal
//! relation with a configurable [`RollbackStore`] instead of a list of
//! full states, and optionally journals every mutating command to a
//! write-ahead log for recovery. The equivalence is not assumed — it is
//! established by the differential tests in [`crate::equiv`].

use std::collections::{BTreeMap, HashMap};
use std::io::Write;
use std::num::NonZeroUsize;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use txtime_core::{
    Command, CommandOutcome, CoreError, EvalError, Expr, RelationType, RollbackFilter, StateSource,
    StateValue, TransactionNumber, TxSpec,
};
use txtime_exec::{ExecPool, ExecStats, MemoStats, OpKind};
use txtime_optimizer::{
    pushdown, CostModel, ExprId, ExprInterner, OptimizerStats, PlanReport, SchemaCatalog,
    SearchStats,
};

use crate::backend::{BackendKind, CheckpointPolicy, RollbackStore};
use crate::cache::MaterializationCache;
use crate::memo::{MemoDecision, RelStamp, StampSource, ViewRegistry};
use crate::metrics::{
    CacheStats, CompactionStats, InternerStats, RelationSpace, ShardReport, SpaceReport,
};
use crate::shard::ShardedStore;
use crate::wal;

/// Default fold interval for [`Engine::compact`] when the engine's
/// checkpoint policy is [`CheckpointPolicy::Never`]: compaction pins a
/// checkpoint every this-many versions, bounding worst-case rollback
/// replay to the same figure.
pub const DEFAULT_COMPACT_EVERY: usize = 32;

/// How many appends a relation accumulates before `modify_state`
/// opportunistically compacts its chain (see
/// [`Engine::set_auto_compact`]).
pub const DEFAULT_AUTO_COMPACT: usize = 64;

/// An error from [`Engine::execute_script`].
#[derive(Debug)]
pub enum ScriptError {
    /// The script did not parse.
    Parse(txtime_parser::ParseError),
    /// A command failed during execution.
    Exec(CoreError),
}

impl std::fmt::Display for ScriptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScriptError::Parse(e) => write!(f, "parse error: {e}"),
            ScriptError::Exec(e) => write!(f, "execution error: {e}"),
        }
    }
}

impl std::error::Error for ScriptError {}

/// How one relation's versions are kept.
enum Keeper {
    /// Rollback/temporal relations: an append-only store.
    History(Box<dyn RollbackStore>),
    /// Snapshot/historical relations: the single current version.
    Single(Option<(StateValue, TransactionNumber)>),
}

/// A catalog entry.
struct StoredRelation {
    rtype: RelationType,
    keeper: Keeper,
    /// This relation's id in the shared materialization cache. Allocated
    /// fresh on every `define_relation`, so a deleted-and-redefined
    /// relation can never observe its predecessor's cached versions.
    rel_id: u64,
    /// How many consecutive cache ids the relation owns — a sharded
    /// store caches shard `i` under `rel_id + i`, so deletion must purge
    /// the whole span.
    rel_span: u64,
}

/// What the planner tracks incrementally per relation — enough to build
/// the cost-based searcher's schema catalog and cardinality model in
/// O(catalog) at plan time, without materializing any history.
#[derive(Default)]
struct RelMeta {
    /// The current version's schema, once one exists.
    schema: Option<txtime_snapshot::Schema>,
    /// Whether every version ever written shared that schema. Only
    /// stable relations enter the planner's [`SchemaCatalog`]: the
    /// searcher's rewrite guards require *exact* schema answers, and a
    /// scheme-evolved relation's ρ-at-older-tx leaves would lie.
    stable: bool,
    /// The current version's cardinality.
    card: usize,
}

impl RelMeta {
    fn fresh() -> RelMeta {
        RelMeta {
            schema: None,
            stable: true,
            card: 0,
        }
    }
}

/// The per-generation plan cache: inputs snapshotted at the clock value
/// `at_tx`, plans keyed by the canonical [`ExprId`] of the source
/// expression. A mutation bumps the clock and invalidates everything.
struct Planner {
    at_tx: Option<TransactionNumber>,
    catalog: SchemaCatalog,
    model: CostModel,
    interner: ExprInterner,
    plans: HashMap<ExprId, Expr>,
    searches: u64,
    cache_hits: u64,
    totals: SearchStats,
}

impl Planner {
    fn new() -> Planner {
        Planner {
            at_tx: None,
            catalog: SchemaCatalog::new(),
            model: CostModel::new(),
            interner: ExprInterner::new(),
            plans: HashMap::new(),
            searches: 0,
            cache_hits: 0,
            totals: SearchStats::default(),
        }
    }
}

/// A database engine over pluggable physical storage.
pub struct Engine {
    backend: BackendKind,
    checkpoints: CheckpointPolicy,
    tx: TransactionNumber,
    catalog: BTreeMap<String, StoredRelation>,
    wal: Option<(PathBuf, std::fs::File)>,
    /// When set, `execute` journals into [`Engine::wal_pending`] instead
    /// of the file; [`Engine::sync_wal`] writes the whole group with one
    /// write and one fsync — the group-commit discipline.
    wal_buffered: bool,
    /// Journal lines buffered since the last [`Engine::sync_wal`].
    wal_pending: Vec<u8>,
    /// How many commands those lines hold.
    wal_pending_cmds: usize,
    /// One materialization cache shared by every delta store.
    cache: Arc<MaterializationCache>,
    next_rel_id: u64,
    /// The worker pool queries run on; one thread ⇒ the exact
    /// sequential evaluator. Shared (`Arc`) with every sharded store,
    /// which fans per-shard resolution out on it.
    pool: Arc<ExecPool>,
    /// How many shards each *subsequently defined* history-keeping
    /// relation is partitioned into; 1 = unsharded.
    shards: NonZeroUsize,
    /// Opportunistic compaction: every this-many appends to one
    /// relation, `modify_state` folds its delta chain (`None` disables).
    auto_compact: Option<NonZeroUsize>,
    /// The view memo: cached states for repeatedly evaluated
    /// expressions, maintained incrementally by `modify_state` deltas
    /// (queued O(1) per write, folded and propagated on the next read).
    memo: ViewRegistry,
    /// Optimization level for `eval`: 0 = evaluate the expression as
    /// written, 1 = error-preserving pushdown (the historical default),
    /// 2 = cost-based plan search over the `ExprId` DAG.
    optimize: u8,
    /// Incremental planner statistics, maintained O(1) per mutation.
    planner_meta: BTreeMap<String, RelMeta>,
    /// The level-2 plan cache (interior mutability: `eval` is `&self`).
    planner: Mutex<Planner>,
}

/// The shard budget from the environment: `TXTIME_SHARDS` if set to a
/// positive integer, otherwise 1 (unsharded).
fn shards_from_env() -> NonZeroUsize {
    std::env::var("TXTIME_SHARDS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .and_then(NonZeroUsize::new)
        .unwrap_or(NonZeroUsize::MIN)
}

/// The optimization level from the environment: `TXTIME_OPTIMIZE` if set
/// to 0/1/2, otherwise 1 (pushdown only — the pre-search behavior).
fn optimize_from_env() -> u8 {
    std::env::var("TXTIME_OPTIMIZE")
        .ok()
        .and_then(|s| s.trim().parse::<u8>().ok())
        .map(|n| n.min(2))
        .unwrap_or(1)
}

/// Parses an opportunistic-compaction threshold (`--auto-compact`,
/// `TXTIME_AUTO_COMPACT`): a positive number of appends. Zero is
/// rejected — it would ask `modify_state` to compact after *every*
/// multiple of nothing; use [`Engine::set_auto_compact`]`(None)` to
/// disable the opportunistic pass instead.
pub fn parse_auto_compact(s: &str) -> Result<NonZeroUsize, String> {
    match s.trim().parse::<usize>() {
        Ok(0) => Err("auto-compact threshold must be at least 1".to_string()),
        Ok(n) => Ok(NonZeroUsize::new(n).expect("checked non-zero")),
        Err(_) => Err(format!("invalid auto-compact threshold {s:?}")),
    }
}

/// The opportunistic-compaction threshold from the environment:
/// `TXTIME_AUTO_COMPACT` if set to a positive integer, otherwise
/// [`DEFAULT_AUTO_COMPACT`]. Rejected values (zero, non-numeric) keep
/// the default — the CLI layer reports them as errors before an engine
/// is built.
fn auto_compact_from_env() -> Option<NonZeroUsize> {
    std::env::var("TXTIME_AUTO_COMPACT")
        .ok()
        .and_then(|s| parse_auto_compact(&s).ok())
        .or(NonZeroUsize::new(DEFAULT_AUTO_COMPACT))
}

impl Engine {
    /// An engine holding everything in memory with the given backend for
    /// history-keeping relations.
    pub fn new(backend: BackendKind, checkpoints: CheckpointPolicy) -> Engine {
        Engine {
            backend,
            checkpoints,
            tx: TransactionNumber(0),
            catalog: BTreeMap::new(),
            wal: None,
            wal_buffered: false,
            wal_pending: Vec::new(),
            wal_pending_cmds: 0,
            cache: MaterializationCache::shared(),
            next_rel_id: 0,
            pool: Arc::new(ExecPool::from_env()),
            shards: shards_from_env(),
            auto_compact: auto_compact_from_env(),
            memo: ViewRegistry::new(),
            optimize: optimize_from_env(),
            planner_meta: BTreeMap::new(),
            planner: Mutex::new(Planner::new()),
        }
    }

    /// An engine that additionally journals every successful mutating
    /// command to the write-ahead log at `path` (created or appended).
    pub fn with_wal(
        backend: BackendKind,
        checkpoints: CheckpointPolicy,
        path: impl AsRef<Path>,
    ) -> std::io::Result<Engine> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path.as_ref())?;
        let mut e = Engine::new(backend, checkpoints);
        e.wal = Some((path.as_ref().to_path_buf(), file));
        Ok(e)
    }

    /// The backend used for history-keeping relations.
    pub fn backend(&self) -> BackendKind {
        self.backend
    }

    /// The engine's transaction clock.
    pub fn tx(&self) -> TransactionNumber {
        self.tx
    }

    /// The defined relation names, sorted.
    pub fn relations(&self) -> Vec<&str> {
        self.catalog.keys().map(String::as_str).collect()
    }

    /// The type of relation `ident`, if defined.
    pub fn relation_type(&self, ident: &str) -> Option<RelationType> {
        self.catalog.get(ident).map(|r| r.rtype)
    }

    /// Number of stored versions of relation `ident`.
    pub fn version_count(&self, ident: &str) -> Option<usize> {
        self.catalog.get(ident).map(|r| match &r.keeper {
            Keeper::History(s) => s.version_count(),
            Keeper::Single(v) => usize::from(v.is_some()),
        })
    }

    /// Executes one command, journaling it if it mutates and succeeds.
    /// In buffered-WAL mode (see [`Engine::set_wal_buffered`]) the
    /// journal line lands in the pending group instead of the file; the
    /// command is durable only after the next [`Engine::sync_wal`].
    pub fn execute(&mut self, cmd: &Command) -> Result<CommandOutcome, CoreError> {
        let outcome = self.apply(cmd)?;
        if cmd.is_mutation() && self.wal.is_some() {
            if self.wal_buffered {
                wal::append_command(&mut self.wal_pending, cmd)
                    .map_err(|e| CoreError::SchemeChange(format!("WAL write failed: {e}")))?;
                self.wal_pending_cmds += 1;
            } else if let Some((_, file)) = &mut self.wal {
                wal::append_command(file, cmd)
                    .map_err(|e| CoreError::SchemeChange(format!("WAL write failed: {e}")))?;
                let _ = file.flush();
            }
        }
        Ok(outcome)
    }

    /// Switches the journal between write-through (the default: every
    /// mutation is appended and flushed immediately) and group-buffered
    /// mode, where mutations accumulate in memory until
    /// [`Engine::sync_wal`] commits the whole group with one write and
    /// one fsync. Turning buffering *off* flushes anything pending.
    pub fn set_wal_buffered(&mut self, buffered: bool) {
        self.wal_buffered = buffered;
        if !buffered {
            let _ = self.sync_wal();
        }
    }

    /// How many journaled commands are buffered but not yet durable.
    pub fn wal_pending_commands(&self) -> usize {
        self.wal_pending_cmds
    }

    /// Forces the journal to durable storage: the pending group (if any)
    /// is written with a single `write_all`, then the file is fsynced
    /// once — the group-commit point. Callers without buffering get the
    /// per-commit-fsync discipline by calling this after each `execute`.
    /// Returns how many buffered commands the call made durable (the
    /// fsync happens regardless). A no-op without a WAL.
    pub fn sync_wal(&mut self) -> std::io::Result<usize> {
        let Some((_, file)) = &mut self.wal else {
            return Ok(0);
        };
        let flushed = self.wal_pending_cmds;
        if !self.wal_pending.is_empty() {
            file.write_all(&self.wal_pending)?;
            self.wal_pending.clear();
            self.wal_pending_cmds = 0;
        }
        file.flush()?;
        file.sync_all()?;
        Ok(flushed)
    }

    /// Attaches a journal at `path` (created or appended) to an engine
    /// built without one — the serve path recovers an engine from an
    /// existing journal first, then attaches the same file for append.
    pub fn attach_wal(&mut self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path.as_ref())?;
        self.wal = Some((path.as_ref().to_path_buf(), file));
        Ok(())
    }

    /// Flushes everything an orderly shutdown must not lose: queued
    /// view-memo spans are folded into their views, and the pending WAL
    /// group is written and fsynced. `Drop` calls this, so an engine
    /// going out of scope — `txtime serve` winding down, a panicking
    /// test — never strands acked work in memory. Idempotent.
    pub fn shutdown(&mut self) {
        self.memo.flush(self);
        let _ = self.sync_wal();
    }

    /// Executes a batch; stops at the first error (the caller decides
    /// whether to continue, mirroring `Sentence::eval` vs `eval_total`).
    pub fn execute_all(&mut self, cmds: &[Command]) -> Result<Vec<CommandOutcome>, CoreError> {
        cmds.iter().map(|c| self.execute(c)).collect()
    }

    /// Evaluates a query expression against the engine's current
    /// contents.
    ///
    /// The expression is first normalized with the error-preserving
    /// pushdown rules ([`txtime_optimizer::pushdown`]) so that selections
    /// land directly on ρ/ρ̂ leaves, where the evaluator hands them to
    /// [`StateSource::resolve_rollback_filtered`] and the stores filter
    /// during reconstruction. The rewrite is outcome-preserving on every
    /// database, so the engine stays observationally identical to the
    /// reference semantics — the differential tests in [`crate::equiv`]
    /// check exactly this entry point.
    ///
    /// With a multi-thread pool (see [`Engine::set_threads`]) the
    /// rewritten expression runs on the pool-scheduled evaluator —
    /// partitioned operator kernels plus concurrent binary subtrees —
    /// which is result- and error-identical to the sequential one (the
    /// parallel-determinism property tests pin this); one thread takes
    /// the exact sequential path.
    ///
    /// The view memo is consulted first: a repeatedly evaluated
    /// expression whose input relations have not moved is answered from
    /// its cached state (kept fresh by `modify_state` delta
    /// propagation); an expression crossing the registration threshold
    /// is evaluated node-wise so every subexpression's state is cached.
    /// Both paths are observationally identical — value and error — to
    /// the plain evaluation below; the memo differential tests pin this
    /// on every backend.
    pub fn eval(&self, expr: &Expr) -> Result<StateValue, EvalError> {
        // Level 2: cost-based search first, so the memo keys (and
        // registers views for) the *canonical* plan — every source
        // expression in the plan's equivalence group maps to the same
        // `ExprId`s and therefore hits the same cached views. The
        // evaluator below is untouched, so sharded stores fan the chosen
        // plan's ρ-leaves out exactly as they would the original's.
        let planned;
        let expr = if self.optimize >= 2 {
            planned = self.plan(expr);
            &planned
        } else {
            expr
        };
        match self.memo.decide(expr, self) {
            MemoDecision::Hit(state) => Ok(state),
            MemoDecision::Evaluate { register: true } => self.memo.eval_and_register(expr, self),
            MemoDecision::Evaluate { register: false } => {
                let rewritten = if self.optimize == 0 {
                    expr.clone()
                } else {
                    pushdown(expr)
                };
                // Join-bearing plans always take the pool path: with a
                // one-thread pool the kernels run inline (identical to
                // the sequential evaluator), and the pool's join
                // counters record build/probe sides either way.
                if self.pool.threads() > 1 || rewritten.contains_join() {
                    rewritten.eval_with_pool(self, &self.pool)
                } else {
                    rewritten.eval_with(self)
                }
            }
        }
    }

    /// The cost-based plan for `expr` at the current clock, answered
    /// from the per-generation cache when the same expression (by
    /// canonical `ExprId`) was already planned this generation.
    fn plan(&self, expr: &Expr) -> Expr {
        let mut planner = self.planner.lock().unwrap_or_else(|e| e.into_inner());
        self.refresh_planner(&mut planner);
        let id = planner.interner.intern(expr);
        if let Some(plan) = planner.plans.get(&id).cloned() {
            planner.cache_hits += 1;
            return plan;
        }
        let started = std::time::Instant::now();
        let report = txtime_optimizer::search(expr, &planner.catalog, &planner.model);
        self.pool.record_external(
            OpKind::Optimize,
            report.stats.plans_enumerated.max(1),
            started.elapsed(),
        );
        planner.searches += 1;
        planner.totals.absorb(&report.stats);
        planner.plans.insert(id, report.plan.clone());
        report.plan
    }

    /// Rebuilds the planner's inputs when the clock has moved since they
    /// were last snapshotted (any mutation bumps the clock, so a stale
    /// catalog or model is impossible to observe).
    fn refresh_planner(&self, planner: &mut Planner) {
        if planner.at_tx == Some(self.tx) {
            return;
        }
        planner.at_tx = Some(self.tx);
        planner.plans.clear();
        planner.interner = ExprInterner::new();
        let mut catalog = SchemaCatalog::new();
        let mut model = CostModel::new();
        for (name, meta) in &self.planner_meta {
            model.set_cardinality(name.clone(), meta.card as f64);
            let (true, Some(schema)) = (meta.stable, &meta.schema) else {
                continue;
            };
            catalog.insert(name.clone(), schema.clone());
            // Current-version value ranges feed range selectivity. One
            // state clone per stable relation per generation — only on
            // the level-2 path, only when a query actually arrives.
            if let Some(state) = self.current_state(name) {
                let (_, ranges, columns) = state_stats(&state);
                if let Some(ranges) = ranges {
                    for (attr, range) in schema.attributes().iter().zip(ranges) {
                        model.note_attr_range(attr.name.to_string(), range);
                    }
                }
                if let Some(columns) = columns {
                    for (attr, col) in schema.attributes().iter().zip(columns) {
                        model.note_attr_distinct(attr.name.to_string(), col.distinct as f64);
                        model.note_attr_mcvs(attr.name.to_string(), col.mcvs);
                    }
                }
            }
        }
        planner.catalog = catalog;
        planner.model = model;
    }

    /// Records the schema and cardinality of `ident`'s newest version in
    /// the planner's incremental statistics.
    fn note_state_meta(&mut self, ident: &str, state: &StateValue) {
        let (schema, card) = match state {
            StateValue::Snapshot(s) => (s.schema().clone(), s.len()),
            StateValue::Historical(h) => (h.schema().clone(), h.len()),
        };
        let meta = self
            .planner_meta
            .entry(ident.to_string())
            .or_insert_with(RelMeta::fresh);
        meta.card = card;
        if let Some(prev) = &meta.schema {
            if *prev != schema {
                meta.stable = false;
            }
        }
        meta.schema = Some(schema);
    }

    /// The optimization level `eval` runs at (see [`Engine::set_optimize`]).
    pub fn optimize_level(&self) -> u8 {
        self.optimize
    }

    /// Sets the optimization level: 0 evaluates expressions as written,
    /// 1 applies the error-preserving pushdown rules (the default), 2
    /// runs the cost-based plan search (`txtime --optimize`, REPL
    /// `\optimize`, `TXTIME_OPTIMIZE`). Values above 2 clamp to 2.
    pub fn set_optimize(&mut self, level: u8) {
        self.optimize = level.min(2);
        let mut planner = self.planner.lock().unwrap_or_else(|e| e.into_inner());
        planner.at_tx = None; // force a refresh on the next plan
    }

    /// Lifetime optimizer counters — `txtime stats` and the REPL's
    /// `\optimize` read this.
    pub fn optimizer_stats(&self) -> OptimizerStats {
        let planner = self.planner.lock().unwrap_or_else(|e| e.into_inner());
        OptimizerStats {
            level: self.optimize,
            searches: planner.searches,
            plan_cache_hits: planner.cache_hits,
            totals: planner.totals,
        }
    }

    /// The plan `eval` would run for `expr` at the current level, fully
    /// rendered: the plan tree with per-node row/cost estimates, the
    /// cost summary, and the rewrite trace (`txtime explain`, REPL
    /// `\plan`).
    pub fn explain(&self, expr: &Expr) -> String {
        let mut planner = self.planner.lock().unwrap_or_else(|e| e.into_inner());
        self.refresh_planner(&mut planner);
        let report = match self.optimize {
            2 => txtime_optimizer::search(expr, &planner.catalog, &planner.model),
            level => {
                // Levels 0/1 don't search; report the plan they run.
                let plan = if level == 0 {
                    expr.clone()
                } else {
                    pushdown(expr)
                };
                PlanReport {
                    cost: txtime_optimizer::estimate_cost(&plan, &planner.model),
                    rows: txtime_optimizer::estimate_rows(&plan, &planner.model),
                    original_cost: txtime_optimizer::estimate_cost(expr, &planner.model),
                    plan,
                    trace: Default::default(),
                    stats: SearchStats::default(),
                }
            }
        };
        txtime_optimizer::render_explain(self.optimize, expr, &report, &planner.model)
    }

    /// Resolves a batch of rollback probes — `(relation, tx)` pairs —
    /// together. `result[i]` is observably identical to evaluating
    /// `ρ(probes[i].0, probes[i].1)` (or ρ̂, per the relation's own type)
    /// with [`Engine::eval`], but the work is batched: probes are grouped
    /// by relation, each delta store replays its chain once per batch via
    /// [`RollbackStore::state_at_many`] instead of once per probe
    /// (warming the materialization cache with every version it passes),
    /// and distinct relations resolve on concurrent pool workers.
    pub fn resolve_many(&self, probes: &[(&str, TxSpec)]) -> Vec<Result<StateValue, EvalError>> {
        let mut groups: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (i, (ident, _)) in probes.iter().enumerate() {
            groups.entry(ident).or_default().push(i);
        }
        let groups: Vec<(&str, Vec<usize>)> = groups.into_iter().collect();
        let scattered = self.pool.map_chunks(OpKind::Resolve, &groups, 1, |chunk| {
            chunk
                .iter()
                .flat_map(|(ident, indices)| self.resolve_group(ident, indices, probes))
                .collect::<Vec<_>>()
        });
        let mut out: Vec<Option<Result<StateValue, EvalError>>> =
            probes.iter().map(|_| None).collect();
        for (i, r) in scattered.into_iter().flatten() {
            out[i] = Some(r);
        }
        out.into_iter()
            .map(|r| r.expect("every probe resolved"))
            .collect()
    }

    /// One relation's slice of a [`Engine::resolve_many`] batch: answers
    /// tagged with their probe index.
    fn resolve_group(
        &self,
        ident: &str,
        indices: &[usize],
        probes: &[(&str, TxSpec)],
    ) -> Vec<(usize, Result<StateValue, EvalError>)> {
        let Some(rel) = self.catalog.get(ident) else {
            return indices
                .iter()
                .map(|&i| (i, Err(EvalError::UndefinedRelation(ident.to_string()))))
                .collect();
        };
        // ρ for snapshot-state relations, ρ̂ for historical-state ones —
        // the caller names a relation, not an operator, so the flag comes
        // from the catalog and the shared type rules do the rest (e.g.
        // ρ(s, N) on a snapshot relation still fails).
        let historical = rel.rtype.holds_historical();
        match &rel.keeper {
            Keeper::Single(slot) => indices
                .iter()
                .map(|&i| {
                    let r = self
                        .rollback_relation(ident, probes[i].1, historical)
                        .and_then(|_| match slot {
                            Some((s, _)) => Ok(s.clone()),
                            None => Err(EvalError::EmptyRelation(ident.to_string())),
                        });
                    (i, r)
                })
                .collect(),
            Keeper::History(store) => {
                let mut results = Vec::with_capacity(indices.len());
                let mut at_indices = Vec::new();
                let mut at_txs = Vec::new();
                for &i in indices {
                    match probes[i].1 {
                        TxSpec::Current => {
                            // Same fast path as single-probe resolution.
                            let r = match store.current() {
                                Some(s) => Ok(s),
                                None => Engine::empty_like_first(store.as_ref(), ident),
                            };
                            results.push((i, r));
                        }
                        TxSpec::At(n) => {
                            at_indices.push(i);
                            at_txs.push(n);
                        }
                    }
                }
                let answers = store.state_at_many(&at_txs);
                for (i, ans) in at_indices.into_iter().zip(answers) {
                    let r = match ans {
                        Some(s) => Ok(s),
                        None => Engine::empty_like_first(store.as_ref(), ident),
                    };
                    results.push((i, r));
                }
                results
            }
        }
    }

    /// The pool's thread budget.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// Replaces the worker pool with one of `threads` threads, clamped
    /// to the host's available parallelism (0 is clamped to 1 =
    /// sequential) — asking for more threads than cores would only add
    /// contention. Resets the exec counters. The effective (clamped)
    /// budget is echoed by [`Engine::exec_stats`].
    pub fn set_threads(&mut self, threads: usize) {
        self.pool = Arc::new(ExecPool::clamped(threads));
        // Sharded stores fan per-shard work out on the engine's pool;
        // hand every store the replacement.
        for rel in self.catalog.values_mut() {
            if let Keeper::History(store) = &mut rel.keeper {
                store.set_pool(&self.pool);
            }
        }
    }

    /// The shard budget for relations defined from now on (existing
    /// relations keep their layout — resharding in place would change
    /// physical ids under live cache entries).
    pub fn set_shards(&mut self, shards: usize) {
        self.shards = NonZeroUsize::new(shards).unwrap_or(NonZeroUsize::MIN);
    }

    /// The engine's shard budget for newly defined relations.
    pub fn shards(&self) -> usize {
        self.shards.get()
    }

    /// Reconfigures opportunistic compaction: every `every` appends to a
    /// relation, `modify_state` folds its delta chain; `None` disables
    /// (the benchmarks' uncompacted baseline).
    pub fn set_auto_compact(&mut self, every: Option<NonZeroUsize>) {
        self.auto_compact = every;
    }

    /// The opportunistic-compaction threshold in effect (`None` =
    /// disabled). Defaults to `TXTIME_AUTO_COMPACT` when the environment
    /// sets it to a positive integer, else [`DEFAULT_AUTO_COMPACT`].
    pub fn auto_compact(&self) -> Option<NonZeroUsize> {
        self.auto_compact
    }

    /// A handle to the engine's worker pool — the server sizes its
    /// admission gate from the pool's thread budget and attributes
    /// per-request service time to it (`OpKind::Serve`).
    pub fn pool(&self) -> Arc<ExecPool> {
        self.pool.clone()
    }

    /// How many relations have a queued, not-yet-propagated view-memo
    /// write span (drained by reads and by [`Engine::shutdown`]).
    pub fn memo_pending_spans(&self) -> usize {
        self.memo.pending_spans()
    }

    /// The fold interval [`Engine::compact`] uses when none is given:
    /// the checkpoint policy's own `k`, or [`DEFAULT_COMPACT_EVERY`]
    /// under [`CheckpointPolicy::Never`].
    pub fn default_compact_every(&self) -> NonZeroUsize {
        match self.checkpoints {
            CheckpointPolicy::EveryK(k) => k,
            CheckpointPolicy::Never => {
                NonZeroUsize::new(DEFAULT_COMPACT_EVERY).expect("constant is non-zero")
            }
        }
    }

    /// Folds every history-keeping relation's delta chain into
    /// materialized checkpoints so no rollback probe replays more than
    /// `every` deltas (default: [`Engine::default_compact_every`]).
    /// Relations compact concurrently on the worker pool
    /// (`OpKind::Compact` in [`Engine::exec_stats`]); answers are
    /// unchanged — compaction only pins states the chain already
    /// determines. Returns the merged counters for this pass.
    pub fn compact(&mut self, every: Option<NonZeroUsize>) -> CompactionStats {
        let every = every.unwrap_or_else(|| self.default_compact_every());
        let stores: Vec<Mutex<&mut Box<dyn RollbackStore>>> = self
            .catalog
            .values_mut()
            .filter_map(|rel| match &mut rel.keeper {
                Keeper::History(store) => Some(Mutex::new(store)),
                Keeper::Single(_) => None,
            })
            .collect();
        let merged = self
            .pool
            .map_chunks(OpKind::Compact, &stores, 1, |chunk| {
                chunk.iter().fold(CompactionStats::default(), |acc, m| {
                    let stats = m.lock().unwrap_or_else(|e| e.into_inner()).compact(every);
                    acc.merged(stats)
                })
            })
            .into_iter()
            .fold(CompactionStats::default(), |acc, s| acc.merged(s));
        merged
    }

    /// Per-relation shard/compaction breakdown for the history-keeping
    /// relations — `txtime stats` and the REPL's `\shards` read this.
    pub fn shard_reports(&self) -> Vec<(String, ShardReport)> {
        self.catalog
            .iter()
            .filter_map(|(name, rel)| match &rel.keeper {
                Keeper::History(store) => Some((name.clone(), store.shard_report())),
                Keeper::Single(_) => None,
            })
            .collect()
    }

    /// Per-operator counters from the worker pool (wall time, calls,
    /// chunks) — surfaced by `txtime stats`.
    pub fn exec_stats(&self) -> ExecStats {
        self.pool.stats()
    }

    /// Physical-join gauges (kernel invocations, build/probe rows,
    /// probe partitions) — surfaced by `txtime stats` and the REPL.
    pub fn join_stats(&self) -> txtime_exec::JoinStats {
        self.pool.join_stats()
    }

    /// Zeroes the worker pool's counters.
    pub fn reset_exec_stats(&self) {
        self.pool.reset_stats();
    }

    /// Counters from the shared materialization cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Resizes the shared materialization cache; 0 disables caching
    /// (the benchmarks' uncached baseline).
    pub fn set_cache_capacity(&self, capacity: usize) {
        self.cache.set_capacity(capacity);
    }

    /// Resets the cache counters without dropping cached versions.
    pub fn reset_cache_stats(&self) {
        self.cache.reset_stats();
    }

    /// Counters and gauges from the view memo.
    pub fn memo_stats(&self) -> MemoStats {
        self.memo.stats()
    }

    /// Zeroes the memo counters without dropping cached views.
    pub fn reset_memo_stats(&self) {
        self.memo.reset_stats();
    }

    /// Resizes the view memo's root capacity; 0 disables memoization
    /// entirely (the benchmarks' from-scratch baseline).
    pub fn set_memo_capacity(&self, capacity: usize) {
        self.memo.set_capacity(capacity);
    }

    /// Sets how many evaluations an expression needs before it is
    /// registered into the memo (1 = register immediately).
    pub fn set_memo_register_after(&self, evals: u32) {
        self.memo.set_register_after(evals);
    }

    /// Per-relation string-pool sizes, for the stores that intern their
    /// appended states (the delta-replay backends) — `txtime stats`
    /// reports these alongside the memo counters.
    pub fn interner_report(&self) -> Vec<(String, InternerStats)> {
        self.catalog
            .iter()
            .filter_map(|(name, rel)| match &rel.keeper {
                Keeper::History(store) => store.interner_stats().map(|s| (name.clone(), s)),
                Keeper::Single(_) => None,
            })
            .collect()
    }

    /// The memo's expression-interner footprint: (distinct nodes,
    /// approximate bytes).
    pub fn memo_interner_footprint(&self) -> (usize, usize) {
        self.memo.interner_footprint()
    }

    /// Harvests a [`StatsCatalog`](txtime_analyze::StatsCatalog) from
    /// the live database: per relation, every stored version's exact
    /// cardinality and per-attribute value ranges, plus the physical
    /// counters (interner pool size, resident bytes) the lint pass and
    /// the optimizer's
    /// [`CostModel::from_stats`](txtime_optimizer::CostModel::from_stats)
    /// seed their estimates from. Historical versions are materialized
    /// through the store's batched `state_at_many` — one replay sweep
    /// per relation, not one per version.
    pub fn stats_catalog(&self) -> txtime_analyze::StatsCatalog {
        let mut stats = txtime_analyze::StatsCatalog::new();
        for (name, rel) in &self.catalog {
            let mut rs = txtime_analyze::RelStats::default();
            match &rel.keeper {
                Keeper::History(store) => {
                    let txs = store.version_txs();
                    for (tx, state) in txs.iter().zip(store.state_at_many(&txs)) {
                        if let Some(state) = state {
                            let (card, ranges, columns) = state_stats(&state);
                            rs.versions.push(txtime_analyze::VersionStats {
                                tx: *tx,
                                card,
                                ranges,
                                columns,
                            });
                        }
                    }
                    rs.interner_strings = store.interner_stats().map(|s| s.strings);
                    rs.space_bytes = Some(store.space_bytes());
                }
                Keeper::Single(Some((state, tx))) => {
                    let (card, ranges, columns) = state_stats(state);
                    rs.versions.push(txtime_analyze::VersionStats {
                        tx: *tx,
                        card,
                        ranges,
                        columns,
                    });
                }
                Keeper::Single(None) => {}
            }
            stats.insert(name.clone(), rs);
        }
        stats
    }

    /// Parses and executes a script in the surface syntax, returning the
    /// outcomes in command order. Parse errors are reported with their
    /// source position; execution stops at the first failing command.
    pub fn execute_script(&mut self, source: &str) -> Result<Vec<CommandOutcome>, ScriptError> {
        let sentence = txtime_parser::parse_sentence(source).map_err(ScriptError::Parse)?;
        let mut outcomes = Vec::with_capacity(sentence.commands().len());
        for cmd in sentence.commands() {
            outcomes.push(self.execute(cmd).map_err(ScriptError::Exec)?);
        }
        Ok(outcomes)
    }

    fn apply(&mut self, cmd: &Command) -> Result<CommandOutcome, CoreError> {
        match cmd {
            Command::DefineRelation(ident, rtype) => {
                if self.catalog.contains_key(ident) {
                    return Err(CoreError::AlreadyDefined(ident.clone()));
                }
                let rel_id = self.next_rel_id;
                let (keeper, rel_span) = if rtype.keeps_history() {
                    let k = self.shards;
                    let store: Box<dyn RollbackStore> = if k.get() > 1 {
                        Box::new(ShardedStore::new(
                            self.backend,
                            k,
                            self.checkpoints,
                            Some((self.cache.clone(), rel_id)),
                            self.pool.clone(),
                        ))
                    } else {
                        self.backend.new_store_with_cache(
                            self.checkpoints,
                            Some((self.cache.clone(), rel_id)),
                        )
                    };
                    // A sharded store caches shard `i` under
                    // `rel_id + i`; reserve the whole id span.
                    (Keeper::History(store), k.get() as u64)
                } else {
                    (Keeper::Single(None), 1)
                };
                self.next_rel_id += rel_span;
                self.catalog.insert(
                    ident.clone(),
                    StoredRelation {
                        rtype: *rtype,
                        keeper,
                        rel_id,
                        rel_span,
                    },
                );
                self.planner_meta.insert(ident.clone(), RelMeta::fresh());
                self.tx = self.tx.next();
                Ok(CommandOutcome::Defined)
            }
            Command::ModifyState(ident, expr) => {
                let rtype = self
                    .relation_type(ident)
                    .ok_or_else(|| CoreError::UndefinedRelation(ident.clone()))?;
                let state = self.eval(expr)?;
                if state.is_historical() != rtype.holds_historical() {
                    return Err(CoreError::StateTypeMismatch {
                        relation: ident.clone(),
                        rtype,
                    });
                }
                let next = self.tx.next();
                let auto_compact = self.auto_compact;
                let fold = self.default_compact_every();
                let rel = self.catalog.get_mut(ident).expect("checked above");
                let rel_id = rel.rel_id;
                let prev = match &mut rel.keeper {
                    Keeper::History(store) => {
                        let prev = store.current();
                        store.append(&state, next);
                        // Opportunistic compaction: fold the chain every
                        // `auto_compact` appends so no later rollback
                        // probe replays more than `fold` deltas. The
                        // pass is incremental — already-pinned
                        // checkpoints make it a near-no-op.
                        if let Some(auto) = auto_compact {
                            if store.version_count().is_multiple_of(auto.get()) {
                                store.compact(fold);
                            }
                        }
                        prev
                    }
                    Keeper::Single(slot) => {
                        let prev = slot.take().map(|(p, _)| p);
                        *slot = Some((state.clone(), next));
                        prev
                    }
                };
                self.tx = next;
                self.note_state_meta(ident, &state);
                // O(1) enqueue: the memo diffs and propagates the whole
                // span of queued writes once, on its next read.
                self.memo
                    .queue_modify(ident, rel_id, prev.as_ref(), &state, next);
                Ok(CommandOutcome::Modified)
            }
            Command::DeleteRelation(ident) => {
                let Some(removed) = self.catalog.remove(ident) else {
                    return Err(CoreError::UndefinedRelation(ident.clone()));
                };
                // Its versions can never be probed again (relation ids are
                // never reused); free their cache slots now — every id in
                // the span, one per shard.
                for id in removed.rel_id..removed.rel_id + removed.rel_span {
                    self.cache.purge_relation(id);
                }
                self.memo.purge_relation(ident);
                self.planner_meta.remove(ident);
                self.tx = self.tx.next();
                Ok(CommandOutcome::Deleted)
            }
            Command::EvolveScheme(ident, change) => {
                let rtype = self
                    .relation_type(ident)
                    .ok_or_else(|| CoreError::UndefinedRelation(ident.clone()))?;
                let current = self.current_state(ident).ok_or_else(|| {
                    CoreError::SchemeChange(format!("relation {ident:?} has no state"))
                })?;
                let new_state = match &current {
                    StateValue::Snapshot(s) => StateValue::Snapshot(change.apply_snapshot(s)?),
                    StateValue::Historical(h) => {
                        StateValue::Historical(change.apply_historical(h)?)
                    }
                };
                let next = self.tx.next();
                self.note_state_meta(ident, &new_state);
                let rel = self.catalog.get_mut(ident).expect("checked above");
                debug_assert_eq!(rel.rtype, rtype);
                match &mut rel.keeper {
                    Keeper::History(store) => store.append(&new_state, next),
                    Keeper::Single(slot) => *slot = Some((new_state, next)),
                }
                self.tx = next;
                // The scheme under every dependent view just changed;
                // no delta rule applies.
                self.memo.purge_relation(ident);
                Ok(CommandOutcome::Evolved)
            }
            Command::Display(expr) => {
                let state = self.eval(expr)?;
                Ok(CommandOutcome::Displayed(state))
            }
        }
    }

    fn current_state(&self, ident: &str) -> Option<StateValue> {
        match &self.catalog.get(ident)?.keeper {
            Keeper::History(store) => store.current(),
            Keeper::Single(slot) => slot.as_ref().map(|(s, _)| s.clone()),
        }
    }

    /// The versions of `ident` strictly older than the version current at
    /// `before`, as (state, commit tx) pairs — the candidates for
    /// archival. Snapshot/historical relations have no history to
    /// archive, so the list is empty for them.
    pub(crate) fn versions_before(
        &self,
        ident: &str,
        before: TransactionNumber,
    ) -> Result<Vec<(StateValue, TransactionNumber)>, CoreError> {
        let rel = self
            .catalog
            .get(ident)
            .ok_or_else(|| CoreError::UndefinedRelation(ident.to_string()))?;
        let Keeper::History(store) = &rel.keeper else {
            return Ok(Vec::new());
        };
        let txs = store.version_txs();
        let idx = txs.partition_point(|t| *t <= before);
        let Some(floor) = idx.checked_sub(1) else {
            return Ok(Vec::new());
        };
        Ok(txs[..floor]
            .iter()
            .map(|&t| (store.state_at(t).expect("listed version exists"), t))
            .collect())
    }

    /// Truncates `ident`'s history before the version current at
    /// `before`; see [`crate::backend::RollbackStore::truncate_before`].
    pub(crate) fn truncate_before(
        &mut self,
        ident: &str,
        before: TransactionNumber,
    ) -> Result<usize, CoreError> {
        let rel = self
            .catalog
            .get_mut(ident)
            .ok_or_else(|| CoreError::UndefinedRelation(ident.to_string()))?;
        let dropped = match &mut rel.keeper {
            Keeper::History(store) => store.truncate_before(before),
            Keeper::Single(_) => 0,
        };
        if dropped > 0 {
            // Views over past versions (`ρ(I, n)`) may name versions
            // that no longer exist; their stamps cannot tell.
            self.memo.purge_relation(ident);
        }
        Ok(dropped)
    }

    /// Space accounting across the catalog (experiment E3).
    pub fn space_report(&self) -> SpaceReport {
        SpaceReport {
            relations: self
                .catalog
                .iter()
                .map(|(name, rel)| {
                    let (versions, bytes) = match &rel.keeper {
                        Keeper::History(s) => (s.version_count(), s.space_bytes()),
                        Keeper::Single(v) => (
                            usize::from(v.is_some()),
                            v.as_ref().map_or(0, |(s, _)| s.size_bytes()),
                        ),
                    };
                    RelationSpace {
                        name: name.clone(),
                        rtype: rel.rtype,
                        backend: self.backend,
                        versions,
                        bytes,
                    }
                })
                .collect(),
        }
    }
}

impl Engine {
    /// Catalog lookup plus the rollback type rules — identical to the
    /// reference semantics, shared by the filtered and unfiltered
    /// resolution paths.
    fn rollback_relation(
        &self,
        ident: &str,
        spec: TxSpec,
        historical: bool,
    ) -> Result<&StoredRelation, EvalError> {
        let rel = self
            .catalog
            .get(ident)
            .ok_or_else(|| EvalError::UndefinedRelation(ident.to_string()))?;
        if historical != rel.rtype.holds_historical() {
            return Err(EvalError::RollbackTypeMismatch {
                relation: ident.to_string(),
                actual: rel.rtype,
                historical,
            });
        }
        if matches!(spec, TxSpec::At(_)) && !rel.rtype.keeps_history() {
            return if rel.rtype == RelationType::Snapshot {
                Err(EvalError::RollbackOnSnapshot(ident.to_string()))
            } else {
                Err(EvalError::RollbackTypeMismatch {
                    relation: ident.to_string(),
                    actual: rel.rtype,
                    historical,
                })
            };
        }
        Ok(rel)
    }

    /// The empty state carrying the relation's earliest known scheme —
    /// the reference's answer for a rollback before the first version.
    fn empty_like_first(store: &dyn RollbackStore, ident: &str) -> Result<StateValue, EvalError> {
        let first = store
            .first_tx()
            .and_then(|t| store.state_at(t))
            .ok_or_else(|| EvalError::EmptyRelation(ident.to_string()))?;
        Ok(first.empty_like())
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        // The satellite fix behind `txtime serve`'s durability story: an
        // engine dropped with a buffered WAL group or queued memo spans
        // settles both. Cheap when there is nothing pending.
        self.shutdown();
    }
}

impl StampSource for Engine {
    fn relation_stamp(&self, ident: &str) -> Option<RelStamp> {
        let rel = self.catalog.get(ident)?;
        match &rel.keeper {
            Keeper::History(store) => store.last_tx().map(|tx| (rel.rel_id, tx)),
            Keeper::Single(slot) => slot.as_ref().map(|(_, tx)| (rel.rel_id, *tx)),
        }
    }
}

impl StateSource for Engine {
    fn resolve_rollback(
        &self,
        ident: &str,
        spec: TxSpec,
        historical: bool,
    ) -> Result<StateValue, EvalError> {
        let rel = self.rollback_relation(ident, spec, historical)?;
        match &rel.keeper {
            Keeper::History(store) => {
                // Fast path: ρ(I, ∞) is the materialized current state —
                // no delta replay (store.last_tx() ≤ engine clock always).
                let lookup = if matches!(spec, TxSpec::Current) {
                    store.current()
                } else {
                    let target = match spec {
                        TxSpec::Current => self.tx,
                        TxSpec::At(n) => n,
                    };
                    store.state_at(target)
                };
                match lookup {
                    Some(s) => Ok(s),
                    None => Engine::empty_like_first(store.as_ref(), ident),
                }
            }
            Keeper::Single(slot) => match slot {
                Some((s, _)) => Ok(s.clone()),
                None => Err(EvalError::EmptyRelation(ident.to_string())),
            },
        }
    }

    /// The pushed-down form of σ/π over ρ: hands the filter to the store,
    /// which may evaluate it during reconstruction (and serves repeated
    /// probes from the materialization cache) instead of building the
    /// full version first.
    fn resolve_rollback_filtered(
        &self,
        ident: &str,
        spec: TxSpec,
        historical: bool,
        filter: &RollbackFilter<'_>,
    ) -> Result<StateValue, EvalError> {
        let rel = self.rollback_relation(ident, spec, historical)?;
        match &rel.keeper {
            Keeper::History(store) => {
                let lookup = if matches!(spec, TxSpec::Current) {
                    store.current_filtered(historical, filter)?
                } else {
                    let target = match spec {
                        TxSpec::Current => self.tx,
                        TxSpec::At(n) => n,
                    };
                    store.state_at_filtered(target, historical, filter)?
                };
                match lookup {
                    Some(s) => Ok(s),
                    None => {
                        // Before the first version: filter the empty
                        // state, exactly as the un-pushed path would.
                        filter.apply(Engine::empty_like_first(store.as_ref(), ident)?, historical)
                    }
                }
            }
            Keeper::Single(slot) => match slot {
                Some((s, _)) => filter.apply(s.clone(), historical),
                None => Err(EvalError::EmptyRelation(ident.to_string())),
            },
        }
    }
}

/// The exact statistics of one materialized version: its cardinality and
/// (for non-empty states) each attribute's value range.
fn state_stats(
    state: &StateValue,
) -> (
    txtime_analyze::CardInterval,
    Option<Vec<txtime_analyze::ValueRange>>,
    Option<Vec<txtime_analyze::ColumnStats>>,
) {
    use txtime_analyze::{CardInterval, ColumnStats, ValueRange};
    let (len, arity, tuples): (usize, usize, Vec<&txtime_snapshot::Tuple>) = match state {
        StateValue::Snapshot(s) => (s.len(), s.schema().arity(), s.iter().collect()),
        StateValue::Historical(h) => (
            h.len(),
            h.schema().arity(),
            h.iter().map(|(t, _)| t).collect(),
        ),
    };
    let ranges = (!tuples.is_empty()).then(|| {
        (0..arity)
            .map(|i| ValueRange::spanning(tuples.iter().map(|t| t.get(i))))
            .collect()
    });
    let columns = (!tuples.is_empty()).then(|| {
        (0..arity)
            .map(|i| ColumnStats::from_values(tuples.iter().map(|t| t.get(i)), len))
            .collect()
    });
    (CardInterval::exact(len as u64), ranges, columns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use txtime_snapshot::{DomainType, Schema, SnapshotState, Value};

    fn snap(vals: &[i64]) -> SnapshotState {
        let schema = Schema::new(vec![("x", DomainType::Int)]).unwrap();
        SnapshotState::from_rows(schema, vals.iter().map(|&v| vec![Value::Int(v)])).unwrap()
    }

    fn engine_with_history(backend: BackendKind) -> Engine {
        let mut e = Engine::new(backend, CheckpointPolicy::every_k(4).unwrap());
        e.execute(&Command::define_relation("r", RelationType::Rollback))
            .unwrap();
        for v in [vec![1], vec![1, 2], vec![2], vec![2, 3]] {
            e.execute(&Command::modify_state("r", Expr::snapshot_const(snap(&v))))
                .unwrap();
        }
        e
    }

    #[test]
    fn engine_answers_rollback_queries_on_every_backend() {
        for backend in BackendKind::ALL {
            let e = engine_with_history(backend);
            let cur = e
                .eval(&Expr::current("r"))
                .unwrap()
                .into_snapshot()
                .unwrap();
            assert_eq!(cur, snap(&[2, 3]), "{backend}");
            let old = e
                .eval(&Expr::rollback("r", TxSpec::At(TransactionNumber(3))))
                .unwrap()
                .into_snapshot()
                .unwrap();
            assert_eq!(old, snap(&[1, 2]), "{backend}");
        }
    }

    #[test]
    fn stats_catalog_reports_exact_versions_on_every_backend() {
        use txtime_analyze::CardInterval;
        for backend in BackendKind::ALL {
            let e = engine_with_history(backend);
            let stats = e.stats_catalog();
            let rs = stats.get("r").unwrap();
            assert_eq!(
                rs.versions.iter().map(|v| v.card).collect::<Vec<_>>(),
                [1, 2, 1, 2].map(CardInterval::exact),
                "{backend}"
            );
            // Version txs 2..=5: define commits at 1, writes at 2..=5.
            assert_eq!(
                rs.versions.iter().map(|v| v.tx.0).collect::<Vec<_>>(),
                [2, 3, 4, 5],
                "{backend}"
            );
            // The last version holds {2, 3}: the x range is [2, 3].
            let ranges = rs.versions.last().unwrap().ranges.as_ref().unwrap();
            assert!(ranges[0].contains(&Value::Int(2)) && ranges[0].contains(&Value::Int(3)));
            assert!(!ranges[0].contains(&Value::Int(1)), "{backend}");
            assert!(rs.space_bytes.is_some(), "{backend}");
        }
    }

    #[test]
    fn engine_enforces_rollback_type_rules() {
        let mut e = Engine::new(BackendKind::FullCopy, CheckpointPolicy::Never);
        e.execute(&Command::define_relation("s", RelationType::Snapshot))
            .unwrap();
        e.execute(&Command::modify_state(
            "s",
            Expr::snapshot_const(snap(&[1])),
        ))
        .unwrap();
        assert!(matches!(
            e.eval(&Expr::rollback("s", TxSpec::At(TransactionNumber(1)))),
            Err(EvalError::RollbackOnSnapshot(_))
        ));
        assert!(e.eval(&Expr::current("s")).is_ok());
        assert!(matches!(
            e.eval(&Expr::hcurrent("s")),
            Err(EvalError::RollbackTypeMismatch { .. })
        ));
    }

    #[test]
    fn snapshot_relations_keep_single_version() {
        let mut e = Engine::new(BackendKind::ForwardDelta, CheckpointPolicy::Never);
        e.execute(&Command::define_relation("s", RelationType::Snapshot))
            .unwrap();
        e.execute(&Command::modify_state(
            "s",
            Expr::snapshot_const(snap(&[1])),
        ))
        .unwrap();
        e.execute(&Command::modify_state(
            "s",
            Expr::snapshot_const(snap(&[2])),
        ))
        .unwrap();
        assert_eq!(e.version_count("s"), Some(1));
        assert_eq!(
            e.eval(&Expr::current("s"))
                .unwrap()
                .into_snapshot()
                .unwrap(),
            snap(&[2])
        );
    }

    #[test]
    fn delete_and_redefine() {
        let mut e = engine_with_history(BackendKind::ReverseDelta);
        e.execute(&Command::delete_relation("r")).unwrap();
        assert!(e.relation_type("r").is_none());
        assert!(matches!(
            e.eval(&Expr::current("r")),
            Err(EvalError::UndefinedRelation(_))
        ));
        e.execute(&Command::define_relation("r", RelationType::Snapshot))
            .unwrap();
        assert_eq!(e.relation_type("r"), Some(RelationType::Snapshot));
    }

    #[test]
    fn failed_commands_do_not_advance_the_clock() {
        let mut e = Engine::new(BackendKind::FullCopy, CheckpointPolicy::Never);
        e.execute(&Command::define_relation("r", RelationType::Rollback))
            .unwrap();
        let before = e.tx();
        assert!(e
            .execute(&Command::modify_state("ghost", Expr::current("ghost")))
            .is_err());
        assert_eq!(e.tx(), before);
    }

    #[test]
    fn execute_script_round_trip() {
        let mut e = Engine::new(BackendKind::FullCopy, CheckpointPolicy::Never);
        let outcomes = e
            .execute_script(
                r#"
                define_relation(emp, rollback);
                modify_state(emp, {(x: int): (1), (2)});
                display(select[x > 1](rho(emp, inf)));
                "#,
            )
            .unwrap();
        assert_eq!(outcomes.len(), 3);
        match &outcomes[2] {
            CommandOutcome::Displayed(s) => assert_eq!(s.len(), 1),
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(
            e.execute_script("not a script"),
            Err(ScriptError::Parse(_))
        ));
        assert!(matches!(
            e.execute_script("modify_state(ghost, rho(ghost, inf));"),
            Err(ScriptError::Exec(_))
        ));
    }

    #[test]
    fn cache_eviction_never_changes_answers() {
        // A 2-entry cache under a 30-version sweep evicts constantly;
        // answers must stay identical to the full-copy oracle through it.
        let mut oracle = Engine::new(BackendKind::FullCopy, CheckpointPolicy::Never);
        let mut e = Engine::new(
            BackendKind::ForwardDelta,
            CheckpointPolicy::every_k(8).unwrap(),
        );
        e.set_cache_capacity(2);
        for engine in [&mut oracle, &mut e] {
            engine
                .execute(&Command::define_relation("r", RelationType::Rollback))
                .unwrap();
            for v in 0..30i64 {
                engine
                    .execute(&Command::modify_state(
                        "r",
                        Expr::snapshot_const(snap(&[v, v + 1])),
                    ))
                    .unwrap();
            }
        }
        for _round in 0..3 {
            for t in 0..=32u64 {
                let spec = TxSpec::At(TransactionNumber(t));
                assert_eq!(
                    e.eval(&Expr::rollback("r", spec)).ok(),
                    oracle.eval(&Expr::rollback("r", spec)).ok(),
                    "at tx {t}"
                );
            }
        }
        let stats = e.cache_stats();
        assert!(stats.evictions > 0, "sweep should overflow the cache");
        assert!(stats.hits > 0, "repeated probes should hit");
        assert!(stats.entries <= 2);
    }

    #[test]
    fn repeated_rollback_probes_hit_the_cache() {
        // `Never` keeps the reverse-delta chain checkpoint-free, so the
        // probe below must replay — this test pins the materialization
        // cache, not the checkpoint shortcut.
        let mut e = Engine::new(BackendKind::ReverseDelta, CheckpointPolicy::Never);
        e.execute(&Command::define_relation("r", RelationType::Rollback))
            .unwrap();
        for v in [vec![1], vec![1, 2], vec![2], vec![2, 3]] {
            e.execute(&Command::modify_state("r", Expr::snapshot_const(snap(&v))))
                .unwrap();
        }
        // With the view memo on, repeated probes would be answered above
        // the cache.
        e.set_memo_capacity(0);
        let spec = TxSpec::At(TransactionNumber(2));
        let first = e.eval(&Expr::rollback("r", spec)).unwrap();
        let before = e.cache_stats();
        assert!(before.replayed_deltas > 0);
        for _ in 0..5 {
            assert_eq!(e.eval(&Expr::rollback("r", spec)).unwrap(), first);
        }
        let after = e.cache_stats();
        assert_eq!(after.hits, before.hits + 5);
        assert_eq!(
            after.replayed_deltas, before.replayed_deltas,
            "hits must not replay deltas"
        );
    }

    #[test]
    fn parse_auto_compact_rejects_zero_and_garbage() {
        assert_eq!(parse_auto_compact("8").unwrap().get(), 8);
        assert_eq!(parse_auto_compact(" 64 ").unwrap().get(), 64);
        let zero = parse_auto_compact("0").unwrap_err();
        assert!(zero.contains("at least 1"), "{zero}");
        assert!(parse_auto_compact("none").is_err());
        assert!(parse_auto_compact("-3").is_err());
    }

    #[test]
    fn auto_compact_defaults_and_reconfigures() {
        let mut e = Engine::new(BackendKind::ForwardDelta, CheckpointPolicy::Never);
        // The environment may override the default in CI legs; either
        // way the threshold is positive unless explicitly disabled.
        assert!(e.auto_compact().is_some());
        e.set_auto_compact(NonZeroUsize::new(8));
        assert_eq!(e.auto_compact().map(NonZeroUsize::get), Some(8));
        e.set_auto_compact(None);
        assert_eq!(e.auto_compact(), None);
    }

    #[test]
    fn buffered_wal_groups_commits_and_drop_flushes() {
        let dir = std::env::temp_dir().join(format!("txtime-wal-drop-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("group.wal");
        let _ = std::fs::remove_file(&path);
        {
            let mut e =
                Engine::with_wal(BackendKind::FullCopy, CheckpointPolicy::Never, &path).unwrap();
            e.set_wal_buffered(true);
            e.execute(&Command::define_relation("r", RelationType::Rollback))
                .unwrap();
            e.execute(&Command::modify_state(
                "r",
                Expr::snapshot_const(snap(&[1])),
            ))
            .unwrap();
            assert_eq!(e.wal_pending_commands(), 2);
            // Nothing has reached the file yet: the group is pending.
            assert_eq!(std::fs::metadata(&path).unwrap().len(), 0);
            // Dropping the engine must not lose the buffered group.
        }
        let rec = crate::recovery::recover(&path, BackendKind::FullCopy, CheckpointPolicy::Never)
            .unwrap();
        assert_eq!(rec.replayed, 2);
        assert_eq!(rec.engine.version_count("r"), Some(1));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn sync_wal_makes_the_group_durable_once() {
        let dir = std::env::temp_dir().join(format!("txtime-wal-sync-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sync.wal");
        let _ = std::fs::remove_file(&path);
        let mut e =
            Engine::with_wal(BackendKind::FullCopy, CheckpointPolicy::Never, &path).unwrap();
        e.set_wal_buffered(true);
        e.execute(&Command::define_relation("r", RelationType::Rollback))
            .unwrap();
        e.execute(&Command::modify_state(
            "r",
            Expr::snapshot_const(snap(&[1])),
        ))
        .unwrap();
        assert_eq!(e.sync_wal().unwrap(), 2);
        assert_eq!(e.wal_pending_commands(), 0);
        // An empty group still fsyncs (the per-commit baseline path) but
        // reports zero commands flushed.
        assert_eq!(e.sync_wal().unwrap(), 0);
        let rec = crate::recovery::recover(&path, BackendKind::FullCopy, CheckpointPolicy::Never)
            .unwrap();
        assert_eq!(rec.replayed, 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn shutdown_flushes_queued_memo_spans() {
        let mut e = Engine::new(
            BackendKind::ForwardDelta,
            CheckpointPolicy::every_k(4).unwrap(),
        );
        e.set_memo_register_after(1);
        e.execute(&Command::define_relation("r", RelationType::Rollback))
            .unwrap();
        e.execute(&Command::modify_state(
            "r",
            Expr::snapshot_const(snap(&[1])),
        ))
        .unwrap();
        // Register a view, then write behind it: the write queues a span.
        let expr = Expr::rollback("r", TxSpec::Current).select(txtime_snapshot::Predicate::True);
        e.eval(&expr).unwrap();
        e.execute(&Command::modify_state(
            "r",
            Expr::snapshot_const(snap(&[1, 2])),
        ))
        .unwrap();
        assert_eq!(e.memo_pending_spans(), 1);
        e.shutdown();
        assert_eq!(e.memo_pending_spans(), 0);
        // The settled view answers the post-write state.
        assert_eq!(
            e.eval(&expr).unwrap().into_snapshot().unwrap(),
            snap(&[1, 2])
        );
    }

    #[test]
    fn space_report_covers_catalog() {
        let e = engine_with_history(BackendKind::TupleTimestamp);
        let report = e.space_report();
        assert_eq!(report.relations.len(), 1);
        assert_eq!(report.relations[0].versions, 4);
        assert!(report.relations[0].bytes > 0);
    }
}
