//! A bounded LRU cache of materialized rollback versions.
//!
//! The delta backends pay for their space savings at query time: every
//! `state_at` replays a chain of deltas from the nearest materialized
//! state. Rollback workloads are heavily repetitive — audits re-read the
//! same as-of points, differential tests sweep the same transaction range
//! — so the engine shares one [`MaterializationCache`] across all of its
//! stores: reconstructed versions are remembered under
//! `(relation id, floor commit tx)` and later probes return an O(1)
//! `Arc`-backed clone instead of replaying.
//!
//! The key is stable by construction. A version's commit transaction
//! number never changes once appended; `truncate_before` keeps the floor
//! version (so surviving keys stay valid and dropped versions are simply
//! never probed again); relation ids are allocated fresh on every
//! `define_relation`, so a deleted-and-redefined relation cannot see its
//! predecessor's entries.
//!
//! Eviction is least-recently-used over a monotonic tick, with a linear
//! scan to find the victim — capacities are small (default
//! [`DEFAULT_CACHE_CAPACITY`]) and the scan is trivially cheaper than the
//! replay a hit saves. A capacity of 0 disables the cache entirely, which
//! the benchmarks use as the uncached baseline.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard};

use txtime_core::StateValue;

use crate::metrics::CacheStats;

/// Default number of materialized versions the engine-wide cache holds.
pub const DEFAULT_CACHE_CAPACITY: usize = 128;

/// A cached materialized version.
struct CacheEntry {
    state: StateValue,
    last_used: u64,
}

struct CacheInner {
    capacity: usize,
    tick: u64,
    entries: HashMap<(u64, u64), CacheEntry>,
    hits: u64,
    misses: u64,
    insertions: u64,
    evictions: u64,
    replayed_deltas: u64,
}

/// A bounded, thread-safe LRU cache of reconstructed rollback versions,
/// shared by every delta store of one [`crate::Engine`].
pub struct MaterializationCache {
    inner: Mutex<CacheInner>,
}

impl MaterializationCache {
    /// A cache holding at most `capacity` materialized versions
    /// (0 disables caching).
    pub fn new(capacity: usize) -> MaterializationCache {
        MaterializationCache {
            inner: Mutex::new(CacheInner {
                capacity,
                tick: 0,
                entries: HashMap::new(),
                hits: 0,
                misses: 0,
                insertions: 0,
                evictions: 0,
                replayed_deltas: 0,
            }),
        }
    }

    /// A cache with the default capacity, ready to share across stores.
    pub fn shared() -> Arc<MaterializationCache> {
        Arc::new(MaterializationCache::new(DEFAULT_CACHE_CAPACITY))
    }

    fn lock(&self) -> MutexGuard<'_, CacheInner> {
        // The cache holds no invariants a panic could break mid-update;
        // recover the guard rather than poisoning every later query.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Looks up the materialized version of relation `rel` committed at
    /// `tx`, counting the probe as a hit or miss.
    pub fn get(&self, rel: u64, tx: u64) -> Option<StateValue> {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.entries.get_mut(&(rel, tx)) {
            Some(entry) => {
                entry.last_used = tick;
                let state = entry.state.clone();
                inner.hits += 1;
                Some(state)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Like [`MaterializationCache::get`], but uncounted — used to probe
    /// intermediate versions for the nearest cached replay seed, where a
    /// miss is expected and says nothing about cache effectiveness.
    pub fn peek(&self, rel: u64, tx: u64) -> Option<StateValue> {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        inner.entries.get_mut(&(rel, tx)).map(|entry| {
            entry.last_used = tick;
            entry.state.clone()
        })
    }

    /// Remembers the materialized version of `rel` at `tx`, evicting the
    /// least-recently-used entry if the cache is full. A no-op when the
    /// capacity is 0.
    pub fn insert(&self, rel: u64, tx: u64, state: StateValue) {
        let mut inner = self.lock();
        if inner.capacity == 0 {
            return;
        }
        inner.tick += 1;
        let tick = inner.tick;
        if !inner.entries.contains_key(&(rel, tx)) && inner.entries.len() >= inner.capacity {
            inner.evict_lru();
        }
        inner.insertions += 1;
        inner.entries.insert(
            (rel, tx),
            CacheEntry {
                state,
                last_used: tick,
            },
        );
    }

    /// Adds `n` to the replayed-delta counter (the work a store did to
    /// reconstruct a version the cache did not have).
    pub fn add_replayed(&self, n: u64) {
        self.lock().replayed_deltas += n;
    }

    /// Drops every entry belonging to relation `rel` (used when the
    /// relation is deleted, so its versions can never be probed again).
    pub fn purge_relation(&self, rel: u64) {
        self.lock().entries.retain(|(r, _), _| *r != rel);
    }

    /// Resizes the cache, evicting least-recently-used entries if the new
    /// capacity is smaller. A capacity of 0 empties and disables it.
    pub fn set_capacity(&self, capacity: usize) {
        let mut inner = self.lock();
        inner.capacity = capacity;
        while inner.entries.len() > capacity {
            inner.evict_lru();
        }
    }

    /// A snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        let inner = self.lock();
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            insertions: inner.insertions,
            evictions: inner.evictions,
            replayed_deltas: inner.replayed_deltas,
            entries: inner.entries.len(),
            capacity: inner.capacity,
        }
    }

    /// Resets the counters (entries are kept) — lets benchmarks measure a
    /// warm phase in isolation.
    pub fn reset_stats(&self) {
        let mut inner = self.lock();
        inner.hits = 0;
        inner.misses = 0;
        inner.insertions = 0;
        inner.evictions = 0;
        inner.replayed_deltas = 0;
    }
}

impl std::fmt::Debug for MaterializationCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MaterializationCache")
            .field("stats", &self.stats())
            .finish()
    }
}

impl CacheInner {
    fn evict_lru(&mut self) {
        // Linear scan: capacities are small and eviction is rare next to
        // the replay work a hit saves.
        if let Some(&victim) = self
            .entries
            .iter()
            .min_by_key(|(_, e)| e.last_used)
            .map(|(k, _)| k)
        {
            self.entries.remove(&victim);
            self.evictions += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txtime_snapshot::{DomainType, Schema, SnapshotState, Value};

    fn snap(vals: &[i64]) -> StateValue {
        let schema = Schema::new(vec![("x", DomainType::Int)]).unwrap();
        StateValue::Snapshot(
            SnapshotState::from_rows(schema, vals.iter().map(|&v| vec![Value::Int(v)])).unwrap(),
        )
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let c = MaterializationCache::new(4);
        assert!(c.get(1, 10).is_none());
        c.insert(1, 10, snap(&[1]));
        assert_eq!(c.get(1, 10), Some(snap(&[1])));
        let stats = c.stats();
        assert_eq!((stats.hits, stats.misses, stats.insertions), (1, 1, 1));
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn peek_does_not_count() {
        let c = MaterializationCache::new(4);
        c.insert(1, 10, snap(&[1]));
        assert_eq!(c.peek(1, 10), Some(snap(&[1])));
        assert!(c.peek(1, 11).is_none());
        let stats = c.stats();
        assert_eq!((stats.hits, stats.misses), (0, 0));
    }

    #[test]
    fn lru_eviction_prefers_stale_entries() {
        let c = MaterializationCache::new(2);
        c.insert(1, 1, snap(&[1]));
        c.insert(1, 2, snap(&[2]));
        let _ = c.get(1, 1); // refresh 1 — 2 is now the LRU victim
        c.insert(1, 3, snap(&[3]));
        assert!(c.peek(1, 2).is_none());
        assert_eq!(c.peek(1, 1), Some(snap(&[1])));
        assert_eq!(c.peek(1, 3), Some(snap(&[3])));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn zero_capacity_disables_the_cache() {
        let c = MaterializationCache::new(0);
        c.insert(1, 1, snap(&[1]));
        assert!(c.peek(1, 1).is_none());
        assert_eq!(c.stats().insertions, 0);
    }

    #[test]
    fn shrinking_capacity_evicts_down() {
        let c = MaterializationCache::new(4);
        for t in 0..4 {
            c.insert(1, t, snap(&[t as i64]));
        }
        c.set_capacity(1);
        assert_eq!(c.stats().entries, 1);
        // The most recently inserted entry survives.
        assert_eq!(c.peek(1, 3), Some(snap(&[3])));
    }

    #[test]
    fn purge_relation_is_selective() {
        let c = MaterializationCache::new(8);
        c.insert(1, 1, snap(&[1]));
        c.insert(2, 1, snap(&[2]));
        c.purge_relation(1);
        assert!(c.peek(1, 1).is_none());
        assert_eq!(c.peek(2, 1), Some(snap(&[2])));
    }
}
