//! Horizontally sharded relation states.
//!
//! The paper models a rollback relation as one sequence of states
//! indexed by transaction number, and its claim 4 licenses *any*
//! physical organization whose observable effect equals applying the
//! update sequence in order. [`ShardedStore`] exercises that freedom:
//! each relation's sorted runs are hash-partitioned into `K` disjoint
//! shards, each shard keeping its **own** delta chain, interner pool,
//! and checkpoint schedule inside an ordinary inner [`RollbackStore`].
//! Every append partitions the incoming state and writes one
//! (possibly empty) sub-state to every shard, so all shards carry the
//! same transaction-number list and FINDSTATE floors agree shard-wise.
//!
//! Reads run with zero intra-kernel coordination: each shard resolves
//! (and, for pushed-down σ/π, filters) its slice independently — fanned
//! out on the [`ExecPool`] under [`OpKind::Shard`] — and the per-shard
//! runs are merged back with the ∪/∪̂ merge kernels
//! ([`SnapshotState::union_many`], [`HistoricalState::hunion_many`]).
//! σ and π distribute over disjoint union (π̂'s per-image valid times
//! re-union in the merge), so shard count is observationally invisible;
//! the `shard_invariance` differential suite pins exactly that.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::num::NonZeroUsize;
use std::sync::{Arc, Mutex};

use txtime_core::{EvalError, RollbackFilter, StateValue, TransactionNumber};
use txtime_exec::{ExecPool, OpKind};
use txtime_historical::HistoricalState;
use txtime_snapshot::{SnapshotState, Tuple};

use crate::backend::{BackendKind, CheckpointPolicy, RollbackStore};
use crate::cache::MaterializationCache;
use crate::metrics::{CompactionStats, InternerStats, ShardReport, ShardSlot};

/// The shard a tuple lives in: a stable hash of its values modulo the
/// shard count. Stability matters for *churn*, not correctness — a
/// tuple that stays in one shard across versions keeps the per-shard
/// deltas as small as the unsharded ones.
fn shard_of(t: &Tuple, k: usize) -> usize {
    let mut h = DefaultHasher::new();
    t.hash(&mut h);
    (h.finish() % k as u64) as usize
}

/// Splits a state into `k` disjoint sub-states over the same scheme.
/// Partitioning a canonical sorted run yields canonical sorted runs, so
/// construction re-validates trivially.
fn partition(state: &StateValue, k: usize) -> Vec<StateValue> {
    match state {
        StateValue::Snapshot(s) => {
            let mut parts: Vec<Vec<Tuple>> = vec![Vec::new(); k];
            for t in s.iter() {
                parts[shard_of(t, k)].push(t.clone());
            }
            parts
                .into_iter()
                .map(|p| {
                    StateValue::Snapshot(
                        SnapshotState::new(s.schema().clone(), p)
                            .expect("a partition of a valid state is valid"),
                    )
                })
                .collect()
        }
        StateValue::Historical(h) => {
            let mut parts: Vec<Vec<(Tuple, txtime_historical::TemporalElement)>> =
                vec![Vec::new(); k];
            for (t, e) in h.iter() {
                parts[shard_of(t, k)].push((t.clone(), e.clone()));
            }
            parts
                .into_iter()
                .map(|p| {
                    StateValue::Historical(
                        HistoricalState::new(h.schema().clone(), p)
                            .expect("a partition of a valid state is valid"),
                    )
                })
                .collect()
        }
    }
}

/// Merges per-shard resolutions back into the relation's state. The
/// shards are disjoint by value tuple, so ∪/∪̂ reproduce the unsharded
/// run exactly (π may overlap across shards; union dedups, and π̂
/// re-unions the per-image valid times — the global semantics).
fn merge(parts: Vec<StateValue>) -> StateValue {
    let mut snaps: Vec<SnapshotState> = Vec::new();
    let mut hists: Vec<HistoricalState> = Vec::new();
    for p in parts {
        match p {
            StateValue::Snapshot(s) => snaps.push(s),
            StateValue::Historical(h) => hists.push(h),
        }
    }
    if !hists.is_empty() {
        assert!(snaps.is_empty(), "shards of one version share a kind");
        StateValue::Historical(
            HistoricalState::hunion_many(&hists)
                .expect("at least one shard")
                .expect("shards share a schema"),
        )
    } else {
        StateValue::Snapshot(
            SnapshotState::union_many(&snaps)
                .expect("at least one shard")
                .expect("shards share a schema"),
        )
    }
}

/// `K` inner stores behind the one-relation [`RollbackStore`] surface.
///
/// Writes partition; reads fan out per shard on the pool and merge.
/// The merged current state is memoized (it is exactly the state the
/// last append installed), so `current()` stays O(1) like every
/// unsharded backend.
pub struct ShardedStore {
    shards: Vec<Box<dyn RollbackStore>>,
    pool: Arc<ExecPool>,
    /// The last appended state — the merge of all shard currents.
    current: Mutex<Option<StateValue>>,
}

impl std::fmt::Debug for ShardedStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedStore")
            .field("shards", &self.shards.len())
            .field("kind", &self.shards[0].kind())
            .finish_non_exhaustive()
    }
}

impl ShardedStore {
    /// A store of `shards` inner `kind` stores. When a shared
    /// materialization cache is given, shard `i` registers under
    /// relation id `base + i` — the caller owns that id span and must
    /// purge all of it on relation deletion.
    pub fn new(
        kind: BackendKind,
        shards: NonZeroUsize,
        checkpoints: CheckpointPolicy,
        cache: Option<(Arc<MaterializationCache>, u64)>,
        pool: Arc<ExecPool>,
    ) -> ShardedStore {
        let shards = (0..shards.get() as u64)
            .map(|i| {
                kind.new_store_with_cache(
                    checkpoints,
                    cache.as_ref().map(|(c, base)| (c.clone(), base + i)),
                )
            })
            .collect();
        ShardedStore {
            shards,
            pool,
            current: Mutex::new(None),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Fans `f` out across the shards on the pool (one work item per
    /// shard, results in shard order).
    fn fan_out<R: Send>(&self, f: impl Fn(&dyn RollbackStore) -> R + Sync) -> Vec<R> {
        let idx: Vec<usize> = (0..self.shards.len()).collect();
        self.pool
            .map_chunks(OpKind::Shard, &idx, OpKind::Shard.min_chunk(), |chunk| {
                chunk
                    .iter()
                    .map(|&i| f(self.shards[i].as_ref()))
                    .collect::<Vec<R>>()
            })
            .into_iter()
            .flatten()
            .collect()
    }
}

impl RollbackStore for ShardedStore {
    fn append(&mut self, state: &StateValue, tx: TransactionNumber) {
        let parts = partition(state, self.shards.len());
        for (shard, part) in self.shards.iter_mut().zip(parts) {
            shard.append(&part, tx);
        }
        // The merge of what was just written is the written state itself.
        *self.current.lock().unwrap_or_else(|e| e.into_inner()) = Some(state.clone());
    }

    fn state_at(&self, tx: TransactionNumber) -> Option<StateValue> {
        let parts = self.fan_out(|s| s.state_at(tx));
        // Shards share one tx list: all-or-nothing.
        let parts: Option<Vec<StateValue>> = parts.into_iter().collect();
        parts.map(merge)
    }

    fn state_at_many(&self, txs: &[TransactionNumber]) -> Vec<Option<StateValue>> {
        // Each shard sweeps its own chain once for the whole batch; the
        // positional answers then merge shard-wise.
        let per_shard = self.fan_out(|s| s.state_at_many(txs));
        (0..txs.len())
            .map(|i| {
                let parts: Option<Vec<StateValue>> =
                    per_shard.iter().map(|shard| shard[i].clone()).collect();
                parts.map(merge)
            })
            .collect()
    }

    fn state_at_filtered(
        &self,
        tx: TransactionNumber,
        historical: bool,
        filter: &RollbackFilter<'_>,
    ) -> Result<Option<StateValue>, EvalError> {
        // σ and π distribute over the disjoint shard union, and the
        // filter's failure modes (predicate compilation, kind mismatch)
        // depend only on scheme and kind — identical in every shard — so
        // per-shard filtering observes exactly the unsharded behavior.
        let parts = self.fan_out(|s| s.state_at_filtered(tx, historical, filter));
        let mut filtered = Vec::with_capacity(parts.len());
        for p in parts {
            match p? {
                Some(s) => filtered.push(s),
                None => return Ok(None),
            }
        }
        Ok(Some(merge(filtered)))
    }

    fn current(&self) -> Option<StateValue> {
        self.current
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    fn current_filtered(
        &self,
        historical: bool,
        filter: &RollbackFilter<'_>,
    ) -> Result<Option<StateValue>, EvalError> {
        if self.current().is_none() {
            return Ok(None);
        }
        let parts = self.fan_out(|s| s.current_filtered(historical, filter));
        let mut filtered = Vec::with_capacity(parts.len());
        for p in parts {
            match p? {
                Some(s) => filtered.push(s),
                None => return Ok(None),
            }
        }
        Ok(Some(merge(filtered)))
    }

    fn interner_stats(&self) -> Option<InternerStats> {
        self.shards
            .iter()
            .filter_map(|s| s.interner_stats())
            .reduce(InternerStats::merged)
    }

    fn version_count(&self) -> usize {
        self.shards[0].version_count()
    }

    fn first_tx(&self) -> Option<TransactionNumber> {
        self.shards[0].first_tx()
    }

    fn last_tx(&self) -> Option<TransactionNumber> {
        self.shards[0].last_tx()
    }

    fn space_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.space_bytes()).sum()
    }

    fn version_txs(&self) -> Vec<TransactionNumber> {
        self.shards[0].version_txs()
    }

    fn set_pool(&mut self, pool: &Arc<ExecPool>) {
        self.pool = pool.clone();
    }

    fn compact(&mut self, every: NonZeroUsize) -> CompactionStats {
        // Sequential over shards: each shard's fold is one chain replay,
        // and compaction is a rare, explicitly requested maintenance
        // pass.
        self.shards
            .iter_mut()
            .map(|s| s.compact(every))
            .fold(CompactionStats::default(), CompactionStats::merged)
    }

    fn compaction_stats(&self) -> CompactionStats {
        self.shards
            .iter()
            .map(|s| s.compaction_stats())
            .fold(CompactionStats::default(), CompactionStats::merged)
    }

    fn shard_report(&self) -> ShardReport {
        ShardReport {
            shards: self
                .shards
                .iter()
                .map(|s| ShardSlot {
                    versions: s.version_count(),
                    tuples: s.current().map(|c| c.len()).unwrap_or(0),
                    bytes: s.space_bytes(),
                })
                .collect(),
            compaction: self.compaction_stats(),
        }
    }

    fn truncate_before(&mut self, tx: TransactionNumber) -> usize {
        self.shards
            .iter_mut()
            .map(|s| s.truncate_before(tx))
            .max()
            .unwrap_or(0)
    }

    fn kind(&self) -> BackendKind {
        self.shards[0].kind()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txtime_snapshot::{DomainType, Predicate, Schema, Value};

    fn schema() -> Schema {
        Schema::new(vec![("x", DomainType::Int)]).unwrap()
    }

    fn snap(vals: &[i64]) -> StateValue {
        StateValue::Snapshot(
            SnapshotState::from_rows(schema(), vals.iter().map(|&v| vec![Value::Int(v)])).unwrap(),
        )
    }

    fn pair(kind: BackendKind, k: usize) -> (Box<dyn RollbackStore>, ShardedStore) {
        let policy = CheckpointPolicy::every_k(8).unwrap();
        let flat = kind.new_store(policy);
        let sharded = ShardedStore::new(
            kind,
            NonZeroUsize::new(k).unwrap(),
            policy,
            None,
            Arc::new(ExecPool::new(2)),
        );
        (flat, sharded)
    }

    #[test]
    fn partition_merge_round_trips() {
        let s = snap(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        for k in [1, 2, 3, 8] {
            let parts = partition(&s, k);
            assert_eq!(parts.len(), k);
            assert_eq!(parts.iter().map(StateValue::len).sum::<usize>(), 9);
            assert_eq!(merge(parts), s);
        }
    }

    #[test]
    fn sharded_matches_flat_on_every_probe() {
        for kind in BackendKind::ALL {
            for k in [1, 2, 8] {
                let (mut flat, mut sharded) = pair(kind, k);
                for v in 1..=40u64 {
                    let state = snap(&[v as i64, -(v as i64), (v % 7) as i64]);
                    flat.append(&state, TransactionNumber(v));
                    sharded.append(&state, TransactionNumber(v));
                }
                assert_eq!(flat.version_count(), sharded.version_count());
                assert_eq!(flat.version_txs(), sharded.version_txs());
                assert_eq!(flat.current(), sharded.current());
                let txs: Vec<TransactionNumber> = (0..=41).map(TransactionNumber).collect();
                for &tx in &txs {
                    assert_eq!(
                        flat.state_at(tx),
                        sharded.state_at(tx),
                        "{kind} k={k} at {tx:?}"
                    );
                }
                assert_eq!(flat.state_at_many(&txs), sharded.state_at_many(&txs));
            }
        }
    }

    #[test]
    fn filtered_resolution_distributes_over_shards() {
        let pred = Predicate::gt_const("x", Value::Int(0));
        let project = ["x".to_string()];
        let filter = RollbackFilter {
            predicate: Some(&pred),
            project: Some(&project),
        };
        for kind in BackendKind::ALL {
            let (mut flat, mut sharded) = pair(kind, 4);
            for v in 1..=20u64 {
                let state = snap(&[v as i64, -(v as i64)]);
                flat.append(&state, TransactionNumber(v));
                sharded.append(&state, TransactionNumber(v));
            }
            for tx in 0..=21u64 {
                let a = flat.state_at_filtered(TransactionNumber(tx), false, &filter);
                let b = sharded.state_at_filtered(TransactionNumber(tx), false, &filter);
                assert_eq!(a, b, "{kind} at {tx}");
                // Kind-mismatch errors must agree too.
                let ae = flat.state_at_filtered(TransactionNumber(tx), true, &filter);
                let be = sharded.state_at_filtered(TransactionNumber(tx), true, &filter);
                assert_eq!(ae.is_err(), be.is_err(), "{kind} historical at {tx}");
            }
            assert_eq!(
                flat.current_filtered(false, &filter),
                sharded.current_filtered(false, &filter)
            );
        }
    }

    #[test]
    fn compact_and_truncate_act_shard_wise() {
        let (mut flat, mut sharded) = pair(BackendKind::ReverseDelta, 4);
        for v in 1..=64u64 {
            let state = snap(&[v as i64]);
            flat.append(&state, TransactionNumber(v));
            sharded.append(&state, TransactionNumber(v));
        }
        let pass = sharded.compact(NonZeroUsize::new(4).unwrap());
        assert!(pass.runs >= 1);
        assert_eq!(sharded.compaction_stats().runs, pass.runs);
        for tx in 0..=65u64 {
            assert_eq!(
                flat.state_at(TransactionNumber(tx)),
                sharded.state_at(TransactionNumber(tx))
            );
        }
        let report = sharded.shard_report();
        assert_eq!(report.shard_count(), 4);
        assert!(report.shards.iter().all(|s| s.versions == 64));
        assert_eq!(
            flat.truncate_before(TransactionNumber(30)),
            sharded.truncate_before(TransactionNumber(30))
        );
        for tx in 29..=65u64 {
            assert_eq!(
                flat.state_at(TransactionNumber(tx)),
                sharded.state_at(TransactionNumber(tx))
            );
        }
    }
}
