//! Deltas between consecutive states.

use txtime_core::StateValue;
use txtime_historical::TemporalElement;
use txtime_snapshot::{StrInterner, Tuple};

/// A state whose string values are all drawn from `pool` (see
/// [`txtime_snapshot::SnapshotState::interned`]). Delta backends route
/// every appended state through one per-relation pool, so replay compares
/// interned strings by pointer instead of re-hashing bytes.
pub(crate) fn intern_state(state: &StateValue, pool: &mut StrInterner) -> StateValue {
    match state {
        StateValue::Snapshot(s) => StateValue::Snapshot(s.interned(pool)),
        StateValue::Historical(h) => StateValue::Historical(h.interned(pool)),
    }
}

/// The difference between two states of the same kind.
///
/// A delta is directional: `delta(a, b).apply(a) == b`. Schema changes are
/// handled by the `Reschema` variant, which simply carries the new state —
/// scheme evolution is rare, and a full copy at scheme boundaries is the
/// standard trick.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum StateDelta {
    /// Tuples added and removed between two snapshot states.
    Snapshot {
        /// Tuples present in the new state only.
        added: Vec<Tuple>,
        /// Tuples present in the old state only.
        removed: Vec<Tuple>,
    },
    /// Entries upserted (inserted or revalued) and removed between two
    /// historical states.
    Historical {
        /// Tuples whose valid time changed or that are new, with their
        /// new valid time.
        upserted: Vec<(Tuple, TemporalElement)>,
        /// Tuples absent from the new state.
        removed: Vec<Tuple>,
    },
    /// A scheme (or state-kind) boundary: the new state verbatim.
    Reschema(Box<StateValue>),
}

impl StateDelta {
    /// Computes the delta carrying `from` to `to`.
    ///
    /// Both states keep their tuples in strictly sorted runs, so the
    /// symmetric difference falls out of one linear merge — O(|a| + |b|),
    /// not one containment probe per tuple.
    pub fn between(from: &StateValue, to: &StateValue) -> StateDelta {
        match (from, to) {
            (StateValue::Snapshot(a), StateValue::Snapshot(b)) if a.schema() == b.schema() => {
                let mut added = Vec::new();
                let mut removed = Vec::new();
                let (mut ai, mut bi) = (a.iter().peekable(), b.iter().peekable());
                loop {
                    match (ai.peek(), bi.peek()) {
                        (None, None) => break,
                        (Some(_), None) => removed.push(ai.next().unwrap().clone()),
                        (None, Some(_)) => added.push(bi.next().unwrap().clone()),
                        (Some(t), Some(u)) => match t.cmp(u) {
                            std::cmp::Ordering::Less => removed.push(ai.next().unwrap().clone()),
                            std::cmp::Ordering::Greater => added.push(bi.next().unwrap().clone()),
                            std::cmp::Ordering::Equal => {
                                ai.next();
                                bi.next();
                            }
                        },
                    }
                }
                StateDelta::Snapshot { added, removed }
            }
            (StateValue::Historical(a), StateValue::Historical(b)) if a.schema() == b.schema() => {
                let mut upserted = Vec::new();
                let mut removed = Vec::new();
                let (mut ai, mut bi) = (a.iter().peekable(), b.iter().peekable());
                loop {
                    match (ai.peek(), bi.peek()) {
                        (None, None) => break,
                        (Some(_), None) => removed.push(ai.next().unwrap().0.clone()),
                        (None, Some(_)) => {
                            let (t, e) = bi.next().unwrap();
                            upserted.push((t.clone(), e.clone()));
                        }
                        (Some((t, ea)), Some((u, eb))) => match t.cmp(u) {
                            std::cmp::Ordering::Less => removed.push(ai.next().unwrap().0.clone()),
                            std::cmp::Ordering::Greater => {
                                let (u, eb) = bi.next().unwrap();
                                upserted.push((u.clone(), eb.clone()));
                            }
                            std::cmp::Ordering::Equal => {
                                if ea != eb {
                                    upserted.push(((*u).clone(), (*eb).clone()));
                                }
                                ai.next();
                                bi.next();
                            }
                        },
                    }
                }
                StateDelta::Historical { upserted, removed }
            }
            _ => StateDelta::Reschema(Box::new(to.clone())),
        }
    }

    /// Applies the delta to `base`, producing the target state.
    ///
    /// Panics if the delta does not match the base's kind — deltas are
    /// internal to the stores, which construct them pairwise.
    pub fn apply(&self, base: &StateValue) -> StateValue {
        let mut state = base.clone();
        self.apply_in_place(&mut state);
        state
    }

    /// Applies the delta to `base` by mutation — the replay kernel.
    ///
    /// A replay loop owns one working state and threads it through every
    /// delta in the chain; because the states' payloads are
    /// reference-counted with copy-on-write, the first application copies
    /// the shared set once and every later application mutates in place,
    /// instead of allocating (and re-validating) a fresh set per delta.
    ///
    /// Panics under the same kind-mismatch condition as
    /// [`StateDelta::apply`].
    pub fn apply_in_place(&self, base: &mut StateValue) {
        match (self, &mut *base) {
            (StateDelta::Snapshot { added, removed }, StateValue::Snapshot(s)) => {
                s.apply_delta(removed, added)
                    .expect("delta preserves tuple validity");
            }
            (StateDelta::Historical { upserted, removed }, StateValue::Historical(h)) => {
                h.apply_delta(removed, upserted)
                    .expect("delta preserves entry validity");
            }
            (StateDelta::Reschema(s), _) => *base = (**s).clone(),
            _ => panic!("delta kind does not match base state kind"),
        }
    }

    /// Number of changed tuples/entries carried by the delta.
    pub fn change_count(&self) -> usize {
        match self {
            StateDelta::Snapshot { added, removed } => added.len() + removed.len(),
            StateDelta::Historical { upserted, removed } => upserted.len() + removed.len(),
            StateDelta::Reschema(s) => s.len(),
        }
    }

    /// Approximate footprint in bytes for space accounting.
    pub fn size_bytes(&self) -> usize {
        match self {
            StateDelta::Snapshot { added, removed } => {
                added.iter().chain(removed).map(Tuple::size_bytes).sum()
            }
            StateDelta::Historical { upserted, removed } => {
                upserted
                    .iter()
                    .map(|(t, e)| t.size_bytes() + e.size_bytes())
                    .sum::<usize>()
                    + removed.iter().map(Tuple::size_bytes).sum::<usize>()
            }
            StateDelta::Reschema(s) => s.size_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txtime_historical::HistoricalState;
    use txtime_snapshot::{DomainType, Schema, SnapshotState, Value};

    fn schema() -> Schema {
        Schema::new(vec![("x", DomainType::Int)]).unwrap()
    }

    fn snap(vals: &[i64]) -> StateValue {
        StateValue::Snapshot(
            SnapshotState::from_rows(schema(), vals.iter().map(|&v| vec![Value::Int(v)])).unwrap(),
        )
    }

    fn hist(vals: &[(i64, u32, u32)]) -> StateValue {
        StateValue::Historical(
            HistoricalState::new(
                schema(),
                vals.iter().map(|&(v, s, e)| {
                    (
                        Tuple::new(vec![Value::Int(v)]),
                        TemporalElement::period(s, e),
                    )
                }),
            )
            .unwrap(),
        )
    }

    #[test]
    fn snapshot_delta_round_trips() {
        let (a, b) = (snap(&[1, 2, 3]), snap(&[2, 3, 4, 5]));
        let d = StateDelta::between(&a, &b);
        assert_eq!(d.apply(&a), b);
        assert_eq!(d.change_count(), 3); // +4 +5 −1
    }

    #[test]
    fn historical_delta_round_trips() {
        let (a, b) = (hist(&[(1, 0, 5), (2, 0, 9)]), hist(&[(1, 0, 7), (3, 2, 4)]));
        let d = StateDelta::between(&a, &b);
        assert_eq!(d.apply(&a), b);
        // 1 revalued, 3 added, 2 removed.
        assert_eq!(d.change_count(), 3);
    }

    #[test]
    fn apply_in_place_matches_apply_across_a_chain() {
        let chain = [
            snap(&[1, 2, 3]),
            snap(&[2, 3, 4]),
            snap(&[4]),
            hist(&[(4, 0, 5)]), // kind change: Reschema delta
            hist(&[(4, 0, 9), (5, 1, 2)]),
        ];
        let deltas: Vec<StateDelta> = chain
            .windows(2)
            .map(|w| StateDelta::between(&w[0], &w[1]))
            .collect();
        // One working state threaded through the whole chain in place.
        let mut working = chain[0].clone();
        for (d, expect) in deltas.iter().zip(&chain[1..]) {
            d.apply_in_place(&mut working);
            assert_eq!(&working, expect);
        }
    }

    #[test]
    fn identical_states_produce_empty_delta() {
        let a = snap(&[1, 2]);
        let d = StateDelta::between(&a, &a);
        assert_eq!(d.change_count(), 0);
        assert_eq!(d.apply(&a), a);
    }

    #[test]
    fn schema_change_becomes_reschema() {
        let a = snap(&[1]);
        let other = StateValue::Snapshot(
            SnapshotState::from_rows(
                Schema::new(vec![("y", DomainType::Int)]).unwrap(),
                vec![vec![Value::Int(9)]],
            )
            .unwrap(),
        );
        let d = StateDelta::between(&a, &other);
        assert!(matches!(d, StateDelta::Reschema(_)));
        assert_eq!(d.apply(&a), other);
    }

    #[test]
    fn kind_change_becomes_reschema() {
        let a = snap(&[1]);
        let b = hist(&[(1, 0, 5)]);
        let d = StateDelta::between(&a, &b);
        assert!(matches!(d, StateDelta::Reschema(_)));
        assert_eq!(d.apply(&a), b);
    }
}
