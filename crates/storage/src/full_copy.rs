//! The full-copy backend: every version stored whole.

use txtime_core::{StateValue, TransactionNumber};

use crate::backend::{BackendKind, RollbackStore};

/// Stores each version in full — the direct transcription of the paper's
/// RELATION domain, and the oracle against which the other backends are
/// differentially tested.
#[derive(Debug, Default)]
pub struct FullCopyStore {
    versions: Vec<(StateValue, TransactionNumber)>,
}

impl FullCopyStore {
    /// An empty store.
    pub fn new() -> FullCopyStore {
        FullCopyStore::default()
    }
}

impl RollbackStore for FullCopyStore {
    fn append(&mut self, state: &StateValue, tx: TransactionNumber) {
        debug_assert!(self.versions.last().is_none_or(|(_, t)| *t < tx));
        self.versions.push((state.clone(), tx));
    }

    fn state_at(&self, tx: TransactionNumber) -> Option<StateValue> {
        let idx = self.versions.partition_point(|(_, t)| *t <= tx);
        idx.checked_sub(1).map(|i| self.versions[i].0.clone())
    }

    fn current(&self) -> Option<StateValue> {
        self.versions.last().map(|(s, _)| s.clone())
    }

    fn version_count(&self) -> usize {
        self.versions.len()
    }

    fn first_tx(&self) -> Option<TransactionNumber> {
        self.versions.first().map(|(_, t)| *t)
    }

    fn last_tx(&self) -> Option<TransactionNumber> {
        self.versions.last().map(|(_, t)| *t)
    }

    fn space_bytes(&self) -> usize {
        self.versions.iter().map(|(s, _)| s.size_bytes() + 8).sum()
    }

    fn version_txs(&self) -> Vec<TransactionNumber> {
        self.versions.iter().map(|(_, t)| *t).collect()
    }

    fn truncate_before(&mut self, tx: TransactionNumber) -> usize {
        let idx = self.versions.partition_point(|(_, t)| *t <= tx);
        match idx.checked_sub(1) {
            Some(floor) => {
                self.versions.drain(..floor);
                floor
            }
            None => 0,
        }
    }

    fn kind(&self) -> BackendKind {
        BackendKind::FullCopy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txtime_snapshot::{DomainType, Schema, SnapshotState, Value};

    fn snap(vals: &[i64]) -> StateValue {
        let schema = Schema::new(vec![("x", DomainType::Int)]).unwrap();
        StateValue::Snapshot(
            SnapshotState::from_rows(schema, vals.iter().map(|&v| vec![Value::Int(v)])).unwrap(),
        )
    }

    #[test]
    fn findstate_contract() {
        let mut s = FullCopyStore::new();
        s.append(&snap(&[1]), TransactionNumber(2));
        s.append(&snap(&[1, 2]), TransactionNumber(5));
        assert_eq!(s.state_at(TransactionNumber(1)), None);
        assert_eq!(s.state_at(TransactionNumber(2)), Some(snap(&[1])));
        assert_eq!(s.state_at(TransactionNumber(4)), Some(snap(&[1])));
        assert_eq!(s.state_at(TransactionNumber(5)), Some(snap(&[1, 2])));
        assert_eq!(s.state_at(TransactionNumber(99)), Some(snap(&[1, 2])));
        assert_eq!(s.current(), Some(snap(&[1, 2])));
        assert_eq!(s.version_count(), 2);
        assert_eq!(s.first_tx(), Some(TransactionNumber(2)));
        assert_eq!(s.last_tx(), Some(TransactionNumber(5)));
    }

    #[test]
    fn space_grows_linearly_with_versions() {
        let mut s = FullCopyStore::new();
        s.append(&snap(&[1, 2, 3]), TransactionNumber(1));
        let one = s.space_bytes();
        s.append(&snap(&[1, 2, 3]), TransactionNumber(2));
        assert!(s.space_bytes() >= 2 * one - 16);
    }
}
