//! The forward-delta backend: base + per-transaction deltas +
//! checkpoints.

use std::collections::{BTreeMap, BTreeSet};
use std::num::NonZeroUsize;
use std::sync::Arc;

use txtime_core::{EvalError, RollbackFilter, StateValue, TransactionNumber};
use txtime_historical::HistoricalState;
use txtime_snapshot::SnapshotState;

use txtime_snapshot::StrInterner;

use crate::backend::{BackendKind, CheckpointPolicy, RollbackStore};
use crate::cache::MaterializationCache;
use crate::delta::{intern_state, StateDelta};
use crate::metrics::{CompactionStats, InternerStats};

/// One entry in the forward chain.
#[derive(Debug)]
enum Entry {
    /// A materialized full state (version 0 and checkpoints).
    Checkpoint(StateValue),
    /// A delta from the previous version.
    Delta(StateDelta),
}

/// Stores the first version in full and subsequent versions as forward
/// deltas, materializing a checkpoint every K versions per the policy.
///
/// `state_at` seeks the last version ≤ tx, walks *back* to the nearest
/// checkpoint, then replays deltas forward — so rollback cost is bounded
/// by the checkpoint interval, and space is proportional to churn rather
/// than state size.
#[derive(Debug)]
pub struct ForwardDeltaStore {
    policy: CheckpointPolicy,
    entries: Vec<(Entry, TransactionNumber)>,
    /// Lifetime compaction counters.
    compaction: CompactionStats,
    /// The current state, cached for O(1) appends and current-state reads.
    current: Option<StateValue>,
    /// Shared materialization cache and this relation's id within it.
    cache: Option<(Arc<MaterializationCache>, u64)>,
    /// Per-relation string pool: every appended state is interned, so
    /// replay compares strings by pointer and never re-hashes them.
    interner: StrInterner,
}

impl ForwardDeltaStore {
    /// An empty store with the given checkpoint policy.
    pub fn new(policy: CheckpointPolicy) -> ForwardDeltaStore {
        ForwardDeltaStore::with_cache(policy, None)
    }

    /// An empty store wired to a shared materialization cache under the
    /// given relation id.
    pub fn with_cache(
        policy: CheckpointPolicy,
        cache: Option<(Arc<MaterializationCache>, u64)>,
    ) -> ForwardDeltaStore {
        ForwardDeltaStore {
            policy,
            entries: Vec::new(),
            compaction: CompactionStats::default(),
            current: None,
            cache,
            interner: StrInterner::new(),
        }
    }

    /// Walks back from `index` to the nearest materialized replay seed —
    /// a checkpoint, or a cached reconstruction of an earlier version
    /// (uncounted probes: these are opportunistic). Returns the seed's
    /// entry index and its materialized state; every entry in
    /// `(seed, index]` is a delta.
    fn seed_for(&self, index: usize) -> (usize, StateValue) {
        let mut base = index;
        let state = loop {
            match &self.entries[base].0 {
                Entry::Checkpoint(s) => break s.clone(),
                Entry::Delta(_) => {
                    if base < index {
                        if let Some((cache, rel)) = &self.cache {
                            if let Some(s) = cache.peek(*rel, self.entries[base].1 .0) {
                                break s;
                            }
                        }
                    }
                    base -= 1;
                }
            }
        };
        (base, state)
    }

    /// Reconstructs version `index` by replay, consulting the cache for
    /// the finished version first and for the nearest materialized replay
    /// seed second.
    fn reconstruct(&self, index: usize) -> StateValue {
        let target_tx = self.entries[index].1;
        if let Some((cache, rel)) = &self.cache {
            // Counted probe: the caller wanted exactly this version.
            if let Some(state) = cache.get(*rel, target_tx.0) {
                return state;
            }
        }
        let (base, mut state) = self.seed_for(index);
        // Replay forward, mutating the one working state in place.
        let mut replayed = 0u64;
        for i in base + 1..=index {
            match &self.entries[i].0 {
                Entry::Delta(d) => {
                    d.apply_in_place(&mut state);
                    replayed += 1;
                }
                Entry::Checkpoint(s) => state = s.clone(),
            }
        }
        if let Some((cache, rel)) = &self.cache {
            cache.add_replayed(replayed);
            if replayed > 0 {
                // Checkpoints are O(1) to fetch; only replayed versions
                // are worth remembering.
                cache.insert(*rel, target_tx.0, state.clone());
            }
        }
        state
    }
}

impl RollbackStore for ForwardDeltaStore {
    fn append(&mut self, state: &StateValue, tx: TransactionNumber) {
        debug_assert!(self.entries.last().is_none_or(|(_, t)| *t < tx));
        // Intern once at the door: the delta (whose tuples are clones out
        // of `state`) and every replayed reconstruction then share pooled
        // string allocations with the prior versions.
        let state = intern_state(state, &mut self.interner);
        let index = self.entries.len();
        let entry = match (&self.current, self.policy.is_checkpoint(index)) {
            (Some(prev), false) => Entry::Delta(StateDelta::between(prev, &state)),
            _ => Entry::Checkpoint(state.clone()),
        };
        self.entries.push((entry, tx));
        self.current = Some(state);
    }

    /// The forward-delta store computes exactly the wanted delta for its
    /// own chain: reuse it instead of diffing twice. Checkpoint entries
    /// (including the first version) fall back to one diff around the
    /// checkpointed state.
    fn append_with_delta(&mut self, state: &StateValue, tx: TransactionNumber) -> StateDelta {
        let prev = self.current.clone();
        self.append(state, tx);
        match (self.entries.last(), prev) {
            (Some((Entry::Delta(d), _)), _) => d.clone(),
            (_, Some(p)) => {
                let cur = self.current.as_ref().expect("append installed current");
                StateDelta::between(&p, cur)
            }
            (_, None) => {
                let cur = self.current.clone().expect("append installed current");
                StateDelta::Reschema(Box::new(cur))
            }
        }
    }

    fn interner_stats(&self) -> Option<InternerStats> {
        Some(InternerStats {
            strings: self.interner.len(),
            bytes: self.interner.size_bytes(),
        })
    }

    fn state_at(&self, tx: TransactionNumber) -> Option<StateValue> {
        let idx = self.entries.partition_point(|(_, t)| *t <= tx);
        idx.checked_sub(1).map(|i| self.reconstruct(i))
    }

    /// Batched FINDSTATE: one replay pass over the delta chain answers
    /// every probe, instead of one replay per probe. The pass runs from
    /// the seed of the *lowest* uncached floor version to the *highest*,
    /// capturing each wanted version (and warming the cache with it) as
    /// the working state sweeps past it.
    fn state_at_many(&self, txs: &[TransactionNumber]) -> Vec<Option<StateValue>> {
        let floors: Vec<Option<usize>> = txs
            .iter()
            .map(|tx| {
                self.entries
                    .partition_point(|(_, t)| *t <= *tx)
                    .checked_sub(1)
            })
            .collect();
        // Triage the distinct floor versions through the cache (counted:
        // each was wanted by at least one probe).
        let mut resolved: BTreeMap<usize, StateValue> = BTreeMap::new();
        let mut missing: BTreeSet<usize> = BTreeSet::new();
        for &floor in floors.iter().flatten() {
            if resolved.contains_key(&floor) || missing.contains(&floor) {
                continue;
            }
            if let Some((cache, rel)) = &self.cache {
                if let Some(s) = cache.get(*rel, self.entries[floor].1 .0) {
                    resolved.insert(floor, s);
                    continue;
                }
            }
            missing.insert(floor);
        }
        if let (Some(&lo), Some(&hi)) = (missing.first(), missing.last()) {
            let (base, mut state) = self.seed_for(lo);
            if missing.contains(&base) {
                // The lowest wanted version is itself a checkpoint.
                resolved.insert(base, state.clone());
            }
            let mut replayed = 0u64;
            for i in base + 1..=hi {
                match &self.entries[i].0 {
                    Entry::Delta(d) => {
                        d.apply_in_place(&mut state);
                        replayed += 1;
                    }
                    Entry::Checkpoint(s) => state = s.clone(),
                }
                if missing.contains(&i) {
                    resolved.insert(i, state.clone());
                    if let Some((cache, rel)) = &self.cache {
                        if matches!(self.entries[i].0, Entry::Delta(_)) {
                            // Same rule as single-probe reconstruction:
                            // only replayed versions are worth caching.
                            cache.insert(*rel, self.entries[i].1 .0, state.clone());
                        }
                    }
                }
            }
            if let Some((cache, _)) = &self.cache {
                cache.add_replayed(replayed);
            }
        }
        floors
            .iter()
            .map(|f| f.map(|i| resolved[&i].clone()))
            .collect()
    }

    /// FINDSTATE with the selection evaluated *during replay*: the
    /// working state carries only tuples the predicate accepts, so the
    /// full version is never materialized (experiment E10).
    ///
    /// This is sound because a forward delta identifies changes by tuple
    /// value: a tuple's predicate verdict is fixed at compile time, so
    /// filtering `added`/`upserted` entries as they arrive and applying
    /// removals to the reduced state commutes with σ over the fully
    /// replayed version. Scheme (and kind) boundaries reset the chain via
    /// `Reschema`/checkpoint entries, so only the suffix after the last
    /// boundary is replayed filtered — against the one schema the
    /// predicate was compiled for.
    fn state_at_filtered(
        &self,
        tx: TransactionNumber,
        historical: bool,
        filter: &RollbackFilter<'_>,
    ) -> Result<Option<StateValue>, EvalError> {
        let Some(predicate) = filter.predicate else {
            // Projection-only pushdown cannot skip replay work (a
            // projected state cannot seed the next delta); materialize
            // and project, exactly like the default path.
            return match self.state_at(tx) {
                Some(s) => filter.apply(s, historical).map(Some),
                None => Ok(None),
            };
        };
        let idx = self.entries.partition_point(|(_, t)| *t <= tx);
        let Some(target) = idx.checked_sub(1) else {
            return Ok(None);
        };
        if let Some((cache, rel)) = &self.cache {
            // A cached full version short-circuits the replay entirely.
            if let Some(s) = cache.get(*rel, self.entries[target].1 .0) {
                return filter.apply(s, historical).map(Some);
            }
        }
        let (base, seed) = self.seed_for(target);
        // Every entry in (base, target] is a delta; a `Reschema` delta
        // replaces the state wholesale, so replay effectively starts at
        // the *last* such boundary.
        let mut start = base;
        let mut state = seed;
        for i in base + 1..=target {
            if let Entry::Delta(StateDelta::Reschema(s)) = &self.entries[i].0 {
                start = i;
                state = (**s).clone();
            }
        }
        if state.is_historical() != historical {
            // The suffix after the last boundary keeps this kind, so the
            // query is doomed to a kind mismatch; materialize unfiltered
            // and let the shared filter code produce the exact error the
            // un-pushed path would.
            return filter.apply(self.reconstruct(target), historical).map(Some);
        }
        // Mirror σ/σ̂ error wrapping (see TupleTimestampStore): σ surfaces
        // a SnapshotError, σ̂ an HistoricalError.
        let mut replayed = 0u64;
        let filtered = match &state {
            StateValue::Snapshot(s) => {
                let compiled = match predicate.compile(s.schema()) {
                    Ok(c) => c,
                    Err(e) => return Err(EvalError::Snapshot(e)),
                };
                let mut tuples: BTreeSet<_> =
                    s.iter().filter(|t| compiled.eval(t)).cloned().collect();
                for i in start + 1..=target {
                    let Entry::Delta(StateDelta::Snapshot { added, removed }) = &self.entries[i].0
                    else {
                        unreachable!("suffix after the last boundary is snapshot deltas");
                    };
                    for t in removed {
                        tuples.remove(t);
                    }
                    tuples.extend(added.iter().filter(|t| compiled.eval(t)).cloned());
                    replayed += 1;
                }
                StateValue::Snapshot(
                    SnapshotState::new(s.schema().clone(), tuples)
                        .expect("stored tuples fit the stored schema"),
                )
            }
            StateValue::Historical(h) => {
                let compiled = match predicate.compile(h.schema()) {
                    Ok(c) => c,
                    Err(e) => return Err(EvalError::Historical(e.into())),
                };
                let mut entries: BTreeMap<_, _> = h
                    .iter()
                    .filter(|(t, _)| compiled.eval(t))
                    .map(|(t, e)| (t.clone(), e.clone()))
                    .collect();
                for i in start + 1..=target {
                    let Entry::Delta(StateDelta::Historical { upserted, removed }) =
                        &self.entries[i].0
                    else {
                        unreachable!("suffix after the last boundary is historical deltas");
                    };
                    for t in removed {
                        entries.remove(t);
                    }
                    for (t, e) in upserted {
                        if compiled.eval(t) {
                            entries.insert(t.clone(), e.clone());
                        }
                    }
                    replayed += 1;
                }
                StateValue::Historical(
                    HistoricalState::new(h.schema().clone(), entries)
                        .expect("stored entries fit the stored schema"),
                )
            }
        };
        if let Some((cache, _)) = &self.cache {
            // Filtered states never enter the cache — they are not the
            // version — but the replay work is still accounted.
            cache.add_replayed(replayed);
        }
        let remaining = RollbackFilter {
            predicate: None,
            project: filter.project,
        };
        remaining.apply(filtered, historical).map(Some)
    }

    fn current(&self) -> Option<StateValue> {
        self.current.clone()
    }

    fn version_count(&self) -> usize {
        self.entries.len()
    }

    fn first_tx(&self) -> Option<TransactionNumber> {
        self.entries.first().map(|(_, t)| *t)
    }

    fn last_tx(&self) -> Option<TransactionNumber> {
        self.entries.last().map(|(_, t)| *t)
    }

    fn space_bytes(&self) -> usize {
        // The interner pool is real resident memory owned by this store;
        // count it alongside the entries it deduplicates.
        self.interner.size_bytes()
            + self
                .entries
                .iter()
                .map(|(e, _)| {
                    8 + match e {
                        Entry::Checkpoint(s) => s.size_bytes(),
                        Entry::Delta(d) => d.size_bytes(),
                    }
                })
                .sum::<usize>()
    }

    fn version_txs(&self) -> Vec<TransactionNumber> {
        self.entries.iter().map(|(_, t)| *t).collect()
    }

    fn compact(&mut self, every: NonZeroUsize) -> CompactionStats {
        // Promote the delta entry at every `every`-th chain position to a
        // materialized checkpoint, so no later probe replays more than
        // `every` deltas. One forward replay visits the whole chain.
        let wanted = |i: usize| i.is_multiple_of(every.get());
        if !self
            .entries
            .iter()
            .enumerate()
            .any(|(i, (e, _))| wanted(i) && matches!(e, Entry::Delta(_)))
        {
            return CompactionStats::default();
        }
        let mut pass = CompactionStats {
            runs: 1,
            ..CompactionStats::default()
        };
        let mut state: Option<StateValue> = None;
        for i in 0..self.entries.len() {
            let folded = match &self.entries[i].0 {
                Entry::Checkpoint(s) => {
                    state = Some(s.clone());
                    false
                }
                Entry::Delta(d) => {
                    d.apply_in_place(state.as_mut().expect("chain starts with a checkpoint"));
                    pass.deltas_folded += 1;
                    true
                }
            };
            if folded && wanted(i) {
                let s = state.clone().expect("replayed above");
                pass.tuples_folded += s.len() as u64;
                self.entries[i].0 = Entry::Checkpoint(s);
            }
        }
        self.compaction = self.compaction.merged(pass);
        pass
    }

    fn compaction_stats(&self) -> CompactionStats {
        self.compaction
    }

    fn truncate_before(&mut self, tx: TransactionNumber) -> usize {
        let idx = self.entries.partition_point(|(_, t)| *t <= tx);
        match idx.checked_sub(1) {
            Some(floor) if floor > 0 => {
                // Materialize the floor version as the new base
                // checkpoint, then drop everything before it.
                let base = self.reconstruct(floor);
                let base_tx = self.entries[floor].1;
                self.entries.drain(..=floor);
                self.entries.insert(0, (Entry::Checkpoint(base), base_tx));
                floor
            }
            _ => 0,
        }
    }

    fn kind(&self) -> BackendKind {
        BackendKind::ForwardDelta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txtime_snapshot::{DomainType, Schema, SnapshotState, Value};

    fn snap(vals: &[i64]) -> StateValue {
        let schema = Schema::new(vec![("x", DomainType::Int)]).unwrap();
        StateValue::Snapshot(
            SnapshotState::from_rows(schema, vals.iter().map(|&v| vec![Value::Int(v)])).unwrap(),
        )
    }

    fn filled(policy: CheckpointPolicy) -> ForwardDeltaStore {
        let mut s = ForwardDeltaStore::new(policy);
        s.append(&snap(&[1]), TransactionNumber(1));
        s.append(&snap(&[1, 2]), TransactionNumber(3));
        s.append(&snap(&[2]), TransactionNumber(4));
        s.append(&snap(&[2, 3]), TransactionNumber(8));
        s
    }

    #[test]
    fn findstate_contract_without_checkpoints() {
        let s = filled(CheckpointPolicy::Never);
        assert_eq!(s.state_at(TransactionNumber(0)), None);
        assert_eq!(s.state_at(TransactionNumber(1)), Some(snap(&[1])));
        assert_eq!(s.state_at(TransactionNumber(2)), Some(snap(&[1])));
        assert_eq!(s.state_at(TransactionNumber(3)), Some(snap(&[1, 2])));
        assert_eq!(s.state_at(TransactionNumber(5)), Some(snap(&[2])));
        assert_eq!(s.state_at(TransactionNumber(9)), Some(snap(&[2, 3])));
        assert_eq!(s.current(), Some(snap(&[2, 3])));
    }

    #[test]
    fn checkpoints_do_not_change_answers() {
        let a = filled(CheckpointPolicy::Never);
        let b = filled(CheckpointPolicy::every_k(2).unwrap());
        for t in 0..10 {
            assert_eq!(
                a.state_at(TransactionNumber(t)),
                b.state_at(TransactionNumber(t)),
                "at tx {t}"
            );
        }
    }

    #[test]
    fn compact_promotes_deltas_without_changing_answers() {
        let mut s = ForwardDeltaStore::new(CheckpointPolicy::Never);
        for v in 1..=60u64 {
            s.append(&snap(&[v as i64]), TransactionNumber(v));
        }
        let before: Vec<_> = (0..=61).map(|v| s.state_at(TransactionNumber(v))).collect();
        let pass = s.compact(NonZeroUsize::new(5).unwrap());
        assert_eq!(pass.runs, 1);
        assert!(pass.deltas_folded > 0);
        assert!(pass.tuples_folded > 0);
        let after: Vec<_> = (0..=61).map(|v| s.state_at(TransactionNumber(v))).collect();
        assert_eq!(before, after);
        assert_eq!(s.compact(NonZeroUsize::new(5).unwrap()).runs, 0);
        assert_eq!(s.compaction_stats().runs, 1);
    }

    #[test]
    fn delta_storage_is_smaller_than_full_copy_for_low_churn() {
        let schema = Schema::new(vec![("x", DomainType::Int)]).unwrap();
        let base: Vec<Vec<Value>> = (0..200).map(|i| vec![Value::Int(i)]).collect();
        let mut fd = ForwardDeltaStore::new(CheckpointPolicy::Never);
        let mut fc = crate::FullCopyStore::new();
        for v in 0..20 {
            let mut rows = base.clone();
            rows[v as usize] = vec![Value::Int(1000 + v)];
            let s = StateValue::Snapshot(SnapshotState::from_rows(schema.clone(), rows).unwrap());
            fd.append(&s, TransactionNumber(v as u64 + 1));
            fc.append(&s, TransactionNumber(v as u64 + 1));
        }
        assert!(fd.space_bytes() < fc.space_bytes() / 4);
    }
}
