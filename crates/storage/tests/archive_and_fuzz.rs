//! Property tests for archival truncation and WAL corruption handling.

use proptest::prelude::*;
use txtime_snapshot::rng::rngs::StdRng;
use txtime_snapshot::rng::SeedableRng;

use txtime_core::generate::{random_commands, CmdGenConfig};
use txtime_core::{StateSource, TransactionNumber, TxSpec};
use txtime_snapshot::generate::GenConfig;
use txtime_snapshot::{DomainType, Schema};
use txtime_storage::{BackendKind, CheckpointPolicy, Engine};

fn schema() -> Schema {
    Schema::new(vec![("a0", DomainType::Int), ("a1", DomainType::Str)]).unwrap()
}

fn gen_cfg() -> CmdGenConfig {
    CmdGenConfig {
        values: GenConfig {
            arity: 2,
            cardinality: 8,
            int_range: 10,
            str_pool: 4,
        },
        relations: vec!["r0".into()],
        churn: 0.4,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// After truncating at a random cutoff, every backend still answers
    /// identically to an untruncated full-copy oracle at and after the
    /// floor, and never fabricates data before it.
    #[test]
    fn truncation_is_uniform_across_backends(seed in any::<u64>(), len in 3usize..20, cut in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cmds = random_commands(&mut rng, &schema(), &gen_cfg(), len);
        let cutoff = TransactionNumber(cut % (len as u64 + 3));

        // Oracle: untruncated full-copy engine.
        let mut oracle = Engine::new(BackendKind::FullCopy, CheckpointPolicy::Never);
        for c in &cmds {
            let _ = oracle.execute(c);
        }

        for backend in BackendKind::ALL {
            let mut e = Engine::new(backend, CheckpointPolicy::every_k(3).unwrap());
            for c in &cmds {
                let _ = e.execute(c);
            }
            let report = e.archive_before("r0", cutoff, None).unwrap();

            // Floor: the version current at the cutoff (if any).
            let txs: Vec<u64> = (0..=oracle.tx().0).collect();
            for t in txs {
                let spec = TxSpec::At(TransactionNumber(t));
                let want = oracle.resolve_rollback("r0", spec, false);
                let got = e.resolve_rollback("r0", spec, false);
                if report.archived > 0 && TransactionNumber(t) < cutoff {
                    // Possibly archived range: the engine may miss (empty
                    // or error) but must never return *wrong* data.
                    if let (Ok(w), Ok(g)) = (&want, &got) {
                        prop_assert!(
                            g == w || g.is_empty(),
                            "{backend} fabricated data at tx {t}"
                        );
                    }
                } else {
                    match (&want, &got) {
                        (Ok(w), Ok(g)) => prop_assert_eq!(w, g, "{} at tx {}", backend, t),
                        (Err(_), Err(_)) => {}
                        _ => prop_assert!(false, "{} diverged at tx {}", backend, t),
                    }
                }
            }
        }
    }

    /// Corrupting arbitrary bytes of a journal never panics recovery and
    /// always yields a valid prefix replay.
    #[test]
    fn corrupted_journals_recover_a_prefix(seed in any::<u64>(), len in 1usize..15, corrupt_at in any::<usize>(), flip in any::<u8>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cmds = random_commands(&mut rng, &schema(), &gen_cfg(), len);
        let dir = std::env::temp_dir().join("txtime-fuzz");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("fuzz-{}-{seed}.wal", std::process::id()));
        let _ = std::fs::remove_file(&path);

        {
            let mut live = Engine::with_wal(BackendKind::FullCopy, CheckpointPolicy::Never, &path)
                .unwrap();
            for c in &cmds {
                let _ = live.execute(c);
            }
        }
        // Corrupt one byte somewhere.
        let mut data = std::fs::read(&path).unwrap();
        if !data.is_empty() {
            let pos = corrupt_at % data.len();
            data[pos] ^= flip | 1; // guarantee a change
            std::fs::write(&path, &data).unwrap();
        }

        let rec = txtime_storage::recovery::recover(
            &path,
            BackendKind::FullCopy,
            CheckpointPolicy::Never,
        )
        .unwrap();
        // The replayed prefix must itself be a valid execution: replaying
        // the same number of original commands gives the same clock.
        let mut oracle = Engine::new(BackendKind::FullCopy, CheckpointPolicy::Never);
        let mut applied = 0;
        for c in &cmds {
            if applied == rec.replayed {
                break;
            }
            if oracle.execute(c).is_ok() {
                applied += 1;
            }
        }
        // Note: corruption may hit a byte *inside* a command that still
        // parses to the same text (impossible with checksums) — with the
        // FNV check, any surviving line is byte-identical, so the prefix
        // replay matches the oracle prefix exactly.
        prop_assert_eq!(rec.engine.tx(), oracle.tx());
        let _ = std::fs::remove_file(&path);
    }
}
