//! Shard-invariance property tests: partitioning a relation's sorted
//! runs across K shards is an implementation detail. Every observation
//! — command outcomes, errors, rollback probes at every transaction
//! number, and composite σ/π/∪/− queries — must be identical across
//! 1/2/8 shards, all four backends, memo on/off, and 1/2 worker
//! threads. A second oracle interleaves `Engine::compact` with the
//! workload and demands the same answers, so background compaction can
//! never be observed through the algebra either.

use std::num::NonZeroUsize;

use proptest::prelude::*;
use txtime_snapshot::rng::rngs::StdRng;
use txtime_snapshot::rng::{Rng, SeedableRng};

use txtime_core::generate::{random_commands, CmdGenConfig};
use txtime_core::{Command, Expr, RelationType, StateSource, TransactionNumber, TxSpec};
use txtime_historical::generate::{random_historical_state, HistGenConfig};
use txtime_snapshot::generate::{random_predicate, GenConfig};
use txtime_snapshot::{DomainType, Schema};
use txtime_storage::{BackendKind, CheckpointPolicy, Engine};

fn schema() -> Schema {
    Schema::new(vec![("a0", DomainType::Int), ("a1", DomainType::Str)]).unwrap()
}

fn gen_cfg() -> CmdGenConfig {
    CmdGenConfig {
        values: GenConfig {
            arity: 2,
            cardinality: 10,
            int_range: 12,
            str_pool: 4,
        },
        relations: vec!["r0".into(), "r1".into()],
        churn: 0.4,
    }
}

/// A mixed workload: random rollback-relation commands salted with a
/// temporal relation (so the historical kernels shard too) and one
/// guaranteed-failing command (so error equality is exercised).
fn workload(seed: u64, len: usize) -> Vec<Command> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cmds = random_commands(&mut rng, &schema(), &gen_cfg(), len);
    let hcfg = HistGenConfig {
        values: GenConfig {
            arity: 2,
            cardinality: 8,
            int_range: 10,
            str_pool: 4,
        },
        horizon: 40,
        max_periods: 2,
    };
    let defines = gen_cfg().relations.len();
    cmds.insert(0, Command::define_relation("t0", RelationType::Temporal));
    for _ in 0..(len / 3).max(1) {
        let pos = rng.gen_range(defines + 1..=cmds.len());
        cmds.insert(
            pos,
            Command::modify_state(
                "t0",
                Expr::historical_const(random_historical_state(&mut rng, &schema(), &hcfg)),
            ),
        );
    }
    let pos = rng.gen_range(defines + 1..=cmds.len());
    cmds.insert(pos, Command::modify_state("ghost", Expr::current("ghost")));
    cmds
}

/// Random composite queries over the workload's relations. Mixing the
/// temporal leaf into snapshot operators is deliberate: those evaluate
/// to errors, and the errors must match across shard counts too.
fn random_query(rng: &mut StdRng, depth: usize) -> Expr {
    if depth == 0 {
        return match rng.gen_range(0..4u8) {
            0 => {
                let r = ["r0", "r1"][rng.gen_range(0..2usize)];
                Expr::rollback(r, TxSpec::At(TransactionNumber(rng.gen_range(0..30))))
            }
            1 => Expr::hrollback("t0", TxSpec::At(TransactionNumber(rng.gen_range(0..30)))),
            2 => Expr::hrollback("t0", TxSpec::Current),
            _ => Expr::current(["r0", "r1"][rng.gen_range(0..2usize)]),
        };
    }
    let values = gen_cfg().values;
    match rng.gen_range(0..6) {
        0 => random_query(rng, depth - 1).union(random_query(rng, depth - 1)),
        1 => random_query(rng, depth - 1).difference(random_query(rng, depth - 1)),
        2 => random_query(rng, depth - 1).select(random_predicate(rng, &schema(), &values, 2)),
        3 => random_query(rng, depth - 1).project(vec!["a0".into()]),
        4 => random_query(rng, depth - 1)
            .select(random_predicate(rng, &schema(), &values, 1))
            .project(vec!["a1".into(), "a0".into()]),
        _ => random_query(rng, 0),
    }
}

fn probe_queries(seed: u64) -> Vec<Expr> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..6)
        .map(|_| {
            let depth = rng.gen_range(0..4);
            random_query(&mut rng, depth)
        })
        .collect()
}

/// Runs the workload, rendering each command's outcome (or error) to a
/// comparable string. `compact_period` interleaves explicit compaction
/// passes mid-workload — the churn oracle.
fn run_engine(engine: &mut Engine, cmds: &[Command], compact_period: Option<usize>) -> Vec<String> {
    let mut log = Vec::with_capacity(cmds.len());
    for (i, cmd) in cmds.iter().enumerate() {
        log.push(match engine.execute(cmd) {
            Ok(txtime_core::CommandOutcome::Displayed(s)) => format!("displayed: {s}"),
            Ok(o) => format!("ok: {o:?}"),
            Err(e) => format!("err: {e}"),
        });
        if let Some(period) = compact_period {
            if (i + 1) % period == 0 {
                engine.compact(NonZeroUsize::new(2));
            }
        }
    }
    log
}

fn render(r: Result<impl std::fmt::Display, impl std::fmt::Display>) -> String {
    match r {
        Ok(s) => format!("ok: {s}"),
        Err(e) => format!("err: {e}"),
    }
}

/// Every observation the algebra affords: rollback probes for every
/// relation at every transaction number (both polarities, so type
/// errors are compared as well), the current state, and the composite
/// queries — each evaluated twice so the second pass exercises the
/// materialization-cache and memo hit paths.
fn observe(engine: &Engine, max_tx: u64, queries: &[Expr]) -> Vec<String> {
    let mut obs = Vec::new();
    let mut rels: Vec<String> = engine.relations().iter().map(|s| s.to_string()).collect();
    rels.sort();
    for name in &rels {
        let historical = matches!(
            engine.relation_type(name),
            Some(RelationType::Historical | RelationType::Temporal)
        );
        for t in 0..=max_tx {
            for h in [false, true] {
                obs.push(render(engine.resolve_rollback(
                    name,
                    TxSpec::At(TransactionNumber(t)),
                    h,
                )));
            }
        }
        obs.push(render(engine.resolve_rollback(
            name,
            TxSpec::Current,
            historical,
        )));
    }
    for q in queries {
        let first = engine.eval(q);
        let first_ok = first.is_ok();
        obs.push(render(first));
        // The second pass exercises the cache/memo hit path. Values must
        // be bit-identical; erroring queries must still error, but the
        // exact message is not pinned — once the memo registers the
        // query, which operator reports a type mismatch first is
        // evaluation-order dependent, independent of sharding.
        match (first_ok, engine.eval(q)) {
            (true, second) => obs.push(render(second)),
            (false, Err(_)) => obs.push("err (second pass)".into()),
            (false, Ok(s)) => obs.push(format!("error became a value on second pass: {s}")),
        }
    }
    obs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The full configuration lattice against a flat full-copy oracle.
    #[test]
    fn sharded_engines_match_unsharded_oracle(seed in any::<u64>(), len in 4usize..14) {
        let cmds = workload(seed, len);
        let queries = probe_queries(seed ^ 0x9e3779b97f4a7c15);

        let mut oracle = Engine::new(BackendKind::FullCopy, CheckpointPolicy::every_k(3).unwrap());
        oracle.set_memo_capacity(0);
        let oracle_log = run_engine(&mut oracle, &cmds, None);
        let max_tx = oracle.tx().0 + 1;
        let oracle_obs = observe(&oracle, max_tx, &queries);

        for backend in BackendKind::ALL {
            for shards in [1usize, 2, 8] {
                for memo in [false, true] {
                    for threads in [1usize, 2] {
                        let mut engine =
                            Engine::new(backend, CheckpointPolicy::every_k(3).unwrap());
                        engine.set_shards(shards);
                        engine.set_threads(threads);
                        if !memo {
                            engine.set_memo_capacity(0);
                        }
                        let log = run_engine(&mut engine, &cmds, None);
                        prop_assert_eq!(
                            &log, &oracle_log,
                            "command log diverged: {} shards={} memo={} threads={}",
                            backend, shards, memo, threads
                        );
                        let obs = observe(&engine, max_tx, &queries);
                        prop_assert_eq!(
                            &obs, &oracle_obs,
                            "observation diverged: {} shards={} memo={} threads={}",
                            backend, shards, memo, threads
                        );
                    }
                }
            }
        }
    }

    /// Compaction under churn: folding delta chains into checkpoints
    /// mid-workload (every 3 commands, plus a final full pass) must be
    /// invisible to every later observation, on every backend, sharded
    /// or flat, under either checkpoint policy.
    #[test]
    fn compaction_under_churn_preserves_answers(seed in any::<u64>(), len in 4usize..14) {
        let cmds = workload(seed, len);
        let queries = probe_queries(seed ^ 0x6a09e667f3bcc909);

        let mut oracle = Engine::new(BackendKind::FullCopy, CheckpointPolicy::every_k(3).unwrap());
        oracle.set_memo_capacity(0);
        let oracle_log = run_engine(&mut oracle, &cmds, None);
        let max_tx = oracle.tx().0 + 1;
        let oracle_obs = observe(&oracle, max_tx, &queries);

        for backend in BackendKind::ALL {
            for policy in [CheckpointPolicy::Never, CheckpointPolicy::every_k(3).unwrap()] {
                for shards in [1usize, 4] {
                    let mut engine = Engine::new(backend, policy);
                    engine.set_shards(shards);
                    let log = run_engine(&mut engine, &cmds, Some(3));
                    prop_assert_eq!(
                        &log, &oracle_log,
                        "churn log diverged: {} {:?} shards={}",
                        backend, policy, shards
                    );
                    let stats = engine.compact(NonZeroUsize::new(1));
                    let _ = stats; // counters are reported, not asserted: chains may be short
                    let obs = observe(&engine, max_tx, &queries);
                    prop_assert_eq!(
                        &obs, &oracle_obs,
                        "post-compaction observation diverged: {} {:?} shards={}",
                        backend, policy, shards
                    );
                }
            }
        }
    }
}
