//! Differential property tests: every backend is observationally
//! equivalent to the reference semantics on random command sequences,
//! including historical/temporal relations, scheme evolution, and
//! deletes.

use proptest::prelude::*;
use txtime_snapshot::rng::rngs::StdRng;
use txtime_snapshot::rng::{Rng, SeedableRng};

use txtime_core::generate::{random_commands, CmdGenConfig};
use txtime_core::{Command, Expr, RelationType, SchemeChange};
use txtime_historical::generate::{random_historical_state, HistGenConfig};
use txtime_snapshot::generate::GenConfig;
use txtime_snapshot::{DomainType, Schema, Value};
use txtime_storage::{check_equivalence, BackendKind, CheckpointPolicy};

fn schema() -> Schema {
    Schema::new(vec![("a0", DomainType::Int), ("a1", DomainType::Str)]).unwrap()
}

fn gen_cfg() -> CmdGenConfig {
    CmdGenConfig {
        values: GenConfig {
            arity: 2,
            cardinality: 10,
            int_range: 12,
            str_pool: 4,
        },
        relations: vec!["r0".into(), "r1".into()],
        churn: 0.4,
    }
}

/// Random snapshot-relation workloads.
fn arb_snapshot_commands() -> impl Strategy<Value = Vec<Command>> {
    (any::<u64>(), 1usize..25).prop_map(|(seed, len)| {
        let mut rng = StdRng::seed_from_u64(seed);
        random_commands(&mut rng, &schema(), &gen_cfg(), len)
    })
}

/// Random temporal-relation workloads.
fn arb_temporal_commands() -> impl Strategy<Value = Vec<Command>> {
    (any::<u64>(), 1usize..15).prop_map(|(seed, len)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let hcfg = HistGenConfig {
            values: GenConfig {
                arity: 2,
                cardinality: 8,
                int_range: 10,
                str_pool: 4,
            },
            horizon: 40,
            max_periods: 2,
        };
        let mut cmds = vec![
            Command::define_relation("t0", RelationType::Temporal),
            Command::define_relation("h0", RelationType::Historical),
        ];
        for _ in 0..len {
            let target = if rng.gen_bool(0.7) { "t0" } else { "h0" };
            cmds.push(Command::modify_state(
                target,
                Expr::historical_const(random_historical_state(&mut rng, &schema(), &hcfg)),
            ));
        }
        cmds
    })
}

/// Workloads salted with extension commands (deletes, scheme evolution)
/// and guaranteed failures.
fn arb_spiced_commands() -> impl Strategy<Value = Vec<Command>> {
    (any::<u64>(), 4usize..20).prop_map(|(seed, len)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut cmds = random_commands(&mut rng, &schema(), &gen_cfg(), len);
        // Insert extension commands at random points (after the defines).
        let defines = gen_cfg().relations.len();
        let spice: Vec<Command> = vec![
            Command::evolve_scheme(
                "r0",
                SchemeChange::AddAttribute {
                    name: "extra".into(),
                    domain: DomainType::Bool,
                    default: Value::Bool(false),
                },
            ),
            Command::evolve_scheme(
                "r0",
                SchemeChange::RenameAttribute {
                    from: "a1".into(),
                    to: "a1x".into(),
                },
            ),
            Command::delete_relation("r1"),
            Command::define_relation("r1", RelationType::Rollback),
            Command::modify_state("ghost", Expr::current("ghost")), // always fails
            Command::define_relation("r0", RelationType::Snapshot), // always fails
        ];
        for s in spice {
            let pos = rng.gen_range(defines..=cmds.len());
            cmds.insert(pos, s);
        }
        cmds
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn snapshot_workloads_equivalent(cmds in arb_snapshot_commands()) {
        for backend in BackendKind::ALL {
            for ck in [CheckpointPolicy::Never, CheckpointPolicy::every_k(3).unwrap()] {
                if let Err(e) = check_equivalence(&cmds, backend, ck) {
                    panic!("divergence: {e}");
                }
            }
        }
    }

    #[test]
    fn temporal_workloads_equivalent(cmds in arb_temporal_commands()) {
        for backend in BackendKind::ALL {
            if let Err(e) = check_equivalence(&cmds, backend, CheckpointPolicy::every_k(4).unwrap()) {
                panic!("divergence: {e}");
            }
        }
    }

    #[test]
    fn spiced_workloads_equivalent(cmds in arb_spiced_commands()) {
        for backend in BackendKind::ALL {
            if let Err(e) = check_equivalence(&cmds, backend, CheckpointPolicy::every_k(2).unwrap()) {
                panic!("divergence: {e}");
            }
        }
    }
}

/// `Engine::eval` — operator pushdown plus the materialization cache —
/// is tuple-for-tuple equal to the reference evaluator on random
/// queries, across every backend, including a cache small enough to
/// evict on every sweep. Each query runs twice so the second evaluation
/// exercises the cache-hit path.
mod eval_differential {
    use super::*;
    use txtime_core::{Database, TransactionNumber, TxSpec};
    use txtime_snapshot::generate::random_predicate;
    use txtime_storage::Engine;

    fn random_query(rng: &mut StdRng, depth: usize) -> Expr {
        if depth == 0 {
            let r = ["r0", "r1"][rng.gen_range(0..2usize)];
            return if rng.gen_bool(0.4) {
                Expr::rollback(r, TxSpec::At(TransactionNumber(rng.gen_range(0..30))))
            } else {
                Expr::current(r)
            };
        }
        let values = gen_cfg().values;
        match rng.gen_range(0..6) {
            0 => random_query(rng, depth - 1).union(random_query(rng, depth - 1)),
            1 => random_query(rng, depth - 1).difference(random_query(rng, depth - 1)),
            2 => random_query(rng, depth - 1).select(random_predicate(rng, &schema(), &values, 2)),
            3 => random_query(rng, depth - 1).project(vec!["a0".into()]),
            4 => random_query(rng, depth - 1)
                .select(random_predicate(rng, &schema(), &values, 1))
                .project(vec!["a1".into(), "a0".into()]),
            _ => random_query(rng, 0),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn engine_eval_matches_reference(
            seed in any::<u64>(),
            len in 4usize..25,
            q_seed in any::<u64>(),
            tiny_cache in any::<bool>(),
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let cmds = random_commands(&mut rng, &schema(), &gen_cfg(), len);
            let mut reference = Database::empty();
            for cmd in &cmds {
                if let Ok((next, _)) = cmd.execute(&reference) {
                    reference = next;
                }
            }
            for backend in BackendKind::ALL {
                let mut engine = Engine::new(backend, CheckpointPolicy::every_k(3).unwrap());
                if tiny_cache {
                    engine.set_cache_capacity(1);
                }
                for cmd in &cmds {
                    let _ = engine.execute(cmd);
                }
                let mut qrng = StdRng::seed_from_u64(q_seed);
                for _ in 0..8 {
                    let depth = qrng.gen_range(0..4);
                    let q = random_query(&mut qrng, depth);
                    let want = q.eval(&reference);
                    for pass in 0..2 {
                        let got = engine.eval(&q);
                        match (&want, &got) {
                            (Ok(a), Ok(b)) => prop_assert_eq!(
                                a, b, "{}: {} (pass {})", backend, q, pass
                            ),
                            (Err(_), Err(_)) => {}
                            _ => prop_assert!(
                                false,
                                "{}: {} (pass {}): reference {:?} != engine {:?}",
                                backend, q, pass, want, got
                            ),
                        }
                    }
                }
            }
        }
    }
}

/// WAL recovery on random workloads: rebuild-from-log equals live engine
/// (experiment E10's property form).
mod recovery_differential {
    use super::*;
    use txtime_core::{StateSource, TransactionNumber, TxSpec};
    use txtime_storage::{recovery::recover, Engine};

    fn tmpfile(tag: u64) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("txtime-differential");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("wal-{}-{tag}.log", std::process::id()))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn recovery_matches_live_engine(seed in any::<u64>(), len in 1usize..20) {
            let mut rng = StdRng::seed_from_u64(seed);
            let cmds = random_commands(&mut rng, &schema(), &gen_cfg(), len);
            let path = tmpfile(seed);
            let _ = std::fs::remove_file(&path);

            let mut live = Engine::with_wal(
                BackendKind::ForwardDelta,
                CheckpointPolicy::every_k(4).unwrap(),
                &path,
            ).unwrap();
            for c in &cmds {
                let _ = live.execute(c);
            }

            let rec = recover(&path, BackendKind::ForwardDelta, CheckpointPolicy::every_k(4).unwrap())
                .unwrap();
            prop_assert!(rec.skipped.is_empty());
            prop_assert_eq!(rec.engine.tx(), live.tx());
            for name in live.relations() {
                for t in 0..=live.tx().0 {
                    let spec = TxSpec::At(TransactionNumber(t));
                    let a = live.resolve_rollback(name, spec, false);
                    let b = rec.engine.resolve_rollback(name, spec, false);
                    match (&a, &b) {
                        (Ok(x), Ok(y)) => prop_assert_eq!(x, y),
                        (Err(_), Err(_)) => {}
                        _ => prop_assert!(false, "recovery divergence on {} at {}", name, t),
                    }
                }
            }
            let _ = std::fs::remove_file(&path);
        }
    }
}
