//! Differential property tests for the view memo: an engine with the
//! memo fully enabled (registration on first evaluation, so repeated
//! queries hit cached views and every `modify_state` propagates deltas
//! through them) is observationally identical — values *and* errors —
//! to an engine with the memo disabled, on every backend, sequentially
//! and partitioned. This is the property that licenses consulting the
//! memo in `Engine::eval` at all.

use proptest::prelude::*;
use txtime_snapshot::rng::rngs::StdRng;
use txtime_snapshot::rng::{Rng, SeedableRng};

use txtime_core::generate::{random_commands, CmdGenConfig};
use txtime_core::{Command, Expr, RelationType, SchemeChange, TransactionNumber, TxSpec};
use txtime_historical::generate::{random_historical_state, HistGenConfig};
use txtime_snapshot::generate::{random_predicate, GenConfig};
use txtime_snapshot::{DomainType, Schema, Value};
use txtime_storage::{BackendKind, CheckpointPolicy, Engine};

/// 1 is the sequential oracle; 2 exercises the partitioned kernels that
/// delta propagation runs beneath (`OpKind::Propagate`).
const THREADS: [usize; 2] = [1, 2];

fn schema() -> Schema {
    Schema::new(vec![("a0", DomainType::Int), ("a1", DomainType::Str)]).unwrap()
}

fn gen_cfg() -> CmdGenConfig {
    CmdGenConfig {
        values: GenConfig {
            arity: 2,
            cardinality: 10,
            int_range: 12,
            str_pool: 4,
        },
        relations: vec!["r0".into(), "r1".into()],
        churn: 0.4,
    }
}

/// The engine under test: memo on, registering every expression on its
/// first evaluation so each query's second pass is a hit and every
/// subsequent modification must propagate.
fn memo_engine(backend: BackendKind, threads: usize) -> Engine {
    let mut e = Engine::new(backend, CheckpointPolicy::every_k(3).unwrap());
    e.set_threads(threads);
    e.set_memo_register_after(1);
    e
}

/// The oracle: identical engine with the memo disabled outright, so
/// every evaluation takes the plain plan-and-execute path.
fn plain_engine(backend: BackendKind, threads: usize) -> Engine {
    let mut e = Engine::new(backend, CheckpointPolicy::every_k(3).unwrap());
    e.set_threads(threads);
    e.set_memo_capacity(0);
    e
}

/// Evaluates `q` twice on both engines (the second pass on the memo
/// engine exercises the hit or freshly-propagated path) and demands
/// byte-identical results, errors included.
fn assert_agree(memo: &Engine, plain: &Engine, q: &Expr, backend: BackendKind, threads: usize) {
    for pass in 0..2 {
        let want = plain.eval(q);
        let got = memo.eval(q);
        match (&want, &got) {
            (Ok(a), Ok(b)) => assert_eq!(
                a, b,
                "{backend}, {threads} threads, pass {pass}: {q} diverged under memo"
            ),
            (Err(a), Err(b)) => assert_eq!(
                format!("{a:?}"),
                format!("{b:?}"),
                "{backend}, {threads} threads, pass {pass}: {q} error diverged under memo"
            ),
            _ => panic!(
                "{backend}, {threads} threads, pass {pass}: {q}: plain {want:?} != memo {got:?}"
            ),
        }
    }
}

/// Runs the command sequence on both engines in lockstep, checking the
/// whole query pool after every command — so views registered early see
/// every later modification, deletion, and scheme change as a delta
/// propagation or an invalidation.
fn drive(
    cmds: &[Command],
    queries: &[Expr],
    backend: BackendKind,
    threads: usize,
) -> (Engine, Engine) {
    let mut memo = memo_engine(backend, threads);
    let mut plain = plain_engine(backend, threads);
    for cmd in cmds {
        let a = memo.execute(cmd);
        let b = plain.execute(cmd);
        match (&a, &b) {
            (Ok(_), Ok(_)) => {}
            (Err(x), Err(y)) => assert_eq!(
                format!("{x:?}"),
                format!("{y:?}"),
                "{backend}, {threads} threads: command error diverged"
            ),
            _ => panic!("{backend}, {threads} threads: command outcome diverged: {a:?} vs {b:?}"),
        }
        for q in queries {
            assert_agree(&memo, &plain, q, backend, threads);
        }
    }
    (memo, plain)
}

/// Snapshot-algebra queries, the same shape pool as the other
/// differential suites (includes the σ/π-over-ρ pushdown forms).
fn random_query(rng: &mut StdRng, depth: usize) -> Expr {
    if depth == 0 {
        let r = ["r0", "r1"][rng.gen_range(0..2usize)];
        return if rng.gen_bool(0.4) {
            Expr::rollback(r, TxSpec::At(TransactionNumber(rng.gen_range(0..30))))
        } else {
            Expr::current(r)
        };
    }
    let values = gen_cfg().values;
    match rng.gen_range(0..6) {
        0 => random_query(rng, depth - 1).union(random_query(rng, depth - 1)),
        1 => random_query(rng, depth - 1).difference(random_query(rng, depth - 1)),
        2 => random_query(rng, depth - 1).select(random_predicate(rng, &schema(), &values, 2)),
        3 => random_query(rng, depth - 1).project(vec!["a0".into()]),
        4 => random_query(rng, depth - 1)
            .select(random_predicate(rng, &schema(), &values, 1))
            .project(vec!["a1".into(), "a0".into()]),
        _ => random_query(rng, 0),
    }
}

/// Historical-algebra queries over t0/h0.
fn random_hquery(rng: &mut StdRng, depth: usize) -> Expr {
    if depth == 0 {
        let r = ["t0", "h0"][rng.gen_range(0..2usize)];
        return if rng.gen_bool(0.4) {
            Expr::hrollback(r, TxSpec::At(TransactionNumber(rng.gen_range(0..30))))
        } else {
            Expr::hcurrent(r)
        };
    }
    let values = gen_cfg().values;
    match rng.gen_range(0..6) {
        0 => random_hquery(rng, depth - 1).hunion(random_hquery(rng, depth - 1)),
        1 => random_hquery(rng, depth - 1).hdifference(random_hquery(rng, depth - 1)),
        2 => random_hquery(rng, depth - 1).hselect(random_predicate(rng, &schema(), &values, 2)),
        3 => random_hquery(rng, depth - 1).hproject(vec!["a0".into()]),
        4 => random_hquery(rng, depth - 1)
            .hselect(random_predicate(rng, &schema(), &values, 1))
            .hproject(vec!["a1".into(), "a0".into()]),
        _ => random_hquery(rng, 0),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Snapshot workloads: the memoized engine tracks the plain one
    /// through every modification, on every backend and thread budget.
    /// The pool deliberately includes expressions that always error
    /// (undefined relation, ρ̂ of a snapshot-kind relation) — errors
    /// must never be cached into phantom successes.
    #[test]
    fn memo_matches_plain_on_snapshot_workloads(
        seed in any::<u64>(),
        len in 4usize..18,
        q_seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cmds = random_commands(&mut rng, &schema(), &gen_cfg(), len);
        let mut qrng = StdRng::seed_from_u64(q_seed);
        let mut queries = vec![
            Expr::current("r0"),
            Expr::current("r0").union(Expr::current("r1")),
            Expr::current("r0").difference(Expr::current("r1")),
            Expr::current("r0").product(Expr::current("r1").project(vec!["a0".into()])),
            Expr::current("ghost"),
            Expr::hcurrent("r0"),
        ];
        for _ in 0..3 {
            let depth = qrng.gen_range(1..4);
            queries.push(random_query(&mut qrng, depth));
        }
        for backend in BackendKind::ALL {
            for threads in THREADS {
                let (memo, _) = drive(&cmds, &queries, backend, threads);
                // The fixed pool repeats every step: the memo must have
                // actually answered from cache, not silently fallen
                // through to the plain path each time.
                prop_assert!(
                    memo.memo_stats().hits > 0,
                    "{}, {} threads: memo never hit",
                    backend,
                    threads
                );
            }
        }
    }

    /// Temporal workloads: the ĥ operators' delta rules (element union
    /// and difference, candidate-image re-projection, ×̂ and δ
    /// fallback) track from-scratch evaluation exactly.
    #[test]
    fn memo_matches_plain_on_temporal_workloads(
        seed in any::<u64>(),
        len in 2usize..10,
        q_seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let hcfg = HistGenConfig {
            values: GenConfig { arity: 2, cardinality: 8, int_range: 10, str_pool: 4 },
            horizon: 40,
            max_periods: 2,
        };
        let mut cmds = vec![
            Command::define_relation("t0", RelationType::Temporal),
            Command::define_relation("h0", RelationType::Historical),
        ];
        for _ in 0..len {
            let target = if rng.gen_bool(0.7) { "t0" } else { "h0" };
            cmds.push(Command::modify_state(
                target,
                Expr::historical_const(random_historical_state(&mut rng, &schema(), &hcfg)),
            ));
        }
        let mut qrng = StdRng::seed_from_u64(q_seed);
        let mut queries = vec![
            Expr::hcurrent("t0"),
            Expr::hcurrent("t0").hunion(Expr::hcurrent("h0")),
            Expr::hcurrent("t0").hdifference(Expr::hcurrent("h0")),
            Expr::current("t0"), // ρ of a temporal relation: always an error
        ];
        for _ in 0..3 {
            let depth = qrng.gen_range(1..4);
            queries.push(random_hquery(&mut qrng, depth));
        }
        for backend in BackendKind::ALL {
            for threads in THREADS {
                drive(&cmds, &queries, backend, threads);
            }
        }
    }

    /// Churn workloads: deletions, re-definitions, and scheme evolution
    /// interleaved with modifications. Registered views over the
    /// affected relation must be purged — never answered from a state
    /// belonging to the relation's previous life or previous scheme.
    #[test]
    fn memo_matches_plain_under_churn(
        seed in any::<u64>(),
        len in 4usize..14,
        q_seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut cmds = random_commands(&mut rng, &schema(), &gen_cfg(), len);
        let defines = gen_cfg().relations.len();
        let spice: Vec<Command> = vec![
            Command::evolve_scheme(
                "r0",
                SchemeChange::AddAttribute {
                    name: "extra".into(),
                    domain: DomainType::Bool,
                    default: Value::Bool(false),
                },
            ),
            Command::delete_relation("r1"),
            Command::define_relation("r1", RelationType::Rollback),
            Command::modify_state("ghost", Expr::current("ghost")), // always fails
        ];
        for s in spice {
            let pos = rng.gen_range(defines..=cmds.len());
            cmds.insert(pos, s);
        }
        let mut qrng = StdRng::seed_from_u64(q_seed);
        let mut queries = vec![
            Expr::current("r0").project(vec!["a0".into()]),
            Expr::current("r1"),
            Expr::current("r0").union(Expr::current("r1").project(vec!["a0".into()])),
        ];
        for _ in 0..2 {
            queries.push(random_query(&mut qrng, 2));
        }
        for backend in BackendKind::ALL {
            for threads in THREADS {
                drive(&cmds, &queries, backend, threads);
            }
        }
    }
}
