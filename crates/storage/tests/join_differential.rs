//! Differential property tests for the physical join operators: a
//! `join[spec]`/`hjoin[spec]` plan node is observationally identical —
//! values *and* errors — to its defining `σ_spec(×)`/`σ̂_spec(×̂)` form,
//! on every backend, with the view memo on and off, sharded and
//! unsharded, at one and two worker threads, for both physical
//! algorithms. This is the contract that lets the plan search emit join
//! nodes at all: the kernels are faster evaluation orders for claim 1's
//! σ-over-× form, never different answers.

use proptest::prelude::*;
use txtime_snapshot::rng::rngs::StdRng;
use txtime_snapshot::rng::{Rng, SeedableRng};

use txtime_core::generate::{random_commands, CmdGenConfig};
use txtime_core::{Command, Expr, JoinPhysical, JoinSpec, RelationType, StateValue};
use txtime_historical::generate::{random_historical_state, HistGenConfig};
use txtime_snapshot::generate::{random_state, GenConfig};
use txtime_snapshot::{DomainType, Predicate, Schema, Value};
use txtime_storage::{BackendKind, CheckpointPolicy, Engine};

const SHARDS: [usize; 2] = [1, 4];
const MEMO: [bool; 2] = [false, true];
const THREADS: [usize; 2] = [1, 2];
const PHYSICALS: [JoinPhysical; 2] = [JoinPhysical::Hash, JoinPhysical::Merge];

fn schema() -> Schema {
    Schema::new(vec![("a0", DomainType::Int), ("a1", DomainType::Str)]).unwrap()
}

/// A second, attribute-disjoint schema so joins are well-formed.
fn schema_b() -> Schema {
    Schema::new(vec![("b0", DomainType::Int)]).unwrap()
}

fn gen_cfg() -> CmdGenConfig {
    CmdGenConfig {
        values: GenConfig {
            arity: 2,
            cardinality: 10,
            int_range: 8,
            str_pool: 4,
        },
        relations: vec!["r0".into(), "r1".into()],
        churn: 0.4,
    }
}

fn engine(backend: BackendKind, memo: bool, shards: usize, threads: usize) -> Engine {
    let mut e = Engine::new(backend, CheckpointPolicy::every_k(3).unwrap());
    e.set_shards(shards);
    e.set_threads(threads);
    if memo {
        e.set_memo_register_after(1);
    } else {
        e.set_memo_capacity(0);
    }
    e
}

fn spec(keys: &[(&str, &str)], residual: Predicate, physical: JoinPhysical) -> JoinSpec {
    JoinSpec {
        keys: keys
            .iter()
            .map(|&(l, r)| (l.to_string(), r.to_string()))
            .collect(),
        residual,
        physical,
    }
}

/// `(physical plan, defining σ(×) oracle)` pairs over the snapshot
/// relations, including always-erroring shapes (unknown key attribute,
/// clashing schemes, unknown relation) — the kernels replicate the
/// oracle's error discipline, so both sides must fail together.
fn join_pairs() -> Vec<(Expr, Expr)> {
    let mut out = Vec::new();
    for physical in PHYSICALS {
        // a0/b0 are the first schema attribute on both sides, so the
        // merge kernel genuinely rides the canonical runs here.
        let plain = spec(&[("a0", "b0")], Predicate::True, physical);
        let filtered = spec(
            &[("a0", "b0")],
            Predicate::gt_const("a0", Value::Int(2)),
            physical,
        );
        // Off-prefix key (a1 is column 1): merge must fall back to hash.
        let off = spec(&[("a1", "b0")], Predicate::True, physical);
        for s in [plain, filtered, off] {
            out.push((
                Expr::current("r0").join(s.clone(), Expr::current("q0")),
                Expr::current("r0")
                    .product(Expr::current("q0"))
                    .select(s.as_predicate()),
            ));
        }
        // Error shapes, one per kernel error path.
        let bad_attr = spec(&[("zz", "b0")], Predicate::True, physical);
        out.push((
            Expr::current("r0").join(bad_attr.clone(), Expr::current("q0")),
            Expr::current("r0")
                .product(Expr::current("q0"))
                .select(bad_attr.as_predicate()),
        ));
        let clash = spec(&[("a0", "a0")], Predicate::True, physical);
        out.push((
            Expr::current("r0").join(clash.clone(), Expr::current("r1")),
            Expr::current("r0")
                .product(Expr::current("r1"))
                .select(clash.as_predicate()),
        ));
        let ghost = spec(&[("a0", "b0")], Predicate::True, physical);
        out.push((
            Expr::current("ghost").join(ghost.clone(), Expr::current("q0")),
            Expr::current("ghost")
                .product(Expr::current("q0"))
                .select(ghost.as_predicate()),
        ));
    }
    out
}

/// Demands the same observable outcome from the physical plan and its
/// defining form on the same engine: equal states on success, both-error
/// on failure.
fn assert_pairs_agree(e: &Engine, pairs: &[(Expr, Expr)], label: &str) {
    for (join, oracle) in pairs {
        // Two passes so the second exercises the memo hit on memoized
        // engines.
        for pass in 0..2 {
            let want = e.eval(oracle);
            let got = e.eval(join);
            match (&want, &got) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a, b, "{label}, pass {pass}: {join} diverged from {oracle}")
                }
                (Err(_), Err(_)) => {}
                _ => panic!("{label}, pass {pass}: {join}: oracle {want:?} != join {got:?}"),
            }
        }
    }
}

/// Commands for the join operand `q0` over the disjoint schema.
fn q0_commands(rng: &mut StdRng) -> Vec<Command> {
    let values = GenConfig {
        arity: 1,
        cardinality: 8,
        int_range: 8,
        str_pool: 4,
    };
    let mut cmds = vec![Command::define_relation("q0", RelationType::Rollback)];
    for _ in 0..2 {
        cmds.push(Command::modify_state(
            "q0",
            Expr::snapshot_const(random_state(rng, &schema_b(), &values)),
        ));
    }
    cmds
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The full snapshot matrix: 4 backends × memo on/off × 1/4 shards ×
    /// 1/2 threads, random command sequences, and the hash/merge pair
    /// pool checked after every command.
    #[test]
    fn physical_joins_match_their_sigma_product_form(
        seed in any::<u64>(),
        len in 3usize..10,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut cmds = random_commands(&mut rng, &schema(), &gen_cfg(), len);
        cmds.extend(q0_commands(&mut rng));
        let pairs = join_pairs();
        for backend in BackendKind::ALL {
            for memo in MEMO {
                for shards in SHARDS {
                    for threads in THREADS {
                        let label = format!(
                            "{backend}, memo={memo}, {shards} shard(s), {threads} thread(s)"
                        );
                        let mut e = engine(backend, memo, shards, threads);
                        for cmd in &cmds {
                            let _ = e.execute(cmd);
                        }
                        assert_pairs_agree(&e, &pairs, &label);
                    }
                }
            }
        }
    }

    /// Historical joins: value/error identity against σ̂(×̂), plus the
    /// snapshot-reducibility that makes the hatted operator conservative
    /// — a timeslice of the join equals the join of the timeslices.
    #[test]
    fn historical_joins_reduce_to_snapshot_joins(
        seed in any::<u64>(),
        len in 2usize..6,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let hcfg = HistGenConfig {
            values: GenConfig { arity: 2, cardinality: 8, int_range: 8, str_pool: 4 },
            horizon: 30,
            max_periods: 2,
        };
        let bcfg = HistGenConfig {
            values: GenConfig { arity: 1, cardinality: 6, int_range: 8, str_pool: 4 },
            ..hcfg
        };
        let mut cmds = vec![
            Command::define_relation("t0", RelationType::Temporal),
            Command::define_relation("tb", RelationType::Temporal),
        ];
        for _ in 0..len {
            let (target, sch, cfg) = if rng.gen_bool(0.5) {
                ("tb", schema_b(), &bcfg)
            } else {
                ("t0", schema(), &hcfg)
            };
            cmds.push(Command::modify_state(
                target,
                Expr::historical_const(random_historical_state(&mut rng, &sch, cfg)),
            ));
        }
        let mut pairs = Vec::new();
        for physical in PHYSICALS {
            let s = spec(&[("a0", "b0")], Predicate::True, physical);
            pairs.push((
                Expr::hcurrent("t0").hjoin(s.clone(), Expr::hcurrent("tb")),
                Expr::hcurrent("t0")
                    .hproduct(Expr::hcurrent("tb"))
                    .hselect(s.as_predicate()),
            ));
            // Wrong kind: a snapshot operand under hjoin must error like
            // the σ̂(×̂) form does.
            pairs.push((
                Expr::hcurrent("t0").hjoin(s.clone(), Expr::current("tb")),
                Expr::hcurrent("t0")
                    .hproduct(Expr::current("tb"))
                    .hselect(s.as_predicate()),
            ));
        }
        let slice_spec = spec(&[("a0", "b0")], Predicate::True, JoinPhysical::Hash);
        let hjoin = Expr::hcurrent("t0").hjoin(slice_spec.clone(), Expr::hcurrent("tb"));
        for backend in BackendKind::ALL {
            for shards in SHARDS {
                for threads in THREADS {
                    let label = format!("{backend}, {shards} shard(s), {threads} thread(s)");
                    let mut e = engine(backend, true, shards, threads);
                    for cmd in &cmds {
                        let _ = e.execute(cmd);
                    }
                    assert_pairs_agree(&e, &pairs, &label);
                    // Snapshot reducibility on the evaluated states.
                    let (Ok(StateValue::Historical(j)),
                         Ok(StateValue::Historical(a)),
                         Ok(StateValue::Historical(b))) = (
                        e.eval(&hjoin),
                        e.eval(&Expr::hcurrent("t0")),
                        e.eval(&Expr::hcurrent("tb")),
                    ) else {
                        continue; // both temporal relations still empty
                    };
                    for c in (0..33u32).step_by(4) {
                        prop_assert_eq!(
                            j.timeslice(c),
                            a.timeslice(c)
                                .equi_join(&b.timeslice(c), &slice_spec)
                                .unwrap(),
                            "{}: chronon {}",
                            label,
                            c
                        );
                    }
                }
            }
        }
    }

    /// End-to-end through the planner: a σ with an equi-key conjunct over
    /// × at optimize level 2 (which lowers to a physical join) answers
    /// exactly like the level-0 engine evaluating the query as written.
    #[test]
    fn searched_joins_match_unoptimized_eval(
        seed in any::<u64>(),
        len in 3usize..10,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut cmds = random_commands(&mut rng, &schema(), &gen_cfg(), len);
        cmds.extend(q0_commands(&mut rng));
        let queries = vec![
            // Pure equi-key: lowers to a merge-eligible join.
            Expr::current("r0")
                .product(Expr::current("q0"))
                .select(Predicate::eq_attrs("a0", "b0")),
            // Equi-key plus side conjunct plus residual-free shape.
            Expr::current("r0")
                .product(Expr::current("q0"))
                .select(
                    Predicate::eq_attrs("a0", "b0")
                        .and(Predicate::gt_const("a0", Value::Int(1))),
                ),
            // Erroring shape: the lowered join must keep the error.
            Expr::current("r0")
                .product(Expr::current("r1"))
                .select(Predicate::eq_attrs("a0", "a1")),
        ];
        for backend in BackendKind::ALL {
            for threads in THREADS {
                let label = format!("{backend}, {threads} thread(s), level 2 vs 0");
                let mut opt = engine(backend, true, 1, threads);
                opt.set_optimize(2);
                let mut base = engine(backend, true, 1, threads);
                base.set_optimize(0);
                for cmd in &cmds {
                    let a = opt.execute(cmd);
                    let b = base.execute(cmd);
                    assert_eq!(a.is_ok(), b.is_ok(), "{label}: command outcome diverged");
                    for q in &queries {
                        let want = base.eval(q);
                        let got = opt.eval(q);
                        match (&want, &got) {
                            (Ok(a), Ok(b)) => assert_eq!(a, b, "{label}: {q} diverged"),
                            (Err(_), Err(_)) => {}
                            _ => panic!("{label}: {q}: base {want:?} != opt {got:?}"),
                        }
                    }
                }
            }
        }
    }
}

/// Join evaluation feeds the pool's join gauges: after an equi-join
/// evaluates (at any thread count), `joins`, `build_rows`, and
/// `probe_rows` reflect the kernel that ran.
#[test]
fn join_counters_record_build_and_probe_sides() {
    let mut rng = StdRng::seed_from_u64(0xD1FF);
    let mut e = engine(BackendKind::FullCopy, false, 1, 1);
    e.execute(&Command::define_relation("r0", RelationType::Rollback))
        .unwrap();
    e.execute(&Command::modify_state(
        "r0",
        Expr::snapshot_const(random_state(&mut rng, &schema(), &gen_cfg().values)),
    ))
    .unwrap();
    for cmd in q0_commands(&mut rng) {
        e.execute(&cmd).unwrap();
    }
    let s = spec(&[("a0", "b0")], Predicate::True, JoinPhysical::Hash);
    let q = Expr::current("r0").join(s, Expr::current("q0"));
    e.eval(&q).unwrap();
    let stats = e.join_stats();
    assert_eq!(stats.joins, 1, "{stats:?}");
    assert!(stats.probe_rows > 0, "{stats:?}");
    assert!(stats.partitions >= 1, "{stats:?}");
    e.reset_exec_stats();
    assert_eq!(e.join_stats().joins, 0);
}
