//! Parallel execution is invisible: `Engine::eval` on a multi-thread
//! worker pool returns byte-identical results — values *and* errors — to
//! the one-thread (exact sequential) pool, on every backend, on random
//! workloads and queries. This is the property that licenses the
//! partitioned kernels and concurrent-subtree scheduling at all.

use proptest::prelude::*;
use txtime_snapshot::rng::rngs::StdRng;
use txtime_snapshot::rng::{Rng, SeedableRng};

use txtime_core::generate::{random_commands, CmdGenConfig};
use txtime_core::{Command, Expr, RelationType, TransactionNumber, TxSpec};
use txtime_historical::generate::{random_historical_state, HistGenConfig};
use txtime_snapshot::generate::{random_predicate, GenConfig};
use txtime_snapshot::{DomainType, Schema};
use txtime_storage::{BackendKind, CheckpointPolicy, Engine};

/// The thread budgets compared against each other. 1 is the sequential
/// oracle; 2 and 8 cover "one extra worker" and "more workers than work".
const THREADS: [usize; 3] = [1, 2, 8];

fn schema() -> Schema {
    Schema::new(vec![("a0", DomainType::Int), ("a1", DomainType::Str)]).unwrap()
}

fn gen_cfg() -> CmdGenConfig {
    CmdGenConfig {
        values: GenConfig {
            arity: 2,
            cardinality: 10,
            int_range: 12,
            str_pool: 4,
        },
        relations: vec!["r0".into(), "r1".into()],
        churn: 0.4,
    }
}

/// Engines at every thread budget, fed the same command sequence.
fn engines(backend: BackendKind, cmds: &[Command], tiny_cache: bool) -> Vec<Engine> {
    THREADS
        .iter()
        .map(|&n| {
            let mut e = Engine::new(backend, CheckpointPolicy::every_k(3).unwrap());
            e.set_threads(n);
            if tiny_cache {
                e.set_cache_capacity(1);
            }
            for c in cmds {
                let _ = e.execute(c);
            }
            e
        })
        .collect()
}

/// Asserts every engine answers `q` identically to the first (sequential)
/// one. Errors must agree in rendered form, not merely in presence.
fn assert_all_agree(engines: &[Engine], q: &Expr, backend: BackendKind) {
    let want = engines[0].eval(q);
    for (e, &threads) in engines.iter().zip(&THREADS).skip(1) {
        let got = e.eval(q);
        match (&want, &got) {
            (Ok(a), Ok(b)) => assert_eq!(
                a, b,
                "{backend}, {threads} threads: {q} diverged from sequential"
            ),
            (Err(a), Err(b)) => assert_eq!(
                format!("{a:?}"),
                format!("{b:?}"),
                "{backend}, {threads} threads: {q} error diverged"
            ),
            _ => {
                panic!("{backend}, {threads} threads: {q}: sequential {want:?} != parallel {got:?}")
            }
        }
    }
}

/// Snapshot-algebra queries, including the σ/π-over-ρ pushdown shapes
/// (which route through `resolve_rollback_filtered` on every path).
fn random_query(rng: &mut StdRng, depth: usize) -> Expr {
    if depth == 0 {
        let r = ["r0", "r1"][rng.gen_range(0..2usize)];
        return if rng.gen_bool(0.4) {
            Expr::rollback(r, TxSpec::At(TransactionNumber(rng.gen_range(0..30))))
        } else {
            Expr::current(r)
        };
    }
    let values = gen_cfg().values;
    match rng.gen_range(0..6) {
        0 => random_query(rng, depth - 1).union(random_query(rng, depth - 1)),
        1 => random_query(rng, depth - 1).difference(random_query(rng, depth - 1)),
        2 => random_query(rng, depth - 1).select(random_predicate(rng, &schema(), &values, 2)),
        3 => random_query(rng, depth - 1).project(vec!["a0".into()]),
        4 => random_query(rng, depth - 1)
            .select(random_predicate(rng, &schema(), &values, 1))
            .project(vec!["a1".into(), "a0".into()]),
        _ => random_query(rng, 0),
    }
}

/// Historical-algebra queries over t0/h0, including the σ̂/π̂-over-ρ̂
/// pushdown shapes and ×̂ against a disjoint-attribute leaf.
fn random_hquery(rng: &mut StdRng, depth: usize) -> Expr {
    if depth == 0 {
        let r = ["t0", "h0"][rng.gen_range(0..2usize)];
        return if rng.gen_bool(0.4) {
            Expr::hrollback(r, TxSpec::At(TransactionNumber(rng.gen_range(0..30))))
        } else {
            Expr::hcurrent(r)
        };
    }
    let values = gen_cfg().values;
    match rng.gen_range(0..6) {
        0 => random_hquery(rng, depth - 1).hunion(random_hquery(rng, depth - 1)),
        1 => random_hquery(rng, depth - 1).hdifference(random_hquery(rng, depth - 1)),
        2 => random_hquery(rng, depth - 1).hselect(random_predicate(rng, &schema(), &values, 2)),
        3 => random_hquery(rng, depth - 1).hproject(vec!["a0".into()]),
        4 => random_hquery(rng, depth - 1)
            .hselect(random_predicate(rng, &schema(), &values, 1))
            .hproject(vec!["a1".into(), "a0".into()]),
        _ => random_hquery(rng, 0),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Snapshot workloads: 1-, 2-, and 8-thread engines agree on every
    /// backend, with and without a capacity-1 (evict-always) cache.
    #[test]
    fn parallel_eval_matches_sequential(
        seed in any::<u64>(),
        len in 4usize..25,
        q_seed in any::<u64>(),
        tiny_cache in any::<bool>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cmds = random_commands(&mut rng, &schema(), &gen_cfg(), len);
        for backend in BackendKind::ALL {
            let engines = engines(backend, &cmds, tiny_cache);
            let mut qrng = StdRng::seed_from_u64(q_seed);
            for _ in 0..8 {
                let depth = qrng.gen_range(0..4);
                let q = random_query(&mut qrng, depth);
                assert_all_agree(&engines, &q, backend);
            }
        }
    }

    /// Temporal workloads: the ĥ operators agree across thread budgets
    /// on every backend.
    #[test]
    fn parallel_heval_matches_sequential(
        seed in any::<u64>(),
        len in 2usize..12,
        q_seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let hcfg = HistGenConfig {
            values: GenConfig { arity: 2, cardinality: 8, int_range: 10, str_pool: 4 },
            horizon: 40,
            max_periods: 2,
        };
        let mut cmds = vec![
            Command::define_relation("t0", RelationType::Temporal),
            Command::define_relation("h0", RelationType::Historical),
        ];
        for _ in 0..len {
            let target = if rng.gen_bool(0.7) { "t0" } else { "h0" };
            cmds.push(Command::modify_state(
                target,
                Expr::historical_const(random_historical_state(&mut rng, &schema(), &hcfg)),
            ));
        }
        for backend in BackendKind::ALL {
            let engines = engines(backend, &cmds, false);
            let mut qrng = StdRng::seed_from_u64(q_seed);
            for _ in 0..6 {
                let depth = qrng.gen_range(0..4);
                let q = random_hquery(&mut qrng, depth);
                assert_all_agree(&engines, &q, backend);
            }
            // ×̂ needs disjoint attribute names: pair each leaf with a
            // small constant relation on c0/c1.
            let other_schema =
                Schema::new(vec![("c0", DomainType::Int), ("c1", DomainType::Str)]).unwrap();
            let small = random_historical_state(
                &mut qrng,
                &other_schema,
                &HistGenConfig {
                    values: GenConfig { arity: 2, cardinality: 4, int_range: 6, str_pool: 3 },
                    horizon: 40,
                    max_periods: 2,
                },
            );
            let q = Expr::hcurrent("t0").hproduct(Expr::historical_const(small));
            assert_all_agree(&engines, &q, backend);
        }
    }

    /// `resolve_many` answers each probe exactly as per-probe `eval` of
    /// the matching ρ/ρ̂ would — same states, same errors — on every
    /// backend and thread budget, with batches mixing relations, current
    /// and past specs, repeats, and an undefined relation.
    #[test]
    fn resolve_many_matches_repeated_eval(
        seed in any::<u64>(),
        len in 4usize..25,
        p_seed in any::<u64>(),
        tiny_cache in any::<bool>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cmds = random_commands(&mut rng, &schema(), &gen_cfg(), len);
        let mut prng = StdRng::seed_from_u64(p_seed);
        let names = ["r0", "r1", "ghost"];
        let probes: Vec<(&str, TxSpec)> = (0..24)
            .map(|_| {
                let name = names[prng.gen_range(0..names.len())];
                let spec = if prng.gen_bool(0.25) {
                    TxSpec::Current
                } else {
                    TxSpec::At(TransactionNumber(prng.gen_range(0..30)))
                };
                (name, spec)
            })
            .collect();
        for backend in BackendKind::ALL {
            for engine in engines(backend, &cmds, tiny_cache) {
                let batched = engine.resolve_many(&probes);
                prop_assert_eq!(batched.len(), probes.len());
                for ((name, spec), got) in probes.iter().zip(&batched) {
                    let historical = engine
                        .relation_type(name)
                        .is_some_and(|t| t.holds_historical());
                    let q = if historical {
                        Expr::hrollback(*name, *spec)
                    } else {
                        Expr::rollback(*name, *spec)
                    };
                    let want = engine.eval(&q);
                    match (&want, got) {
                        (Ok(a), Ok(b)) => prop_assert_eq!(
                            a, b, "{}: batched ρ({}, {:?}) diverged", backend, name, spec
                        ),
                        (Err(a), Err(b)) => prop_assert_eq!(
                            format!("{a:?}"),
                            format!("{b:?}"),
                            "{}: batched ρ({}, {:?}) error diverged", backend, name, spec
                        ),
                        _ => prop_assert!(
                            false,
                            "{}: ρ({}, {:?}): eval {:?} != resolve_many {:?}",
                            backend, name, spec, want, got
                        ),
                    }
                }
            }
        }
    }
}
