//! Differential property tests for the sorted-run delta replay: the
//! merge-based `StateDelta::apply_in_place` agrees byte-for-byte with the
//! per-element `BTreeSet`/`BTreeMap` reference replay, and every rollback
//! backend reconstructs byte-identical versions of the same random chain
//! — including kind changes (snapshot ↔ historical), scheme changes
//! (forced `Reschema` boundaries), and empty states.

use proptest::prelude::*;

use txtime_core::{StateValue, TransactionNumber};
use txtime_historical::generate::{random_historical_state, HistGenConfig};
use txtime_historical::reference::RefHistorical;
use txtime_snapshot::generate::{random_state, GenConfig};
use txtime_snapshot::reference::RefSnapshot;
use txtime_snapshot::rng::rngs::StdRng;
use txtime_snapshot::rng::{Rng, SeedableRng};
use txtime_snapshot::{DomainType, Schema};
use txtime_storage::{BackendKind, CheckpointPolicy, StateDelta};

fn schema_a() -> Schema {
    Schema::new(vec![("a0", DomainType::Int), ("a1", DomainType::Str)]).unwrap()
}

fn schema_b() -> Schema {
    Schema::new(vec![("b0", DomainType::Str)]).unwrap()
}

/// A random chain of states mixing snapshot and historical kinds, two
/// schemes (so kind/scheme changes produce `Reschema` deltas), and empty
/// states (cardinality 0).
fn random_chain(seed: u64, len: usize) -> Vec<StateValue> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len)
        .map(|_| {
            let schema = if rng.gen_bool(0.15) {
                schema_b()
            } else {
                schema_a()
            };
            let cardinality = if rng.gen_bool(0.1) {
                0
            } else {
                rng.gen_range(1..20)
            };
            let values = GenConfig {
                arity: schema.arity(),
                cardinality,
                int_range: 10,
                str_pool: 5,
            };
            if rng.gen_bool(0.4) {
                let cfg = HistGenConfig {
                    values,
                    horizon: 40,
                    max_periods: 2,
                };
                StateValue::Historical(random_historical_state(&mut rng, &schema, &cfg))
            } else {
                StateValue::Snapshot(random_state(&mut rng, &schema, &values))
            }
        })
        .collect()
}

/// The reference replay: the same delta applied with the per-element
/// tree algorithms (`RefSnapshot`/`RefHistorical::apply_delta`).
fn apply_reference(delta: &StateDelta, base: &StateValue) -> StateValue {
    match (delta, base) {
        (StateDelta::Snapshot { added, removed }, StateValue::Snapshot(s)) => {
            let mut r = RefSnapshot::from_state(s);
            r.apply_delta(removed, added).unwrap();
            StateValue::Snapshot(r.to_state())
        }
        (StateDelta::Historical { upserted, removed }, StateValue::Historical(h)) => {
            let mut r = RefHistorical::from_state(h);
            r.apply_delta(removed, upserted).unwrap();
            StateValue::Historical(r.to_state())
        }
        (StateDelta::Reschema(s), _) => (**s).clone(),
        _ => panic!("delta kind does not match base state kind"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn apply_in_place_matches_reference_replay(seed in any::<u64>(), len in 2usize..12) {
        let chain = random_chain(seed, len);
        let mut working = chain[0].clone();
        for w in chain.windows(2) {
            let delta = StateDelta::between(&w[0], &w[1]);
            let expected = apply_reference(&delta, &working);
            delta.apply_in_place(&mut working);
            // Merge replay ≡ per-element tree replay ≡ the target state.
            prop_assert_eq!(&working, &expected);
            prop_assert_eq!(&working, &w[1]);
        }
    }

    #[test]
    fn all_backends_reconstruct_identical_versions(seed in any::<u64>(), len in 1usize..10) {
        let chain = random_chain(seed, len);
        let policy = CheckpointPolicy::every_k(3).unwrap();
        let mut stores: Vec<_> = BackendKind::ALL
            .iter()
            .map(|&k| (format!("{k:?}"), k.new_store(policy)))
            .collect();
        for (i, state) in chain.iter().enumerate() {
            // Sparse transaction numbers: probes between versions must
            // floor to the version at-or-below, identically everywhere.
            let tx = TransactionNumber(2 * i as u64 + 1);
            for (_, store) in &mut stores {
                store.append(state, tx);
            }
        }
        let probes: Vec<TransactionNumber> = (0..=2 * len as u64 + 1).map(TransactionNumber).collect();
        let (first_name, first) = &stores[0];
        let baseline: Vec<_> = probes.iter().map(|&tx| first.state_at(tx)).collect();
        let baseline_many = first.state_at_many(&probes);
        prop_assert_eq!(&baseline, &baseline_many, "{} state_at_many", first_name);
        for (name, store) in &stores[1..] {
            let got: Vec<_> = probes.iter().map(|&tx| store.state_at(tx)).collect();
            prop_assert_eq!(&baseline, &got, "{} state_at", name);
            let got_many = store.state_at_many(&probes);
            prop_assert_eq!(&baseline, &got_many, "{} state_at_many", name);
            prop_assert_eq!(first.current(), store.current(), "{} current", name);
        }
    }
}
