//! Differential property tests for the cost-based plan search: an
//! engine at optimize level 2 (memoized plan search over the `ExprId`
//! DAG) is observationally identical — values *and* errors — to an
//! engine that evaluates expressions as written (level 0) or with the
//! pushdown pass only (level 1), on every backend, with the view memo
//! on and off, sharded and unsharded. This is the property that
//! licenses rewriting in `Engine::eval` at all: every enumeration rule
//! in `txtime_optimizer::search` carries a guard precisely so this
//! suite can demand error identity, not just value identity.

use proptest::prelude::*;
use txtime_snapshot::rng::rngs::StdRng;
use txtime_snapshot::rng::{Rng, SeedableRng};

use txtime_core::generate::{random_commands, CmdGenConfig};
use txtime_core::{Command, Expr, RelationType, TransactionNumber, TxSpec};
use txtime_historical::generate::{random_historical_state, HistGenConfig};
use txtime_historical::{TemporalExpr, TemporalPred};
use txtime_snapshot::generate::{random_predicate, random_state, GenConfig};
use txtime_snapshot::{DomainType, Predicate, Schema, Value};
use txtime_storage::{BackendKind, CheckpointPolicy, Engine};

const SHARDS: [usize; 2] = [1, 4];
const MEMO: [bool; 2] = [false, true];

fn schema() -> Schema {
    Schema::new(vec![("a0", DomainType::Int), ("a1", DomainType::Str)]).unwrap()
}

/// A second, attribute-disjoint schema so products are well-formed.
fn schema_b() -> Schema {
    Schema::new(vec![("b0", DomainType::Int)]).unwrap()
}

fn gen_cfg() -> CmdGenConfig {
    CmdGenConfig {
        values: GenConfig {
            arity: 2,
            cardinality: 10,
            int_range: 12,
            str_pool: 4,
        },
        relations: vec!["r0".into(), "r1".into()],
        churn: 0.4,
    }
}

fn engine(backend: BackendKind, level: u8, memo: bool, shards: usize) -> Engine {
    let mut e = Engine::new(backend, CheckpointPolicy::every_k(3).unwrap());
    e.set_shards(shards);
    e.set_optimize(level);
    if memo {
        e.set_memo_register_after(1);
    } else {
        e.set_memo_capacity(0);
    }
    e
}

/// Demands the same observable outcome from both engines: equal states
/// on success, both-error on failure (the engine's error-identity
/// convention — payloads may differ in detail between plans, but an
/// erroring query must never be optimized into a succeeding one, nor
/// the reverse).
fn assert_agree(opt: &Engine, base: &Engine, q: &Expr, label: &str, passes: usize) {
    for pass in 0..passes {
        let want = base.eval(q);
        let got = opt.eval(q);
        match (&want, &got) {
            (Ok(a), Ok(b)) => assert_eq!(a, b, "{label}, pass {pass}: {q} diverged"),
            (Err(_), Err(_)) => {}
            _ => panic!("{label}, pass {pass}: {q}: base {want:?} != optimized {got:?}"),
        }
    }
}

/// Runs the command sequence on both engines in lockstep, sweeping the
/// query pool after every command. Memoized engines evaluate each query
/// twice so the second pass exercises the canonical-plan memo hit.
fn drive(cmds: &[Command], queries: &[Expr], opt: &mut Engine, base: &mut Engine, label: &str) {
    let passes = 2;
    for cmd in cmds {
        let a = opt.execute(cmd);
        let b = base.execute(cmd);
        match (&a, &b) {
            (Ok(_), Ok(_)) => {}
            (Err(x), Err(y)) => assert_eq!(
                format!("{x:?}"),
                format!("{y:?}"),
                "{label}: command error diverged"
            ),
            _ => panic!("{label}: command outcome diverged: {a:?} vs {b:?}"),
        }
        for q in queries {
            assert_agree(opt, base, q, label, passes);
        }
    }
}

/// Snapshot queries biased toward the shapes the searcher rewrites:
/// σ-over-product chains, σ-over-∪/−, π/σ stacks — plus plain leaves.
fn random_query(rng: &mut StdRng, depth: usize) -> Expr {
    if depth == 0 {
        let r = ["r0", "r1", "q0"][rng.gen_range(0..3usize)];
        return if rng.gen_bool(0.4) {
            Expr::rollback(r, TxSpec::At(TransactionNumber(rng.gen_range(0..30))))
        } else {
            Expr::current(r)
        };
    }
    let values = gen_cfg().values;
    match rng.gen_range(0..8) {
        0 => random_query(rng, depth - 1).union(random_query(rng, depth - 1)),
        1 => random_query(rng, depth - 1).difference(random_query(rng, depth - 1)),
        2 => random_query(rng, depth - 1).select(random_predicate(rng, &schema(), &values, 2)),
        3 => random_query(rng, depth - 1).project(vec!["a0".into()]),
        4 => random_query(rng, depth - 1)
            .select(random_predicate(rng, &schema(), &values, 1))
            .project(vec!["a1".into(), "a0".into()]),
        // The headline shape: a filter over a cross product, with
        // conjuncts the searcher can split across the operands.
        5 | 6 => {
            let left = if rng.gen_bool(0.5) {
                Expr::current("r0")
            } else {
                Expr::current("r1")
            };
            let p = Predicate::gt_const("a0", Value::Int(rng.gen_range(-2..12)))
                .and(Predicate::lt_const("b0", Value::Int(rng.gen_range(-2..12))));
            left.product(Expr::current("q0")).select(p)
        }
        _ => random_query(rng, 0),
    }
}

/// Expressions that must error identically under every plan — wrong
/// kinds, unknown relations and attributes, overlapping product
/// schemes. The searcher's guards exist so these stay errors.
fn error_pool() -> Vec<Expr> {
    vec![
        Expr::current("ghost"),
        Expr::hcurrent("r0"),
        Expr::Select(Predicate::True, Box::new(Expr::hcurrent("r0"))),
        Expr::current("r0").select(Predicate::gt_const("zz", Value::Int(0))),
        Expr::current("r0").project(vec!["zz".into()]),
        // Overlapping schemes: r0 × r1 shares a0/a1.
        Expr::current("r0").product(Expr::current("r1")),
        Expr::current("r0")
            .product(Expr::current("r1"))
            .select(Predicate::gt_const("a0", Value::Int(3))),
        Expr::current("ghost")
            .product(Expr::current("q0"))
            .select(Predicate::gt_const("a0", Value::Int(0))),
        Expr::Delta(
            TemporalPred::True,
            TemporalExpr::ValidTime,
            Box::new(Expr::current("r0")),
        ),
    ]
}

/// Shapes that exercise each guarded rewrite on the success path.
fn guard_pool() -> Vec<Expr> {
    let selective = Predicate::gt_const("a0", Value::Int(4))
        .and(Predicate::lt_const("b0", Value::Int(6)))
        .and(Predicate::eq_attrs("a0", "b0"));
    vec![
        // Product chain with a splittable conjunction on top.
        Expr::current("r0")
            .product(Expr::current("q0"))
            .select(selective),
        // σ below π (attrs(F) ⊆ X) and π cascade / identity shapes.
        Expr::current("r0")
            .project(vec!["a0".into(), "a1".into()])
            .select(Predicate::gt_const("a0", Value::Int(2))),
        Expr::current("r0")
            .project(vec!["a1".into(), "a0".into()])
            .project(vec!["a0".into()]),
        Expr::current("r0").project(vec!["a0".into(), "a1".into()]),
        Expr::current("r0").select(Predicate::True),
        // σ over ∪/− with a fused inner σ.
        Expr::current("r0")
            .union(Expr::current("r1"))
            .select(Predicate::gt_const("a0", Value::Int(1)))
            .select(Predicate::lt_const("a0", Value::Int(9))),
        Expr::current("r0")
            .difference(Expr::current("r1"))
            .select(Predicate::gt_const("a0", Value::Int(0))),
    ]
}

/// Commands for the product operand `q0` over the disjoint schema.
fn q0_commands(rng: &mut StdRng) -> Vec<Command> {
    let values = GenConfig {
        arity: 1,
        cardinality: 8,
        int_range: 12,
        str_pool: 4,
    };
    let mut cmds = vec![Command::define_relation("q0", RelationType::Rollback)];
    for _ in 0..2 {
        cmds.push(Command::modify_state(
            "q0",
            Expr::snapshot_const(random_state(rng, &schema_b(), &values)),
        ));
    }
    cmds
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Level 2 vs level 0 (no rewriting at all): the full matrix —
    /// 4 backends × memo on/off × 1/4 shards — with random command
    /// sequences and a query pool of random, guard-targeting, and
    /// always-erroring shapes.
    #[test]
    fn search_matches_unoptimized_eval(
        seed in any::<u64>(),
        len in 4usize..14,
        q_seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut cmds = random_commands(&mut rng, &schema(), &gen_cfg(), len);
        cmds.extend(q0_commands(&mut rng));
        let mut qrng = StdRng::seed_from_u64(q_seed);
        let mut queries = guard_pool();
        queries.extend(error_pool());
        for _ in 0..3 {
            let depth = qrng.gen_range(1..4);
            queries.push(random_query(&mut qrng, depth));
        }
        for backend in BackendKind::ALL {
            for memo in MEMO {
                for shards in SHARDS {
                    let label = format!("{backend}, memo={memo}, {shards} shard(s)");
                    let mut opt = engine(backend, 2, memo, shards);
                    let mut base = engine(backend, 0, memo, shards);
                    drive(&cmds, &queries, &mut opt, &mut base, &label);
                    prop_assert!(
                        opt.optimizer_stats().searches > 0,
                        "{}: the search never ran",
                        label
                    );
                }
            }
        }
    }

    /// Level 2 vs level 1 (the pushdown default) on temporal workloads:
    /// the hatted rewrites (σ̂ fusion and distribution, π̂ cascade, ×̂
    /// rotation, δ-identity) against the pre-search engine behavior.
    #[test]
    fn search_matches_pushdown_on_temporal_workloads(
        seed in any::<u64>(),
        len in 2usize..8,
        q_seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let hcfg = HistGenConfig {
            values: GenConfig { arity: 2, cardinality: 8, int_range: 10, str_pool: 4 },
            horizon: 40,
            max_periods: 2,
        };
        let bcfg = HistGenConfig {
            values: GenConfig { arity: 1, cardinality: 6, int_range: 10, str_pool: 4 },
            horizon: 40,
            max_periods: 2,
        };
        let mut cmds = vec![
            Command::define_relation("t0", RelationType::Temporal),
            Command::define_relation("h0", RelationType::Historical),
            Command::define_relation("tb", RelationType::Temporal),
        ];
        for _ in 0..len {
            let (target, sch, cfg) = if rng.gen_bool(0.4) {
                ("tb", schema_b(), &bcfg)
            } else if rng.gen_bool(0.5) {
                ("t0", schema(), &hcfg)
            } else {
                ("h0", schema(), &hcfg)
            };
            cmds.push(Command::modify_state(
                target,
                Expr::historical_const(random_historical_state(&mut rng, &sch, cfg)),
            ));
        }
        let mut qrng = StdRng::seed_from_u64(q_seed);
        let hp = Predicate::gt_const("a0", Value::Int(2))
            .and(Predicate::lt_const("b0", Value::Int(7)));
        let mut queries = vec![
            Expr::hcurrent("t0").hselect(Predicate::True),
            Expr::hcurrent("t0")
                .hproduct(Expr::hcurrent("tb"))
                .hselect(hp.clone()),
            Expr::hcurrent("t0")
                .hunion(Expr::hcurrent("h0"))
                .hselect(Predicate::gt_const("a0", Value::Int(0))),
            Expr::hcurrent("t0")
                .hproject(vec!["a0".into(), "a1".into()]),
            Expr::hcurrent("t0")
                .hproject(vec!["a1".into(), "a0".into()])
                .hproject(vec!["a0".into()]),
            Expr::hcurrent("t0").delta(TemporalPred::True, TemporalExpr::ValidTime),
            // ×̂ chain: association order is the searcher's to choose.
            Expr::hcurrent("t0")
                .hproduct(Expr::hcurrent("tb"))
                .hselect(hp)
                .hdifference(Expr::hcurrent("t0").hproduct(Expr::hcurrent("tb"))),
            // Error shapes: wrong kind, unknown relation.
            Expr::current("t0"),
            Expr::hcurrent("nope").hselect(Predicate::True),
            Expr::hcurrent("t0").hproduct(Expr::hcurrent("h0")), // overlapping schemes
        ];
        for _ in 0..2 {
            let depth = qrng.gen_range(1..3);
            queries.push(random_query(&mut qrng, depth)); // snapshot noise on a temporal db
        }
        for backend in BackendKind::ALL {
            for shards in SHARDS {
                let label = format!("{backend}, {shards} shard(s), vs pushdown");
                let mut opt = engine(backend, 2, true, shards);
                let mut base = engine(backend, 1, true, shards);
                drive(&cmds, &queries, &mut opt, &mut base, &label);
            }
        }
    }
}

/// Two source expressions in the same equivalence group canonicalize to
/// the same plan, so the second one is answered by the view memo — the
/// "rewritten plans hit the `ViewRegistry` via canonical `ExprId`s"
/// requirement, stated as a test.
#[test]
fn canonical_plans_share_memoized_views() {
    let mut e = engine(BackendKind::FullCopy, 2, true, 1);
    let mut rng = StdRng::seed_from_u64(0xCAFE);
    let values = gen_cfg().values;
    e.execute(&Command::define_relation("r0", RelationType::Rollback))
        .unwrap();
    e.execute(&Command::modify_state(
        "r0",
        Expr::snapshot_const(random_state(&mut rng, &schema(), &values)),
    ))
    .unwrap();
    for cmd in q0_commands(&mut rng) {
        e.execute(&cmd).unwrap();
    }
    let p_left = Predicate::gt_const("a0", Value::Int(3));
    let p_right = Predicate::lt_const("b0", Value::Int(8));
    // Shape 1: one conjunction over the bare product.
    let fused = Expr::current("r0")
        .product(Expr::current("q0"))
        .select(p_left.clone().and(p_right.clone()));
    // Shape 2: the same query already split across the operands.
    let split = Expr::current("r0")
        .select(p_left)
        .product(Expr::current("q0").select(p_right));
    let a = e.eval(&fused).unwrap();
    let hits_before = e.memo_stats().hits;
    let b = e.eval(&split).unwrap();
    assert_eq!(a, b);
    assert!(
        e.memo_stats().hits > hits_before,
        "the split shape should canonicalize onto the fused shape's cached views: {:?}",
        e.memo_stats()
    );
    let stats = e.optimizer_stats();
    assert_eq!(stats.level, 2);
    assert!(stats.searches >= 2, "{stats:?}");
}

/// The per-generation plan cache answers repeated plans without
/// re-searching, and a mutation invalidates it.
#[test]
fn plan_cache_hits_within_a_generation() {
    let mut e = engine(BackendKind::ForwardDelta, 2, false, 1);
    let mut rng = StdRng::seed_from_u64(7);
    let values = gen_cfg().values;
    e.execute(&Command::define_relation("r0", RelationType::Rollback))
        .unwrap();
    e.execute(&Command::modify_state(
        "r0",
        Expr::snapshot_const(random_state(&mut rng, &schema(), &values)),
    ))
    .unwrap();
    // Mutations above also pass through the planner, so count deltas.
    let before = e.optimizer_stats();
    let q = Expr::current("r0").select(Predicate::gt_const("a0", Value::Int(1)));
    e.eval(&q).unwrap();
    e.eval(&q).unwrap();
    let stats = e.optimizer_stats();
    assert_eq!(stats.searches, before.searches + 1, "{stats:?}");
    assert_eq!(
        stats.plan_cache_hits,
        before.plan_cache_hits + 1,
        "{stats:?}"
    );
    // A mutation bumps the clock: the next eval must re-plan.
    e.execute(&Command::modify_state(
        "r0",
        Expr::snapshot_const(random_state(&mut rng, &schema(), &values)),
    ))
    .unwrap();
    e.eval(&q).unwrap();
    assert!(e.optimizer_stats().searches > stats.searches);
}
