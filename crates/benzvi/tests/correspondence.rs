//! Property test: Time-View(R, tv, tt) = timeslice(ρ̂(R, tt), tv) on
//! random histories.

use proptest::prelude::*;
use txtime_snapshot::rng::rngs::StdRng;
use txtime_snapshot::rng::SeedableRng;

use txtime_benzvi::bridge::load;
use txtime_historical::generate::{random_historical_state, HistGenConfig};
use txtime_historical::HistoricalState;
use txtime_snapshot::generate::GenConfig;
use txtime_snapshot::{DomainType, Schema};

fn schema() -> Schema {
    Schema::new(vec![("a0", DomainType::Int), ("a1", DomainType::Str)]).unwrap()
}

fn random_versions(seed: u64, count: usize) -> Vec<HistoricalState> {
    let mut rng = StdRng::seed_from_u64(seed);
    let cfg = HistGenConfig {
        values: GenConfig {
            arity: 2,
            cardinality: 6,
            int_range: 6,
            str_pool: 3,
        },
        horizon: 20,
        max_periods: 2,
    };
    (0..count)
        .map(|_| random_historical_state(&mut rng, &schema(), &cfg))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn time_view_matches_rho_hat_timeslice(seed in any::<u64>(), count in 1usize..6) {
        let versions = random_versions(seed, count);
        let bridge = load(&versions);
        bridge.check_correspondence(22).map_err(TestCaseError::fail)?;
    }
}
