//! The TRM relation: tuples with effective and registration periods.

use txtime_historical::{Chronon, Period, TemporalElement};
use txtime_snapshot::{Schema, SnapshotState, Tuple};

use txtime_core::TransactionNumber;

/// Registration end for rows that are still current.
const OPEN: u64 = u64::MAX;

/// One TRM row: a value tuple plus its four implicit time attributes.
#[derive(Debug, Clone, PartialEq)]
pub struct TrmTuple {
    /// The value attributes.
    pub values: Tuple,
    /// Effective (valid-time) period \[tes, tee).
    pub effective: Period,
    /// Registration (transaction-time) start — when this row was
    /// recorded.
    pub trs: u64,
    /// Registration end — when this row was logically superseded
    /// (`u64::MAX` while current).
    pub tre: u64,
}

impl TrmTuple {
    /// Whether the row was registered as of transaction `tt`.
    pub fn registered_at(&self, tt: TransactionNumber) -> bool {
        self.trs <= tt.0 && tt.0 < self.tre
    }

    /// Whether the row's fact was effective at valid time `tv`.
    pub fn effective_at(&self, tv: Chronon) -> bool {
        self.effective.contains(tv)
    }
}

/// An append-only TRM relation.
///
/// Rows are never physically removed: logical deletion and supersession
/// close the registration period, exactly as in Ben-Zvi's model (and in
/// POSTGRES's no-overwrite storage).
#[derive(Debug, Clone)]
pub struct TrmRelation {
    schema: Schema,
    rows: Vec<TrmTuple>,
}

impl TrmRelation {
    /// An empty TRM relation over `schema` (value attributes only; the
    /// time attributes are implicit).
    pub fn new(schema: Schema) -> TrmRelation {
        TrmRelation {
            schema,
            rows: Vec::new(),
        }
    }

    /// The value scheme.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// All rows, including superseded ones.
    pub fn rows(&self) -> &[TrmTuple] {
        &self.rows
    }

    /// Number of physical rows (experiment E6's space proxy).
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Records that `values` is effective over `effective`, starting at
    /// transaction `at`.
    pub fn insert(&mut self, values: Tuple, effective: Period, at: TransactionNumber) {
        debug_assert!(values.check(&self.schema).is_ok());
        self.rows.push(TrmTuple {
            values,
            effective,
            trs: at.0,
            tre: OPEN,
        });
    }

    /// Logically deletes every current row matching `values` (all of its
    /// effective periods), at transaction `at`.
    pub fn logical_delete(&mut self, values: &Tuple, at: TransactionNumber) -> usize {
        let mut n = 0;
        for row in &mut self.rows {
            if row.tre == OPEN && &row.values == values {
                row.tre = at.0;
                n += 1;
            }
        }
        n
    }

    /// Terminates matching current rows at valid time `tee_new`: rows
    /// whose effective period extends past `tee_new` are superseded by a
    /// clipped copy (Ben-Zvi's *terminate* procedure).
    pub fn terminate(&mut self, values: &Tuple, tee_new: Chronon, at: TransactionNumber) -> usize {
        let mut clipped = Vec::new();
        let mut n = 0;
        for row in &mut self.rows {
            if row.tre == OPEN && &row.values == values && row.effective.end() > tee_new {
                row.tre = at.0;
                n += 1;
                if row.effective.start() < tee_new {
                    clipped.push(TrmTuple {
                        values: row.values.clone(),
                        effective: Period::new(row.effective.start(), tee_new)
                            .expect("start < tee_new checked"),
                        trs: at.0,
                        tre: OPEN,
                    });
                }
            }
        }
        self.rows.extend(clipped);
        n
    }

    /// **Time-View(R, tv, tt)**: the snapshot of tuples effective at
    /// valid time `tv` as recorded at transaction time `tt`.
    pub fn time_view(&self, tv: Chronon, tt: TransactionNumber) -> SnapshotState {
        let tuples: Vec<Tuple> = self
            .rows
            .iter()
            .filter(|r| r.registered_at(tt) && r.effective_at(tv))
            .map(|r| r.values.clone())
            .collect();
        SnapshotState::new(self.schema.clone(), tuples).expect("rows validated at insert")
    }

    /// Reassembles the full valid-time history of transaction time `tt`
    /// from rows — what ρ̂ gives directly in our model, and what Time-View
    /// alone can only produce slice by slice. Exposed so experiment E6
    /// can compare the two access paths.
    pub fn assemble_history(&self, tt: TransactionNumber) -> Vec<(Tuple, TemporalElement)> {
        use std::collections::BTreeMap;
        let mut map: BTreeMap<Tuple, TemporalElement> = BTreeMap::new();
        for r in self.rows.iter().filter(|r| r.registered_at(tt)) {
            let e = TemporalElement::from(r.effective);
            map.entry(r.values.clone())
                .and_modify(|acc| *acc = acc.union(&e))
                .or_insert(e);
        }
        map.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txtime_snapshot::{DomainType, Value};

    fn schema() -> Schema {
        Schema::new(vec![("name", DomainType::Str)]).unwrap()
    }

    fn t(name: &str) -> Tuple {
        Tuple::new(vec![Value::str(name)])
    }

    fn tx(n: u64) -> TransactionNumber {
        TransactionNumber(n)
    }

    #[test]
    fn time_view_filters_both_dimensions() {
        let mut r = TrmRelation::new(schema());
        r.insert(t("alice"), Period::new(0, 10).unwrap(), tx(1));
        r.insert(t("bob"), Period::new(5, 20).unwrap(), tx(2));

        // As of tx 1, only alice is known.
        assert_eq!(r.time_view(7, tx(1)).len(), 1);
        // As of tx 2, both are known and valid at 7.
        assert_eq!(r.time_view(7, tx(2)).len(), 2);
        // At valid time 15, only bob.
        let v = r.time_view(15, tx(2));
        assert_eq!(v.len(), 1);
        assert!(v.contains(&t("bob")));
        // Before anything was registered.
        assert!(r.time_view(7, tx(0)).is_empty());
    }

    #[test]
    fn logical_delete_closes_registration() {
        let mut r = TrmRelation::new(schema());
        r.insert(t("alice"), Period::new(0, 10).unwrap(), tx(1));
        assert_eq!(r.logical_delete(&t("alice"), tx(3)), 1);
        // Still visible as of tx 2 (the past is immutable)…
        assert_eq!(r.time_view(5, tx(2)).len(), 1);
        // …but gone as of tx 3.
        assert!(r.time_view(5, tx(3)).is_empty());
        // Physical row remains (append-only).
        assert_eq!(r.row_count(), 1);
    }

    #[test]
    fn terminate_clips_effective_time() {
        let mut r = TrmRelation::new(schema());
        r.insert(t("alice"), Period::new(0, 100).unwrap(), tx(1));
        assert_eq!(r.terminate(&t("alice"), 10, tx(2)), 1);
        // As of tx 2, alice is valid only before 10.
        assert_eq!(r.time_view(5, tx(2)).len(), 1);
        assert!(r.time_view(15, tx(2)).is_empty());
        // The pre-terminate belief is preserved at tx 1.
        assert_eq!(r.time_view(15, tx(1)).len(), 1);
    }

    #[test]
    fn terminate_before_start_deletes_entirely() {
        let mut r = TrmRelation::new(schema());
        r.insert(t("a"), Period::new(5, 9).unwrap(), tx(1));
        assert_eq!(r.terminate(&t("a"), 5, tx(2)), 1);
        assert!(r.time_view(6, tx(2)).is_empty());
    }

    #[test]
    fn assemble_history_merges_periods() {
        let mut r = TrmRelation::new(schema());
        r.insert(t("a"), Period::new(0, 5).unwrap(), tx(1));
        r.insert(t("a"), Period::new(5, 9).unwrap(), tx(1));
        let h = r.assemble_history(tx(1));
        assert_eq!(h.len(), 1);
        assert_eq!(h[0].1, TemporalElement::period(0, 9));
    }
}
