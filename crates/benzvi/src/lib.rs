#![warn(missing_docs)]

//! Ben-Zvi's Time Relational Model (TRM) and Time-View operator.
//!
//! The paper's §5 singles out Ben-Zvi's PhD thesis \[1982\] as "one other
//! attempt to incorporate both valid time and transaction time in an
//! algebra": tuples carry implicit time attributes (effective-time start
//! and end, registration-time start and end), and the algebra is extended
//! with **Time-View(R, t_valid, t_tx)**, which "takes a relation and two
//! times as arguments and produces the subset of tuples in the relation
//! valid at the first time (the valid time) as of the second time (the
//! transaction time)".
//!
//! We implement TRM as the comparison baseline:
//!
//! * [`TrmRelation`] — an append-only table of tuples stamped with an
//!   effective (valid) period and a registration (transaction) period,
//!   maintained through insert/delete/terminate-style procedures.
//! * [`TrmRelation::time_view`] — the Time-View operator.
//! * [`bridge`] — loads one logical history into both TRM and our
//!   temporal relations, and states the correspondence the paper implies:
//!   `Time-View(R, tv, tt) = timeslice(ρ̂(R, tt), tv)`. The paper's
//!   critique is also made concrete: Time-View can only produce such
//!   *slices*; the full historical state at a transaction time — what
//!   ρ̂ returns in one step — must be reassembled from many Time-View
//!   calls.

pub mod bridge;
pub mod relation;

pub use relation::{TrmRelation, TrmTuple};
