//! Loading one logical history into both models, and the correspondence
//! between Time-View and ρ̂ ∘ timeslice.

use txtime_core::{Command, Database, Expr, RelationType, Sentence, TransactionNumber, TxSpec};
use txtime_historical::HistoricalState;

use crate::relation::TrmRelation;

/// A logical history: successive historical states, committed in order.
/// This is the content a temporal relation holds; the bridge mirrors it
/// into TRM rows.
pub struct Bridge {
    /// The txtime side: a temporal relation named `"r"`.
    pub database: Database,
    /// The TRM side.
    pub trm: TrmRelation,
    /// The commit tx of each version, in order.
    pub commits: Vec<TransactionNumber>,
}

/// Builds both representations from the same sequence of historical
/// states.
///
/// The TRM side is maintained by the insert/delete procedures: at each
/// commit, rows whose (tuple, period) pair disappeared are logically
/// deleted and new pairs are inserted — Ben-Zvi's tuples carry a single
/// effective period, so a multi-period temporal element becomes several
/// rows.
pub fn load(versions: &[HistoricalState]) -> Bridge {
    assert!(!versions.is_empty(), "at least one version required");
    let schema = versions[0].schema().clone();

    // txtime side: one modify_state per version.
    let mut commands = vec![Command::define_relation("r", RelationType::Temporal)];
    for v in versions {
        commands.push(Command::modify_state(
            "r",
            Expr::historical_const(v.clone()),
        ));
    }
    let database = Sentence::new(commands)
        .expect("non-empty")
        .eval()
        .expect("well-formed history");

    // TRM side: replay the same versions through the procedures, using
    // the same commit numbers the reference semantics assigned (define is
    // tx 1, versions are tx 2, 3, …).
    let mut trm = TrmRelation::new(schema);
    let mut commits = Vec::with_capacity(versions.len());
    let mut registered: Vec<(txtime_snapshot::Tuple, txtime_historical::Period)> = Vec::new();
    for (i, v) in versions.iter().enumerate() {
        let at = TransactionNumber(i as u64 + 2);
        commits.push(at);
        let target: Vec<(txtime_snapshot::Tuple, txtime_historical::Period)> = v
            .iter()
            .flat_map(|(t, e)| e.periods().iter().map(move |p| (t.clone(), *p)))
            .collect();
        // Close rows whose pair vanished. TRM's logical_delete closes all
        // current rows for a tuple, so delete-then-reinsert tuples whose
        // period set changed at all.
        let changed: Vec<txtime_snapshot::Tuple> = registered
            .iter()
            .map(|(t, _)| t)
            .chain(target.iter().map(|(t, _)| t))
            .filter(|t| {
                let old: Vec<_> = registered
                    .iter()
                    .filter(|(rt, _)| rt == *t)
                    .map(|(_, p)| *p)
                    .collect();
                let new: Vec<_> = target
                    .iter()
                    .filter(|(nt, _)| nt == *t)
                    .map(|(_, p)| *p)
                    .collect();
                old != new
            })
            .cloned()
            .collect();
        let mut seen = Vec::new();
        for t in changed {
            if seen.contains(&t) {
                continue;
            }
            trm.logical_delete(&t, at);
            for (nt, p) in &target {
                if nt == &t {
                    trm.insert(nt.clone(), *p, at);
                }
            }
            seen.push(t);
        }
        registered = target;
    }

    Bridge {
        database,
        trm,
        commits,
    }
}

impl Bridge {
    /// The correspondence the paper implies: Time-View(R, tv, tt) equals
    /// slicing ρ̂(R, tt) at tv. Returns the first counterexample, if any.
    pub fn check_correspondence(
        &self,
        valid_horizon: txtime_historical::Chronon,
    ) -> Result<(), String> {
        let last_tx = self.database.tx;
        for tt in 0..=last_tx.0 + 1 {
            let tt = TransactionNumber(tt);
            let ours = Expr::hrollback("r", TxSpec::At(tt)).eval(&self.database);
            for tv in 0..valid_horizon {
                let theirs = self.trm.time_view(tv, tt);
                match &ours {
                    Ok(state) => {
                        let sliced = state
                            .as_historical()
                            .expect("temporal relation yields historical states")
                            .timeslice(tv);
                        if sliced != theirs {
                            return Err(format!(
                                "divergence at tt={tt}, tv={tv}: ours {sliced}, TRM {theirs}"
                            ));
                        }
                    }
                    Err(_) => {
                        // Before the first version our side diagnoses (or
                        // returns empty); TRM must show nothing.
                        if !theirs.is_empty() {
                            return Err(format!(
                                "TRM shows rows before first version at tt={tt}, tv={tv}"
                            ));
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txtime_historical::TemporalElement;
    use txtime_snapshot::{DomainType, Schema, Tuple, Value};

    fn schema() -> Schema {
        Schema::new(vec![("name", DomainType::Str)]).unwrap()
    }

    fn hstate(rows: &[(&str, u32, u32)]) -> HistoricalState {
        HistoricalState::new(
            schema(),
            rows.iter().map(|&(n, s, e)| {
                (
                    Tuple::new(vec![Value::str(n)]),
                    TemporalElement::period(s, e),
                )
            }),
        )
        .unwrap()
    }

    #[test]
    fn correspondence_on_growing_history() {
        let versions = vec![
            hstate(&[("alice", 0, 10)]),
            hstate(&[("alice", 0, 10), ("bob", 5, 20)]),
            hstate(&[("alice", 0, 15), ("bob", 5, 20)]), // alice revised
            hstate(&[("bob", 5, 20)]),                   // alice retracted
        ];
        let bridge = load(&versions);
        bridge.check_correspondence(25).unwrap();
    }

    #[test]
    fn trm_is_append_only() {
        let versions = vec![hstate(&[("a", 0, 5)]), hstate(&[("a", 0, 9)])];
        let bridge = load(&versions);
        // The revision closed one row and added one: 2 physical rows.
        assert_eq!(bridge.trm.row_count(), 2);
    }

    #[test]
    fn multi_period_elements_become_multiple_rows() {
        let h = HistoricalState::new(
            schema(),
            vec![(
                Tuple::new(vec![Value::str("a")]),
                TemporalElement::from_periods([
                    txtime_historical::Period::new(0, 3).unwrap(),
                    txtime_historical::Period::new(7, 9).unwrap(),
                ]),
            )],
        )
        .unwrap();
        let bridge = load(&[h]);
        assert_eq!(bridge.trm.row_count(), 2);
        bridge.check_correspondence(12).unwrap();
    }
}
