//! The experiment harness: regenerates every table in EXPERIMENTS.md.
//!
//! ```text
//! cargo run --release -p txtime-bench --bin experiments          # all
//! cargo run --release -p txtime-bench --bin experiments e2 e3   # subset
//! ```

use std::num::NonZeroUsize;
use std::time::Instant;

use txtime_snapshot::rng::rngs::StdRng;
use txtime_snapshot::rng::{Rng, SeedableRng};

use txtime_bench::*;
use txtime_benzvi::bridge;
use txtime_core::{
    Command, Database, Expr, RelationType, Sentence, StateSource, StateValue, TransactionNumber,
    TxSpec,
};
use txtime_optimizer::{estimate_cost, optimize, CostModel, SchemaCatalog};
use txtime_snapshot::generate::{mutate_state, random_state};
use txtime_snapshot::reference::RefSnapshot;
use txtime_snapshot::{DomainType, Predicate, Schema, SnapshotState, Tuple, Value};
use txtime_storage::{
    check_equivalence, recovery::recover, BackendKind, CheckpointPolicy, Engine, StateDelta,
};
use txtime_txn::{check_serial_equivalence, ConcurrentManager, Transaction};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let run = |name: &str| args.is_empty() || args.iter().any(|a| a == name || a == "all");

    println!("txtime experiment harness (seed {SEED:#x})");
    println!("==========================================\n");

    if run("e1") {
        e1_algebraic_laws();
    }
    if run("e2") {
        e2_rollback_cost();
    }
    if run("e3") {
        e3_space();
    }
    if run("e4") {
        e4_modify_state_throughput();
    }
    if run("e5") {
        e5_temporal_queries();
    }
    if run("e6") {
        e6_benzvi_baseline();
    }
    if run("e7") {
        e7_optimizer();
    }
    if run("e8") {
        e8_concurrency();
    }
    if run("e9") {
        e9_findstate();
    }
    if run("e10") {
        e10_cache_pushdown();
    }
    if run("e11") {
        e11_recovery();
    }
    if run("e12") {
        e12_archival();
    }
    if run("e13") {
        e13_parallel();
    }
    if run("e14") {
        e14_sorted_runs();
    }
    if run("e15") {
        e15_incremental();
    }
    if run("e16") {
        e16_sharding();
    }
    if run("e17") {
        e17_plan_search();
    }
    if run("e18") {
        e18_physical_joins();
    }
    // Explicit-only: writes BENCH_2.json with the headline numbers.
    if args.iter().any(|a| a == "bench2") {
        bench2();
    }
    // Explicit-only: writes BENCH_3.json (parallel execution headline).
    if args.iter().any(|a| a == "bench3") {
        bench3();
    }
    // Explicit-only: writes BENCH_4.json (sorted-run layout headline).
    if args.iter().any(|a| a == "bench4") {
        bench4();
    }
    // Explicit-only: writes BENCH_5.json (view-memo headline).
    if args.iter().any(|a| a == "bench5") {
        bench5();
    }
    // Explicit-only: writes BENCH_7.json (sharding + compaction headline).
    if args.iter().any(|a| a == "bench7") {
        bench7();
    }
    // Explicit-only: writes BENCH_8.json (cost-based plan search headline).
    if args.iter().any(|a| a == "bench8") {
        bench8();
    }
    // Explicit-only: writes BENCH_9.json (physical join headline).
    if args.iter().any(|a| a == "bench9") {
        bench9();
    }
    if run("e19") {
        e19_server();
    }
    // Explicit-only: writes BENCH_10.json (server group-commit headline).
    if args.iter().any(|a| a == "bench10") {
        bench10();
    }
}

fn time_median<F: FnMut() -> usize>(mut f: F, reps: usize) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            let sink = f();
            let dt = t.elapsed().as_secs_f64() * 1e6;
            std::hint::black_box(sink);
            dt
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

// --------------------------------------------------------------------
// E1: the preserved snapshot-algebra properties.
// --------------------------------------------------------------------
fn e1_algebraic_laws() {
    println!("E1. Snapshot-algebra properties preserved (paper §2 claim)");
    println!(
        "{:<28} {:<42} {:>7} {:>7}",
        "law", "statement", "trials", "pass"
    );
    const TRIALS: usize = 200;
    let mut all_pass = true;
    for law in txtime_optimizer::laws::all_laws() {
        let ok = law.run(SEED, TRIALS);
        all_pass &= ok == TRIALS;
        println!(
            "{:<28} {:<42} {:>7} {:>7}",
            law.name, law.statement, TRIALS, ok
        );
    }
    println!("\nE1b. Historical-algebra laws (§4: conservative extension)");
    println!(
        "{:<28} {:<42} {:>7} {:>7}",
        "law", "statement", "trials", "pass"
    );
    for law in txtime_optimizer::laws::historical_laws() {
        let ok = law.run(SEED, TRIALS);
        all_pass &= ok == TRIALS;
        println!(
            "{:<28} {:<42} {:>7} {:>7}",
            law.name, law.statement, TRIALS, ok
        );
    }
    println!(
        "=> {}\n",
        if all_pass {
            "every law held on every trial"
        } else {
            "LAW VIOLATION — see rows above"
        }
    );
}

// --------------------------------------------------------------------
// E2: rollback cost vs history depth per backend.
// --------------------------------------------------------------------
fn e2_rollback_cost() {
    println!("E2. Rollback cost (µs/query) vs history depth, |R| = 200, churn = 10%");
    println!(
        "{:<16} {:>8} {:>12} {:>12} {:>12}",
        "backend", "versions", "old", "mid", "recent"
    );
    for &versions in &[16usize, 128, 1024] {
        let chain = version_chain(versions, 200, 0.1);
        for backend in BackendKind::ALL {
            let engine = engine_with_chain(backend, CheckpointPolicy::every_k(32).unwrap(), &chain);
            engine.set_cache_capacity(0); // raw reconstruction cost; E10 measures caching
            let mut row = format!("{:<16} {:>8}", backend.to_string(), versions);
            for (_, tx) in probe_txs(versions) {
                let us = time_median(
                    || {
                        touch(
                            &engine
                                .resolve_rollback("r", TxSpec::At(tx), false)
                                .expect("probe answers"),
                        )
                    },
                    9,
                );
                row.push_str(&format!(" {us:>12.1}"));
            }
            println!("{row}");
        }
    }
    println!("=> full-copy & tuple-timestamp are depth-insensitive; forward-delta pays per\n   distance-to-checkpoint; reverse-delta favours recent targets.\n");
}

// --------------------------------------------------------------------
// E3: space vs number of versions per backend.
// --------------------------------------------------------------------
fn e3_space() {
    println!("E3. Storage space vs versions, |R| = 200");
    println!(
        "{:<16} {:>8} {:>7} {:>14} {:>12}",
        "backend", "versions", "churn", "bytes", "B/version"
    );
    for &versions in &[16usize, 128, 512] {
        for &churn in &[0.02f64, 0.2, 0.5] {
            let chain = version_chain(versions, 200, churn);
            for backend in BackendKind::ALL {
                let engine =
                    engine_with_chain(backend, CheckpointPolicy::every_k(32).unwrap(), &chain);
                let report = engine.space_report();
                let bytes = report.total_bytes();
                println!(
                    "{:<16} {:>8} {:>6.0}% {:>14} {:>12.1}",
                    backend.to_string(),
                    versions,
                    churn * 100.0,
                    bytes,
                    bytes as f64 / versions as f64
                );
            }
        }
    }
    println!("=> delta and tuple-timestamp space scales with churn, full-copy with state size.\n");
}

// --------------------------------------------------------------------
// E4: modify_state throughput by update mix.
// --------------------------------------------------------------------
fn e4_modify_state_throughput() {
    println!("E4. modify_state throughput (commands/s), |R| = 500, 200 commands");
    println!(
        "{:<16} {:>10} {:>10} {:>10} {:>10}",
        "backend", "append", "delete", "replace", "mixed"
    );
    let base = version_chain(1, 500, 0.0).pop().expect("one state");
    for backend in BackendKind::ALL {
        let mut row = format!("{:<16}", backend.to_string());
        for mix in ["append", "delete", "replace", "mixed"] {
            let mut engine = Engine::new(backend, CheckpointPolicy::every_k(32).unwrap());
            engine
                .execute(&Command::define_relation("r", RelationType::Rollback))
                .unwrap();
            engine
                .execute(&Command::modify_state(
                    "r",
                    Expr::snapshot_const(base.clone()),
                ))
                .unwrap();
            let mut rng = StdRng::seed_from_u64(SEED);
            let cfg = bench_gen_config(1);
            let cmds: Vec<Command> = (0..200)
                .map(|i| {
                    let fresh =
                        txtime_snapshot::generate::random_state(&mut rng, &bench_schema(), &cfg);
                    let kind = match mix {
                        "mixed" => ["append", "delete", "replace"][i % 3],
                        k => k,
                    };
                    let expr = match kind {
                        "append" => Expr::current("r").union(Expr::snapshot_const(fresh)),
                        "delete" => Expr::current("r").difference(Expr::snapshot_const(fresh)),
                        _ => Expr::current("r")
                            .difference(Expr::snapshot_const(fresh.clone()))
                            .union(Expr::snapshot_const(fresh)),
                    };
                    Command::modify_state("r", expr)
                })
                .collect();
            let t = Instant::now();
            for c in &cmds {
                engine.execute(c).expect("valid command");
            }
            let rate = cmds.len() as f64 / t.elapsed().as_secs_f64();
            row.push_str(&format!(" {rate:>10.0}"));
        }
        println!("{row}");
    }
    println!("=> every mix is one expression + one version install; backends differ in\n   install cost (delta diffing vs full copy vs interval bookkeeping).\n");
}

// --------------------------------------------------------------------
// E5: temporal queries (ρ̂, δ, timeslice) and orthogonality.
// --------------------------------------------------------------------
fn e5_temporal_queries() {
    use txtime_historical::{TemporalElement, TemporalExpr, TemporalPred};
    println!("E5. Temporal queries on a temporal relation (64 versions × |R| = 100)");
    let chain = historical_chain(64, 100);
    let engine = engine_with_temporal(BackendKind::FullCopy, &chain);
    let window = TemporalElement::period(100, 300);

    let queries: Vec<(&str, Expr)> = vec![
        ("ρ̂(t, ∞) — current historical state", Expr::hcurrent("t")),
        (
            "ρ̂(t, mid) — past historical state",
            Expr::hrollback("t", TxSpec::At(TransactionNumber(33))),
        ),
        (
            "δ window-clip of ρ̂(t, ∞)",
            Expr::hcurrent("t").delta(
                TemporalPred::overlaps(
                    TemporalExpr::ValidTime,
                    TemporalExpr::constant(window.clone()),
                ),
                TemporalExpr::intersect(
                    TemporalExpr::ValidTime,
                    TemporalExpr::constant(window.clone()),
                ),
            ),
        ),
        (
            "σ̂ value filter of ρ̂(t, ∞)",
            Expr::hcurrent("t").hselect(Predicate::gt_const("grade", Value::Int(5000))),
        ),
    ];
    println!("{:<42} {:>12} {:>8}", "query", "µs/query", "|result|");
    for (name, q) in &queries {
        let mut size = 0;
        let us = time_median(
            || {
                let s = engine.eval(q).expect("valid query");
                size = s.len();
                size
            },
            9,
        );
        println!("{name:<42} {us:>12.1} {size:>8}");
    }
    // Orthogonality spot-check: rollback then timeslice at all corners.
    let h = engine
        .eval(&Expr::hrollback("t", TxSpec::At(TransactionNumber(33))))
        .unwrap()
        .into_historical()
        .unwrap();
    let us = time_median(|| h.timeslice(200).len(), 9);
    println!(
        "{:<42} {us:>12.1} {:>8}",
        "timeslice(ρ̂(t, mid), 200)",
        h.timeslice(200).len()
    );
    println!("=> transaction-time access (ρ̂) and valid-time access (δ/timeslice) compose\n   in either order: the two dimensions are orthogonal (§4).\n");
}

// --------------------------------------------------------------------
// E6: Ben-Zvi Time-View baseline.
// --------------------------------------------------------------------
fn e6_benzvi_baseline() {
    println!("E6. Ben-Zvi Time-View vs ρ̂∘timeslice (32 versions × |R| = 60)");
    let chain = historical_chain(32, 60);
    let b = bridge::load(&chain);
    match b.check_correspondence(1_000) {
        Ok(()) => {
            println!("correspondence: Time-View(R,tv,tt) = timeslice(ρ̂(R,tt),tv)  ✓ (all tv, tt)")
        }
        Err(e) => println!("correspondence FAILED: {e}"),
    }

    let tt = TransactionNumber(20);
    let tv = 500;
    let trm_us = time_median(|| b.trm.time_view(tv, tt).len(), 9);
    let ours_us = time_median(
        || {
            Expr::hrollback("r", TxSpec::At(tt))
                .eval(&b.database)
                .unwrap()
                .into_historical()
                .unwrap()
                .timeslice(tv)
                .len()
        },
        9,
    );
    let assemble_us = time_median(|| b.trm.assemble_history(tt).len(), 9);
    let rho_us = time_median(
        || {
            Expr::hrollback("r", TxSpec::At(tt))
                .eval(&b.database)
                .unwrap()
                .len()
        },
        9,
    );
    println!("{:<46} {:>12}", "operation", "µs/query");
    println!("{:<46} {:>12.1}", "TRM Time-View(R, tv, tt)", trm_us);
    println!("{:<46} {:>12.1}", "ours timeslice(ρ̂(R, tt), tv)", ours_us);
    println!(
        "{:<46} {:>12.1}",
        "TRM full history at tt (assembled)", assemble_us
    );
    println!(
        "{:<46} {:>12.1}",
        "ours full history at tt (ρ̂ alone)", rho_us
    );
    println!("TRM physical rows: {}", b.trm.row_count());
    println!("=> the models agree on every slice; ρ̂ additionally returns the whole\n   historical state directly, which Time-View's slice-only interface cannot\n   (the paper's §5 critique).\n");
}

// --------------------------------------------------------------------
// E7: optimizer effect.
// --------------------------------------------------------------------
fn e7_optimizer() {
    println!("E7. Optimizer effect (evaluation time, µs/query)");
    // A database with two joinable rollback relations.
    let emp_chain = version_chain(4, 400, 0.1);
    let mut cmds = vec![Command::define_relation("emp", RelationType::Rollback)];
    for s in &emp_chain {
        cmds.push(Command::modify_state(
            "emp",
            Expr::snapshot_const(s.clone()),
        ));
    }
    cmds.push(Command::define_relation("dept", RelationType::Rollback));
    let dept_schema =
        txtime_snapshot::Schema::new(vec![("dno", txtime_snapshot::DomainType::Int)]).unwrap();
    let mut rng = StdRng::seed_from_u64(SEED);
    let dept_state =
        txtime_snapshot::generate::random_state(&mut rng, &dept_schema, &bench_gen_config(40));
    cmds.push(Command::modify_state(
        "dept",
        Expr::snapshot_const(dept_state),
    ));
    let db = Sentence::new(cmds).unwrap().eval().unwrap();
    let catalog = SchemaCatalog::from_database(&db);
    let mut model = CostModel::new();
    model.set_cardinality("emp", 400.0);
    model.set_cardinality("dept", 40.0);

    let queries: Vec<(&str, Expr)> = vec![
        (
            "σ over × (pushdown target)",
            Expr::current("emp").product(Expr::current("dept")).select(
                Predicate::lt_const("grade", Value::Int(500))
                    .and(Predicate::lt_const("dno", Value::Int(1000))),
            ),
        ),
        (
            "cascaded σ (fusion target)",
            Expr::current("emp")
                .select(Predicate::gt_const("grade", Value::Int(100)))
                .select(Predicate::lt_const("grade", Value::Int(5000)))
                .select(Predicate::gt_const("id", Value::Int(10))),
        ),
        (
            "σ over ∪ of two rollbacks",
            Expr::rollback("emp", TxSpec::At(TransactionNumber(2)))
                .union(Expr::current("emp"))
                .select(Predicate::lt_const("grade", Value::Int(300))),
        ),
        (
            "σ_false (constant folding)",
            Expr::current("emp")
                .select(Predicate::gt_const("grade", Value::Int(1)).and(Predicate::False)),
        ),
    ];

    println!(
        "{:<32} {:>12} {:>12} {:>8} {:>12} {:>12}",
        "query", "orig µs", "opt µs", "speedup", "est cost", "est cost opt"
    );
    for (name, q) in &queries {
        let o = optimize(q, &catalog);
        let before = time_median(|| q.eval(&db).expect("valid").len(), 7);
        let after = time_median(|| o.eval(&db).expect("valid").len(), 7);
        // Verify equivalence while we are here.
        assert_eq!(q.eval(&db).unwrap(), o.eval(&db).unwrap(), "{name}");
        println!(
            "{:<32} {:>12.1} {:>12.1} {:>7.1}x {:>12.0} {:>12.0}",
            name,
            before,
            after,
            before / after.max(0.001),
            estimate_cost(q, &model),
            estimate_cost(&o, &model)
        );
    }
    println!("=> classical rewrites apply unchanged with ρ as an opaque leaf (§2 claim),\n   and optimized plans evaluate to identical states.\n");
}

// --------------------------------------------------------------------
// E8: concurrent = serial.
// --------------------------------------------------------------------
fn e8_concurrency() {
    println!("E8. Concurrency: optimistic manager vs serial, 200 txns");
    println!(
        "{:<10} {:>8} {:>12} {:>10} {:>10} {:>8}",
        "workload", "threads", "txn/s", "restarts", "commits", "serial≡"
    );
    for (workload, relations) in [("conflict", 1usize), ("disjoint", 16)] {
        for threads in [1usize, 2, 4, 8] {
            let mut setup = Vec::new();
            for r in 0..relations {
                setup.push(Command::define_relation(
                    format!("r{r}"),
                    RelationType::Rollback,
                ));
                setup.push(Command::modify_state(
                    format!("r{r}"),
                    Expr::snapshot_const(version_chain(1, 10, 0.0).pop().unwrap()),
                ));
            }
            let initial = Sentence::new(setup).unwrap().eval().unwrap();
            let mut rng = StdRng::seed_from_u64(SEED ^ threads as u64);
            let txns: Vec<Transaction> = (1..=200u64)
                .map(|id| {
                    let r = format!("r{}", rng.gen_range(0..relations));
                    Transaction::new(
                        id,
                        vec![Command::modify_state(
                            r.clone(),
                            Expr::current(r).union(Expr::snapshot_const(
                                version_chain(1, 1, 0.0).pop().unwrap(),
                            )),
                        )],
                    )
                })
                .collect();
            let t = Instant::now();
            let report = ConcurrentManager::new().run_from(initial.clone(), txns.clone(), threads);
            let rate = 200.0 / t.elapsed().as_secs_f64();
            let ok = check_serial_equivalence(&initial, &txns, &report.commits, &report.database)
                .is_ok();
            println!(
                "{:<10} {:>8} {:>12.0} {:>10} {:>10} {:>8}",
                workload,
                threads,
                rate,
                report.restarts,
                report.commits.len(),
                if ok { "✓" } else { "✗" }
            );
        }
    }
    println!("=> every run is equivalent to a serial execution in commit order with a\n   single monotonically increasing transaction clock (§3.2's condition).\n");
}

// --------------------------------------------------------------------
// E9: FINDSTATE lookup strategies.
// --------------------------------------------------------------------
/// Measures FINDSTATE µs/lookup at the given depth for the three
/// strategies: (interpolating, binary, linear).
fn measure_findstate(versions: usize) -> (f64, f64, f64) {
    // Build a reference relation directly (tiny states; the lookup
    // itself is what we measure).
    let chain = version_chain(versions, 4, 0.5);
    let mut cmds = vec![Command::define_relation("r", RelationType::Rollback)];
    for s in &chain {
        cmds.push(Command::modify_state("r", Expr::snapshot_const(s.clone())));
    }
    let db = Sentence::new(cmds).unwrap().eval().unwrap();
    let rel = db.state.lookup("r").unwrap();
    let mut rng = StdRng::seed_from_u64(SEED);
    let probes: Vec<TransactionNumber> = (0..256)
        .map(|_| TransactionNumber(rng.gen_range(0..versions as u64 + 3)))
        .collect();
    let per = probes.len() as f64;

    let interp = time_median(
        || {
            probes
                .iter()
                .filter_map(|&t| txtime_core::semantics::aux::find_state(rel, t))
                .count()
        },
        9,
    ) / per;
    let binary = time_median(
        || {
            probes
                .iter()
                .filter_map(|&t| txtime_core::semantics::aux::find_state_binary(rel, t))
                .count()
        },
        9,
    ) / per;
    let linear = time_median(
        || {
            probes
                .iter()
                .filter_map(|&t| {
                    rel.versions()
                        .iter()
                        .rev()
                        .find(|v| v.tx <= t)
                        .map(|v| &v.state)
                })
                .count()
        },
        9,
    ) / per;
    (interp, binary, linear)
}

fn e9_findstate() {
    println!("E9. FINDSTATE: interpolation search vs binary search vs linear scan (µs/lookup)");
    println!(
        "{:<10} {:>14} {:>12} {:>12} {:>9}",
        "versions", "interpolating", "binary", "linear", "speedup"
    );
    for &versions in &[16usize, 256, 4096] {
        let (interp, binary, linear) = measure_findstate(versions);
        println!(
            "{:<10} {:>14.3} {:>12.3} {:>12.3} {:>8.1}x",
            versions,
            interp,
            binary,
            linear,
            linear / interp.max(1e-9)
        );
    }
    println!("=> the strictly increasing transaction numbers (§3.2) admit O(log log n)\n   interpolation search on the near-uniform commit sequence, which is what\n   makes deep rollback histories practical.\n");
}

// --------------------------------------------------------------------
// E10: materialization cache + operator pushdown.
// --------------------------------------------------------------------

/// Cache headline row for one delta backend: a 16-probe working set of
/// as-of points over a 256-version chain, revisited repeatedly (the
/// audit shape). Returns (uncached µs/sweep, cached µs/sweep, hit rate,
/// deltas replayed per miss).
fn measure_cache(backend: BackendKind) -> (f64, f64, f64, f64) {
    let versions = 256usize;
    let chain = version_chain(versions, 200, 0.1);
    let mut rng = StdRng::seed_from_u64(SEED);
    let probes: Vec<TransactionNumber> = (0..16)
        .map(|_| TransactionNumber(rng.gen_range(2..versions as u64 + 2)))
        .collect();
    let engine = engine_with_chain(backend, CheckpointPolicy::every_k(64).unwrap(), &chain);
    let sweep = |engine: &Engine| {
        probes
            .iter()
            .map(|&t| {
                engine
                    .eval(&Expr::rollback("r", TxSpec::At(t)))
                    .expect("probe answers")
                    .len()
            })
            .sum::<usize>()
    };
    engine.set_cache_capacity(0);
    let uncached = time_median(|| sweep(&engine), 9);
    engine.set_cache_capacity(128);
    sweep(&engine); // warm: first visit per probe pays the replay
    engine.reset_cache_stats();
    let cached = time_median(|| sweep(&engine), 9);
    let stats = engine.cache_stats();
    (uncached, cached, stats.hit_rate(), stats.replay_per_miss())
}

/// Pushdown headline row for one backend: σ_F(ρ(r, mid)) evaluated
/// through the engine (the store filters while reconstructing) vs
/// resolving the full version and filtering afterwards. Returns
/// (materialized µs, pushed µs).
fn measure_pushdown(backend: BackendKind) -> (f64, f64) {
    let versions = 128usize;
    let chain = version_chain(versions, 400, 0.1);
    let mid = TransactionNumber(versions as u64 / 2 + 1);
    // int_range is 10_000, so this keeps ~5% of tuples.
    let pred = Predicate::lt_const("id", Value::Int(500));
    let engine = engine_with_chain(backend, CheckpointPolicy::every_k(32).unwrap(), &chain);
    engine.set_cache_capacity(0); // isolate pushdown from caching
    let materialized = time_median(
        || {
            engine
                .resolve_rollback("r", TxSpec::At(mid), false)
                .expect("probe answers")
                .into_snapshot()
                .expect("snapshot relation")
                .select(&pred)
                .expect("predicate compiles")
                .len()
        },
        9,
    );
    let pushed_expr = Expr::rollback("r", TxSpec::At(mid)).select(pred.clone());
    let pushed = time_median(
        || engine.eval(&pushed_expr).expect("probe answers").len(),
        9,
    );
    (materialized, pushed)
}

fn e10_cache_pushdown() {
    println!("E10. Materialization cache + operator pushdown");
    println!("E10a. Repeated rollback probes: 16-probe working set over 256 versions,");
    println!("      |R| = 200, churn = 10%, checkpoint every 64 (µs/sweep)");
    println!(
        "{:<16} {:>12} {:>12} {:>9} {:>9} {:>12}",
        "backend", "uncached", "cached", "speedup", "hit rate", "replay/miss"
    );
    for backend in [BackendKind::ForwardDelta, BackendKind::ReverseDelta] {
        let (uncached, cached, hit_rate, replay_per_miss) = measure_cache(backend);
        println!(
            "{:<16} {:>12.1} {:>12.1} {:>8.1}x {:>8.1}% {:>12.1}",
            backend.to_string(),
            uncached,
            cached,
            uncached / cached.max(1e-9),
            hit_rate * 100.0,
            replay_per_miss
        );
    }
    println!("\nE10b. σ_F(ρ(r, mid)): pushed into resolution vs materialize-then-filter,");
    println!("      |R| = 400, 128 versions, ~5% selectivity (µs/query)");
    println!(
        "{:<16} {:>14} {:>12} {:>9}",
        "backend", "materialized", "pushed", "speedup"
    );
    for backend in [BackendKind::TupleTimestamp, BackendKind::ForwardDelta] {
        let (materialized, pushed) = measure_pushdown(backend);
        println!(
            "{:<16} {:>14.1} {:>12.1} {:>8.1}x",
            backend.to_string(),
            materialized,
            pushed,
            materialized / pushed.max(1e-9)
        );
    }
    println!("=> revisited as-of points cost one cache lookup instead of a delta replay;\n   pushdown pays off where the store can filter during the scan (tuple-ts)\n   and never hurts elsewhere (delta stores fall back to filter-after).\n");
}

// --------------------------------------------------------------------
// bench2: BENCH_2.json with the headline numbers (explicit-only arm).
// --------------------------------------------------------------------
fn bench2() {
    println!("bench2. Writing BENCH_2.json (e2 / e9 / e10 headline numbers)");

    // E2 headline: rollback µs/query at 1024 versions per backend.
    let versions = 1024usize;
    let chain = version_chain(versions, 200, 0.1);
    let mut e2 = String::new();
    for (i, backend) in BackendKind::ALL.into_iter().enumerate() {
        let engine = engine_with_chain(backend, CheckpointPolicy::every_k(32).unwrap(), &chain);
        engine.set_cache_capacity(0); // raw reconstruction cost; E10 measures caching
        let mut probes = String::new();
        for (j, (label, tx)) in probe_txs(versions).into_iter().enumerate() {
            let us = time_median(
                || {
                    touch(
                        &engine
                            .resolve_rollback("r", TxSpec::At(tx), false)
                            .expect("probe answers"),
                    )
                },
                9,
            );
            if j > 0 {
                probes.push_str(", ");
            }
            probes.push_str(&format!("\"{label}\": {us:.1}"));
        }
        if i > 0 {
            e2.push_str(", ");
        }
        e2.push_str(&format!("\"{backend}\": {{{probes}}}"));
    }

    let (interp, binary, linear) = measure_findstate(4096);

    let mut e10_cache = String::new();
    for (i, backend) in [BackendKind::ForwardDelta, BackendKind::ReverseDelta]
        .into_iter()
        .enumerate()
    {
        let (uncached, cached, hit_rate, replay_per_miss) = measure_cache(backend);
        if i > 0 {
            e10_cache.push_str(", ");
        }
        e10_cache.push_str(&format!(
            "\"{backend}\": {{\"uncached_us\": {uncached:.1}, \"cached_us\": {cached:.1}, \
             \"speedup\": {:.1}, \"hit_rate\": {hit_rate:.3}, \
             \"replayed_per_miss\": {replay_per_miss:.1}}}",
            uncached / cached.max(1e-9)
        ));
    }

    let mut e10_pushdown = String::new();
    for (i, backend) in [BackendKind::TupleTimestamp, BackendKind::ForwardDelta]
        .into_iter()
        .enumerate()
    {
        let (materialized, pushed) = measure_pushdown(backend);
        if i > 0 {
            e10_pushdown.push_str(", ");
        }
        e10_pushdown.push_str(&format!(
            "\"{backend}\": {{\"materialized_us\": {materialized:.1}, \"pushed_us\": {pushed:.1}, \
             \"speedup\": {:.1}}}",
            materialized / pushed.max(1e-9)
        ));
    }

    let json = format!(
        "{{\n  \"seed\": \"{SEED:#x}\",\n  \
         \"e2_rollback_us_at_1024_versions\": {{{e2}}},\n  \
         \"e9_findstate_us_per_lookup_at_4096\": {{\"interpolating\": {interp:.3}, \
         \"binary\": {binary:.3}, \"linear\": {linear:.3}}},\n  \
         \"e10_cache_16_probe_sweep\": {{{e10_cache}}},\n  \
         \"e10_pushdown_sigma_over_rho\": {{{e10_pushdown}}}\n}}\n"
    );
    std::fs::write("BENCH_2.json", &json).expect("write BENCH_2.json");
    println!("{json}");
}

// --------------------------------------------------------------------
// E11: WAL recovery.
// --------------------------------------------------------------------
fn e11_recovery() {
    println!("E11. WAL recovery: rebuild-from-log ≡ live engine");
    let dir = std::env::temp_dir().join("txtime-experiments");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join(format!("e11-{}.wal", std::process::id()));
    let _ = std::fs::remove_file(&path);

    let chain = version_chain(256, 100, 0.1);
    let mut live = Engine::with_wal(
        BackendKind::ForwardDelta,
        CheckpointPolicy::every_k(16).unwrap(),
        &path,
    )
    .expect("wal engine");
    live.execute(&Command::define_relation("r", RelationType::Rollback))
        .unwrap();
    let t = Instant::now();
    for s in &chain {
        live.execute(&Command::modify_state("r", Expr::snapshot_const(s.clone())))
            .unwrap();
    }
    let write_s = t.elapsed().as_secs_f64();

    let t = Instant::now();
    let rec = recover(
        &path,
        BackendKind::ForwardDelta,
        CheckpointPolicy::every_k(16).unwrap(),
    )
    .expect("recovery");
    let recover_s = t.elapsed().as_secs_f64();

    let mut equal = rec.engine.tx() == live.tx();
    for tx in 0..=live.tx().0 {
        let spec = TxSpec::At(TransactionNumber(tx));
        let a = live.resolve_rollback("r", spec, false).ok();
        let b = rec.engine.resolve_rollback("r", spec, false).ok();
        equal &= a == b;
    }
    println!("commands journaled : {}", rec.replayed);
    println!(
        "journal size       : {} bytes",
        std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0)
    );
    println!("write throughput   : {:.0} cmd/s", 257.0 / write_s);
    println!(
        "recovery throughput: {:.0} cmd/s",
        rec.replayed as f64 / recover_s
    );
    println!("corrupt lines      : {}", rec.skipped.len());
    println!(
        "state equivalence  : {}",
        if equal {
            "✓ (all {0..n} rollbacks equal)"
        } else {
            "✗"
        }
    );

    // And the cross-backend differential summary, for the record.
    let mut cmds = vec![Command::define_relation("r", RelationType::Rollback)];
    for s in version_chain(32, 50, 0.2) {
        cmds.push(Command::modify_state("r", Expr::snapshot_const(s)));
    }
    let mut all_ok = true;
    for backend in BackendKind::ALL {
        let ok = check_equivalence(&cmds, backend, CheckpointPolicy::every_k(8).unwrap()).is_ok();
        all_ok &= ok;
        println!(
            "backend {:<16} ≡ reference semantics: {}",
            backend.to_string(),
            if ok { "✓" } else { "✗" }
        );
    }
    println!(
        "=> {}\n",
        if all_ok && equal {
            "every physical design is observationally equal to the paper's semantics (§5)"
        } else {
            "DIVERGENCE DETECTED"
        }
    );
    let _ = std::fs::remove_file(&path);
    let _ = Database::empty(); // keep the import honest under cfg changes
}

// --------------------------------------------------------------------
// E12: archival ("migrate rollback relations to tape", §3.1).
// --------------------------------------------------------------------
fn e12_archival() {
    println!("E12. Archival: space reclaimed by migrating old versions out");
    let chain = version_chain(256, 200, 0.1);
    println!(
        "{:<16} {:>14} {:>14} {:>10} {:>10}",
        "backend", "before B", "after B", "reclaim", "archived"
    );
    let dir = std::env::temp_dir().join("txtime-experiments");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    for backend in BackendKind::ALL {
        let mut engine = engine_with_chain(backend, CheckpointPolicy::every_k(32).unwrap(), &chain);
        let before = engine.space_report().total_bytes();
        let path = dir.join(format!("e12-{}-{backend}.txq", std::process::id()));
        let _ = std::fs::remove_file(&path);
        // Archive everything older than the version at mid-history.
        let cutoff = TransactionNumber(129);
        let report = engine
            .archive_before("r", cutoff, Some(&path))
            .expect("archive succeeds");
        let after = engine.space_report().total_bytes();
        println!(
            "{:<16} {:>14} {:>14} {:>9.0}% {:>10}",
            backend.to_string(),
            before,
            after,
            100.0 * (before - after) as f64 / before as f64,
            report.archived
        );
        // The retained half still answers; verify the floor and the head.
        for tx in [129u64, 257] {
            engine
                .resolve_rollback("r", TxSpec::At(TransactionNumber(tx)), false)
                .expect("retained versions answer");
        }
        // The archive replays into a fresh relation.
        let text = format!(
            "define_relation(r, rollback);\n{}",
            std::fs::read_to_string(&path).expect("archive is readable")
        );
        let replayed = txtime_parser::parse_sentence(&text)
            .expect("archive parses")
            .eval()
            .expect("archive replays");
        assert_eq!(
            replayed
                .state
                .lookup("r")
                .expect("relation")
                .versions()
                .len(),
            report.archived
        );
        let _ = std::fs::remove_file(&path);
    }
    println!("=> archived versions replay from the archive script; the live store keeps\n   the floor version, so every retained rollback target is unchanged.\n");
}

// --------------------------------------------------------------------
// E13: parallel execution — worker-pool scaling + batched rollback.
// --------------------------------------------------------------------

/// The partitioned-kernel workloads: constant-leaf queries so evaluation
/// is pure operator work (no rollback resolution in the timed region).
/// Returns (display label, JSON key, query).
fn e13_kernels() -> Vec<(&'static str, &'static str, Expr)> {
    let mut rng = StdRng::seed_from_u64(SEED);
    let schema = bench_schema();
    let big = txtime_snapshot::generate::random_state(&mut rng, &schema, &bench_gen_config(20_000));
    let left = txtime_snapshot::generate::random_state(&mut rng, &schema, &bench_gen_config(300));
    let dept_schema =
        txtime_snapshot::Schema::new(vec![("dno", txtime_snapshot::DomainType::Int)]).unwrap();
    let right =
        txtime_snapshot::generate::random_state(&mut rng, &dept_schema, &bench_gen_config(300));
    let a = txtime_snapshot::generate::random_state(&mut rng, &schema, &bench_gen_config(10_000));
    let b = txtime_snapshot::generate::random_state(&mut rng, &schema, &bench_gen_config(10_000));
    vec![
        (
            "σ keep-half |R|=20000",
            "select_keep_half_20k",
            Expr::snapshot_const(big).select(Predicate::lt_const("id", Value::Int(5000))),
        ),
        (
            "× 300 × 300",
            "product_300x300",
            Expr::snapshot_const(left).product(Expr::snapshot_const(right)),
        ),
        (
            "∪ 10000 ∪ 10000",
            "union_10k_10k",
            Expr::snapshot_const(a).union(Expr::snapshot_const(b)),
        ),
    ]
}

/// Kernel µs/query at each thread budget in `E13_THREADS`.
const E13_THREADS: [usize; 4] = [1, 2, 4, 8];

fn measure_kernel(engine: &mut Engine, q: &Expr) -> [f64; 4] {
    let mut out = [0.0f64; 4];
    for (i, &t) in E13_THREADS.iter().enumerate() {
        engine.set_threads(t);
        out[i] = time_median(|| engine.eval(q).expect("constant query").len(), 5);
    }
    out
}

/// Batched rollback for one delta backend: `resolve_many` over a 16-probe
/// set against per-probe `eval` of the matching ρ. No checkpoints and no
/// cache, so per-probe resolution replays each probe's full chain while
/// the batch replays the shared chain once. Returns
/// (per-probe µs/set, batched µs/set).
fn measure_resolve_batching(backend: BackendKind) -> (f64, f64) {
    let versions = 256usize;
    let chain = version_chain(versions, 200, 0.1);
    let mut engine = engine_with_chain(backend, CheckpointPolicy::Never, &chain);
    // Both paths share one 4-thread pool: the measured gap is pure
    // batching (one shared-chain replay per batch), not thread count.
    engine.set_threads(4);
    engine.set_cache_capacity(0);
    // The view memo would otherwise register the repeated per-probe ρ
    // queries and serve them from cache while `resolve_many` replays the
    // chain for real, driving the reported speedup to ~0.
    engine.set_memo_capacity(0);
    let mut rng = StdRng::seed_from_u64(SEED);
    let probes: Vec<(&str, TxSpec)> = (0..16)
        .map(|_| {
            (
                "r",
                TxSpec::At(TransactionNumber(rng.gen_range(2..versions as u64 + 2))),
            )
        })
        .collect();
    let per_probe = time_median(
        || {
            probes
                .iter()
                .map(|(name, spec)| {
                    engine
                        .eval(&Expr::rollback(*name, *spec))
                        .expect("probe answers")
                        .len()
                })
                .sum::<usize>()
        },
        9,
    );
    let batched = time_median(
        || {
            engine
                .resolve_many(&probes)
                .into_iter()
                .map(|r| r.expect("probe answers").len())
                .sum::<usize>()
        },
        9,
    );
    (per_probe, batched)
}

fn e13_parallel() {
    let avail = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("E13. Parallel execution: worker-pool scaling and batched rollback");
    println!("     (host reports {avail} available core(s); thread budgets are logical)");
    println!("\nE13a. Partitioned-kernel wall time vs thread budget (µs/query)");
    println!(
        "{:<24} {:>10} {:>10} {:>10} {:>10} {:>9}",
        "workload", "1T", "2T", "4T", "8T", "1T/4T"
    );
    let mut engine = Engine::new(
        BackendKind::FullCopy,
        CheckpointPolicy::every_k(16).unwrap(),
    );
    for (label, _, q) in &e13_kernels() {
        let us = measure_kernel(&mut engine, q);
        println!(
            "{:<24} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>8.2}x",
            label,
            us[0],
            us[1],
            us[2],
            us[3],
            us[0] / us[2].max(1e-9)
        );
    }
    println!("\nE13b. Batched rollback: resolve_many over a 16-probe set vs per-probe eval,");
    println!("      256 versions, |R| = 200, no checkpoints, cache off (µs/set)");
    println!(
        "{:<16} {:>12} {:>12} {:>9}",
        "backend", "per-probe", "batched", "speedup"
    );
    for backend in [BackendKind::ForwardDelta, BackendKind::ReverseDelta] {
        let (per_probe, batched) = measure_resolve_batching(backend);
        println!(
            "{:<16} {:>12.1} {:>12.1} {:>8.1}x",
            backend.to_string(),
            per_probe,
            batched,
            per_probe / batched.max(1e-9)
        );
    }
    println!("=> kernel scaling tracks the physical core count (a 1-core host shows ~1x\n   with bounded scheduling overhead); batching is algorithmic — the shared\n   delta chain is replayed once per batch instead of once per probe — so it\n   pays off regardless of core count.\n");
}

// --------------------------------------------------------------------
// bench3: BENCH_3.json with the parallel-execution headline numbers.
// --------------------------------------------------------------------
fn bench3() {
    println!("bench3. Writing BENCH_3.json (e13 scaling + batching, refreshed e10 pushdown)");
    let avail = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let mut kernels = String::new();
    let mut engine = Engine::new(
        BackendKind::FullCopy,
        CheckpointPolicy::every_k(16).unwrap(),
    );
    for (i, (_, key, q)) in e13_kernels().iter().enumerate() {
        let us = measure_kernel(&mut engine, q);
        if i > 0 {
            kernels.push_str(", ");
        }
        // host_cores rides along in every entry so downstream checks can
        // judge each scaling number against the parallelism that was
        // actually available when it was measured.
        kernels.push_str(&format!(
            "\"{key}\": {{\"t1_us\": {:.1}, \"t2_us\": {:.1}, \"t4_us\": {:.1}, \
             \"t8_us\": {:.1}, \"speedup_4t\": {:.2}, \"host_cores\": {avail}}}",
            us[0],
            us[1],
            us[2],
            us[3],
            us[0] / us[2].max(1e-9)
        ));
    }

    let mut batching = String::new();
    for (i, backend) in [BackendKind::ForwardDelta, BackendKind::ReverseDelta]
        .into_iter()
        .enumerate()
    {
        let (per_probe, batched) = measure_resolve_batching(backend);
        if i > 0 {
            batching.push_str(", ");
        }
        batching.push_str(&format!(
            "\"{backend}\": {{\"per_probe_us\": {per_probe:.1}, \"batched_us\": {batched:.1}, \
             \"speedup\": {:.1}}}",
            per_probe / batched.max(1e-9)
        ));
    }

    let mut e10_pushdown = String::new();
    for (i, backend) in [BackendKind::TupleTimestamp, BackendKind::ForwardDelta]
        .into_iter()
        .enumerate()
    {
        let (materialized, pushed) = measure_pushdown(backend);
        if i > 0 {
            e10_pushdown.push_str(", ");
        }
        e10_pushdown.push_str(&format!(
            "\"{backend}\": {{\"materialized_us\": {materialized:.1}, \"pushed_us\": {pushed:.1}, \
             \"speedup\": {:.1}}}",
            materialized / pushed.max(1e-9)
        ));
    }

    let json = format!(
        "{{\n  \"seed\": \"{SEED:#x}\",\n  \
         \"host_cores\": {avail},\n  \
         \"e13_kernel_scaling\": {{{kernels}}},\n  \
         \"e13_resolve_many_batching\": {{{batching}}},\n  \
         \"e10_pushdown_sigma_over_rho\": {{{e10_pushdown}}}\n}}\n"
    );
    std::fs::write("BENCH_3.json", &json).expect("write BENCH_3.json");
    println!("{json}");
}

// --------------------------------------------------------------------
// E14: sorted-run layout vs the BTree layout it replaced.
// --------------------------------------------------------------------

/// Two union-compatible operands of cardinality `n` over [`bench_schema`]
/// plus their BTree-reference twins (conversion cost excluded from every
/// timing below).
fn e14_operands(n: usize) -> (SnapshotState, SnapshotState, RefSnapshot, RefSnapshot) {
    let mut rng = StdRng::seed_from_u64(SEED);
    let schema = bench_schema();
    let cfg = bench_gen_config(n);
    let a = random_state(&mut rng, &schema, &cfg);
    let b = random_state(&mut rng, &schema, &cfg);
    let (ra, rb) = (RefSnapshot::from_state(&a), RefSnapshot::from_state(&b));
    (a, b, ra, rb)
}

/// `(op, json key, btree µs, sorted µs)` rows at cardinality `n`.
fn measure_sorted_run_ops(n: usize) -> Vec<(&'static str, String, f64, f64)> {
    let (a, b, ra, rb) = e14_operands(n);
    let reps = if n >= 100_000 { 5 } else { 11 };
    vec![
        (
            "union",
            format!("union_{n}"),
            time_median(|| ra.union(&rb).unwrap().len(), reps),
            time_median(|| a.union(&b).unwrap().len(), reps),
        ),
        (
            "difference",
            format!("difference_{n}"),
            time_median(|| ra.difference(&rb).unwrap().len(), reps),
            time_median(|| a.difference(&b).unwrap().len(), reps),
        ),
        (
            "project",
            format!("project_{n}"),
            time_median(|| ra.project(&["id", "grade"]).unwrap().len(), reps),
            time_median(|| a.project(&["id", "grade"]).unwrap().len(), reps),
        ),
    ]
}

/// Forward-delta replay over a `versions`-long chain: per-element BTree
/// replay vs the merge-based `apply_in_place`. Returns (btree µs,
/// sorted µs) for replaying the whole chain.
fn measure_delta_replay(versions: usize) -> (f64, f64) {
    let chain = version_chain(versions, 200, 0.1);
    let deltas: Vec<StateDelta> = chain
        .windows(2)
        .map(|w| {
            StateDelta::between(
                &StateValue::Snapshot(w[0].clone()),
                &StateValue::Snapshot(w[1].clone()),
            )
        })
        .collect();
    const REPS: usize = 21;
    let base = StateValue::Snapshot(chain[0].clone());
    let sorted = time_median(
        || {
            let mut working = base.clone();
            for d in &deltas {
                d.apply_in_place(&mut working);
            }
            working.len()
        },
        REPS,
    );
    let ref_base = RefSnapshot::from_state(&chain[0]);
    let btree = time_median(
        || {
            // The BTree-era replay was persistent: `StateDelta::apply`
            // cloned the base's tree and produced a fresh state per step.
            let mut working = ref_base.clone();
            for d in &deltas {
                match d {
                    StateDelta::Snapshot { added, removed } => {
                        let mut next = working.clone();
                        next.apply_delta(removed, added).unwrap();
                        working = next;
                    }
                    _ => unreachable!("a snapshot chain only yields snapshot deltas"),
                }
            }
            working.len()
        },
        REPS,
    );
    (btree, sorted)
}

fn e14_sorted_runs() {
    println!("E14. Sorted-run layout: merge kernels vs the retained BTree layout");
    println!("\nE14a. Set operations, identical seeded operands (µs/op)");
    println!(
        "{:<12} {:>9} {:>12} {:>12} {:>9}",
        "op", "tuples", "btree", "sorted", "speedup"
    );
    for n in [10_000usize, 100_000] {
        for (op, _, btree, sorted) in measure_sorted_run_ops(n) {
            println!(
                "{:<12} {:>9} {:>12.1} {:>12.1} {:>8.2}x",
                op,
                n,
                btree,
                sorted,
                btree / sorted.max(1e-9)
            );
        }
    }
    println!("\nE14b. Forward-delta replay, 1024 versions, |R| = 200, churn 0.1 (µs/chain)");
    println!(
        "{:<16} {:>12} {:>12} {:>9}",
        "replay", "btree", "sorted", "speedup"
    );
    let (btree, sorted) = measure_delta_replay(1024);
    println!(
        "{:<16} {:>12.1} {:>12.1} {:>8.2}x",
        "full chain",
        btree,
        sorted,
        btree / sorted.max(1e-9)
    );
    println!("=> merge kernels stream two sorted runs once instead of issuing one tree\n   insert per tuple; replay edits one uniquely-owned run in place (galloping\n   event location plus compare-free swaps), where the BTree-era replay cloned\n   a full tree per version — per-version allocation drops to zero.\n");
}

// --------------------------------------------------------------------
// bench4: BENCH_4.json with the sorted-run headline numbers.
// --------------------------------------------------------------------
fn bench4() {
    println!("bench4. Writing BENCH_4.json (sorted-run kernels vs BTree layout)");
    let mut set_ops = String::new();
    for n in [10_000usize, 100_000] {
        for (_, key, btree, sorted) in measure_sorted_run_ops(n) {
            if !set_ops.is_empty() {
                set_ops.push_str(", ");
            }
            set_ops.push_str(&format!(
                "\"{key}\": {{\"btree_us\": {btree:.1}, \"sorted_us\": {sorted:.1}, \
                 \"speedup\": {:.2}}}",
                btree / sorted.max(1e-9)
            ));
        }
    }
    let (btree, sorted) = measure_delta_replay(1024);
    let json = format!(
        "{{\n  \"seed\": \"{SEED:#x}\",\n  \
         \"e14_set_ops\": {{{set_ops}}},\n  \
         \"e14_forward_replay_at_1024_versions\": {{\"btree_us\": {btree:.1}, \
         \"sorted_us\": {sorted:.1}, \"speedup\": {:.2}}}\n}}\n",
        btree / sorted.max(1e-9)
    );
    std::fs::write("BENCH_4.json", &json).expect("write BENCH_4.json");
    println!("{json}");
}

// --------------------------------------------------------------------
// E15: incremental re-evaluation — view memo + delta propagation.
// --------------------------------------------------------------------

/// The repeated query of experiment E15: a three-leaf expression over
/// two 10k-tuple rollback relations that exercises the σ, − and ∪ delta
/// rules at once.
fn e15_query() -> Expr {
    Expr::current("r1")
        .select(Predicate::lt_const("grade", Value::Int(5000)))
        .union(Expr::current("r2").difference(Expr::current("r1")))
}

/// Two engines loaded with identical 10k-tuple relations r1/r2: the
/// engine under test (memo on, registering on first evaluation) and the
/// from-scratch oracle (memo disabled). Returns them with the current
/// r1 state so callers can mutate it further.
fn e15_setup(backend: BackendKind) -> (Engine, Engine, SnapshotState) {
    let mut rng = StdRng::seed_from_u64(SEED);
    let schema = bench_schema();
    let cfg = bench_gen_config(10_000);
    let r1 = random_state(&mut rng, &schema, &cfg);
    let r2 = random_state(&mut rng, &schema, &cfg);
    let cmds = vec![
        Command::define_relation("r1", RelationType::Rollback),
        Command::define_relation("r2", RelationType::Rollback),
        Command::modify_state("r1", Expr::snapshot_const(r1.clone())),
        Command::modify_state("r2", Expr::snapshot_const(r2)),
    ];
    let mut memo = Engine::new(backend, CheckpointPolicy::every_k(16).unwrap());
    memo.set_memo_register_after(1);
    let mut plain = Engine::new(backend, CheckpointPolicy::every_k(16).unwrap());
    plain.set_memo_capacity(0);
    for c in &cmds {
        memo.execute(c).expect("e15 setup");
        plain.execute(c).expect("e15 setup");
    }
    (memo, plain, r1)
}

/// The repeated-query headline: from-scratch evaluation vs a memo hit
/// on the three-operator query, plus the same warmed as-of ρ probe
/// answered both ways — by the memo (memo engine) and by the PR-2
/// materialization cache (memo-disabled engine) — as the
/// apples-to-apples latency comparison the memo must stay within 2× of.
/// Returns (cold µs, memo-hit µs, probe memo-hit µs, probe cache-hit µs).
fn measure_e15_repeated() -> (f64, f64, f64, f64) {
    // Forward-delta: the backend where both the PR-2 cache and the memo
    // answer probes that would otherwise replay a delta chain.
    let (memo, plain, r1) = e15_setup(BackendKind::ForwardDelta);
    let mut memo = memo;
    let mut plain = plain;
    // Grow a few more versions of r1 so the as-of probe below replays
    // when missed and the cache genuinely serves hits.
    let mut rng = StdRng::seed_from_u64(SEED ^ 0xE15);
    let cfg = bench_gen_config(10_000);
    let mut state = r1;
    for _ in 0..6 {
        state = mutate_state(&mut rng, &state, &cfg, 0.05);
        let cmd = Command::modify_state("r1", Expr::snapshot_const(state.clone()));
        memo.execute(&cmd).expect("e15 version");
        plain.execute(&cmd).expect("e15 version");
    }
    let q = e15_query();
    let cold = time_median(|| plain.eval(&q).expect("e15 query").len(), 9);
    memo.eval(&q).expect("e15 register");
    let hit = time_median(|| memo.eval(&q).expect("e15 query").len(), 9);
    assert!(
        memo.memo_stats().hits > 0,
        "E15 repeated query never hit the memo"
    );
    // The PR-2 baseline: the same warmed as-of probe, answered by the
    // materialization cache on the memo-disabled engine and by the view
    // memo on the memo engine.
    let probe = Expr::rollback("r1", TxSpec::At(TransactionNumber(5)));
    plain.eval(&probe).expect("warm the cache");
    let probe_cache = time_median(|| plain.eval(&probe).expect("e15 probe").len(), 9);
    memo.eval(&probe).expect("register the probe");
    let probe_memo = time_median(|| memo.eval(&probe).expect("e15 probe").len(), 9);
    (cold, hit, probe_memo, probe_cache)
}

/// One delta-sweep row: mutate `churn` of r1, then re-evaluate the
/// registered query on both engines. Returns (median changed tuples per
/// modification, scratch re-eval µs, memo re-eval µs, scratch modify µs,
/// memo modify µs) — the memo's modify time includes computing the
/// `StateDelta` and propagating it through every cached view, which is
/// exactly the work the cheap re-evaluation buys.
fn measure_e15_delta(churn: f64) -> (u64, f64, f64, f64, f64) {
    const REPS: usize = 9;
    // Full-copy: current-state resolution is a plain clone on both
    // engines, so the from-scratch side pays only operator work — the
    // conservative comparison for the propagation speedup.
    let (mut memo, mut plain, mut r1) = e15_setup(BackendKind::FullCopy);
    let q = e15_query();
    memo.eval(&q).expect("e15 register");
    memo.eval(&q).expect("e15 warm");
    plain.eval(&q).expect("e15 scratch");
    let mut rng = StdRng::seed_from_u64(SEED ^ 0xDE17A);
    let cfg = bench_gen_config(10_000);
    let mut changes = Vec::with_capacity(REPS);
    let (mut m_mod, mut m_eval, mut p_mod, mut p_eval) =
        (Vec::new(), Vec::new(), Vec::new(), Vec::new());
    let timed = |f: &mut dyn FnMut() -> usize, out: &mut Vec<f64>| {
        let t = Instant::now();
        let sink = f();
        out.push(t.elapsed().as_secs_f64() * 1e6);
        std::hint::black_box(sink);
    };
    for _ in 0..REPS {
        let next = mutate_state(&mut rng, &r1, &cfg, churn);
        let delta = StateDelta::between(
            &StateValue::Snapshot(r1.clone()),
            &StateValue::Snapshot(next.clone()),
        );
        changes.push(delta.change_count() as u64);
        let cmd = Command::modify_state("r1", Expr::snapshot_const(next.clone()));
        timed(
            &mut || memo.execute(&cmd).map(|_| 1usize).expect("e15 modify"),
            &mut m_mod,
        );
        timed(
            &mut || memo.eval(&q).expect("e15 re-eval").len(),
            &mut m_eval,
        );
        timed(
            &mut || plain.execute(&cmd).map(|_| 1usize).expect("e15 modify"),
            &mut p_mod,
        );
        timed(
            &mut || plain.eval(&q).expect("e15 re-eval").len(),
            &mut p_eval,
        );
        r1 = next;
    }
    assert!(
        memo.memo_stats().propagations > 0,
        "E15 delta sweep never propagated"
    );
    let med = |mut v: Vec<f64>| {
        v.sort_by(f64::total_cmp);
        v[v.len() / 2]
    };
    changes.sort_unstable();
    (
        changes[REPS / 2],
        med(p_eval),
        med(m_eval),
        med(p_mod),
        med(m_mod),
    )
}

/// The delta-size sweep as (label, churn) pairs over 10k-tuple inputs.
const E15_SWEEP: [(&str, f64); 3] = [("~1", 0.0001), ("~16", 0.0016), ("~256", 0.0256)];

fn e15_incremental() {
    println!("E15. Incremental re-evaluation: hash-consed view memo + delta propagation");
    println!("\nE15a. Repeated query σ(ρ(r1,∞)) ∪ (ρ(r2,∞) − ρ(r1,∞)), |r1|=|r2|=10k,");
    println!("      forward-delta backend (µs/eval)");
    let (cold, hit, probe_memo, probe_cache) = measure_e15_repeated();
    println!("{:<28} {:>12.1}", "cold (memo off)", cold);
    println!(
        "{:<28} {:>12.1} {:>8.1}x vs cold",
        "memo hit",
        hit,
        cold / hit.max(1e-9)
    );
    println!(
        "{:<28} {:>12.1} vs {:.1} from the PR-2 cache ({:.2}x)",
        "warmed ρ probe via memo",
        probe_memo,
        probe_cache,
        probe_memo / probe_cache.max(1e-9)
    );
    println!("\nE15b. Re-evaluation after modify_state(r1), full-copy backend (µs);");
    println!("      memo modify includes delta computation and view propagation");
    println!(
        "{:<8} {:>9} {:>13} {:>11} {:>9} {:>13} {:>11}",
        "delta", "changes", "scratch-eval", "memo-eval", "speedup", "scratch-mod", "memo-mod"
    );
    for (label, churn) in E15_SWEEP {
        let (changes, p_eval, m_eval, p_mod, m_mod) = measure_e15_delta(churn);
        println!(
            "{:<8} {:>9} {:>13.1} {:>11.1} {:>8.1}x {:>13.1} {:>11.1}",
            label,
            changes,
            p_eval,
            m_eval,
            p_eval / m_eval.max(1e-9),
            p_mod,
            m_mod
        );
    }
    println!("=> a registered view is maintained at write time by per-operator delta\n   rules (σ̂/π̂/∪̂/−̂ merge kernels over the sorted runs), so re-reading it\n   after a small change costs a stamp check instead of an operator tree;\n   × and δ fall back to targeted recomputation past the cost threshold.\n");
}

// --------------------------------------------------------------------
// bench5: BENCH_5.json with the view-memo headline numbers.
// --------------------------------------------------------------------
fn bench5() {
    println!("bench5. Writing BENCH_5.json (view memo: cold vs hit vs delta-propagated)");
    let (cold, hit, probe_memo, probe_cache) = measure_e15_repeated();
    let mut sweep = String::new();
    let mut small_delta_speedup = 0.0f64;
    for (i, (label, churn)) in E15_SWEEP.iter().enumerate() {
        let (changes, p_eval, m_eval, p_mod, m_mod) = measure_e15_delta(*churn);
        let speedup = p_eval / m_eval.max(1e-9);
        if *label == "~16" {
            small_delta_speedup = speedup;
        }
        // Write amplification guard: queuing a pending span on
        // modify_state is O(1), so a memoized write must stay within an
        // order of magnitude of the memo-disabled write. (Before the
        // lazy queue, propagation ran inline and this ratio was ~2000x.)
        assert!(
            m_mod <= 10.0 * p_mod.max(1.0),
            "view-memo write amplification regressed at delta {label}: \
             memo_modify_us {m_mod:.1} > 10x scratch_modify_us {p_mod:.1}"
        );
        if i > 0 {
            sweep.push_str(", ");
        }
        let key = label.trim_start_matches('~');
        sweep.push_str(&format!(
            "\"delta_{key}\": {{\"changes\": {changes}, \"scratch_reeval_us\": {p_eval:.1}, \
             \"memo_reeval_us\": {m_eval:.1}, \"speedup\": {speedup:.1}, \
             \"scratch_modify_us\": {p_mod:.1}, \"memo_modify_us\": {m_mod:.1}}}"
        ));
    }
    let json = format!(
        "{{\n  \"seed\": \"{SEED:#x}\",\n  \
         \"e15_repeated_query\": {{\"cold_us\": {cold:.1}, \"memo_hit_us\": {hit:.1}, \
         \"probe_memo_hit_us\": {probe_memo:.1}, \"probe_cache_hit_us\": {probe_cache:.1}, \
         \"memo_hit_vs_cold\": {:.1}}},\n  \
         \"e15_delta_propagation\": {{{sweep}}},\n  \
         \"headline\": {{\"small_delta_speedup\": {small_delta_speedup:.1}, \
         \"memo_hit_vs_cache_hit\": {:.2}}}\n}}\n",
        cold / hit.max(1e-9),
        probe_memo / probe_cache.max(1e-9)
    );
    std::fs::write("BENCH_5.json", &json).expect("write BENCH_5.json");
    println!("{json}");
}

// --------------------------------------------------------------------
// E16: sharded states — σ-kernel scaling and LSM-style compaction.
// --------------------------------------------------------------------

/// The shard budgets the scaling sweep measures.
const E16_SHARDS: [usize; 4] = [1, 2, 4, 8];

/// σ over the current state of a 100k-tuple relation at 1/2/4/8 shards
/// with an 8-thread budget (clamped to the host). Each shard holds its
/// own sorted runs, so the filter fans out with zero intra-kernel
/// coordination and the per-shard survivors merge once at the end.
fn measure_sigma_shards() -> [f64; 4] {
    let chain = version_chain(2, 100_000, 0.05);
    // ~5% selectivity: the scan parallelizes across shards while the
    // single serial merge of survivors stays small.
    let q = Expr::current("r").select(Predicate::lt_const("grade", Value::Int(500)));
    let mut out = [0.0f64; 4];
    for (i, shards) in E16_SHARDS.into_iter().enumerate() {
        let mut engine = Engine::new(
            BackendKind::FullCopy,
            CheckpointPolicy::every_k(16).unwrap(),
        );
        engine.set_shards(shards);
        engine.set_threads(8);
        engine
            .execute(&Command::define_relation("r", RelationType::Rollback))
            .expect("fresh engine");
        for s in &chain {
            engine
                .execute(&Command::modify_state("r", Expr::snapshot_const(s.clone())))
                .expect("valid modify");
        }
        // Raw kernel cost: no materialization cache, no view memo.
        engine.set_cache_capacity(0);
        engine.set_memo_capacity(0);
        out[i] = time_median(|| engine.eval(&q).expect("σ probe").len(), 7);
    }
    out
}

/// The reverse-delta worst case — the `old` probe at 1024 versions with
/// no checkpoints — before compaction, after `Engine::compact` with a
/// checkpoint at every slot, and on the depth-insensitive full-copy
/// baseline. Returns (uncompacted µs, compacted µs, full-copy µs,
/// compact-pass µs, deltas folded by the pass).
fn measure_compaction() -> (f64, f64, f64, f64, u64) {
    let versions = 1024usize;
    let chain = version_chain(versions, 200, 0.1);
    let (_, old_tx) = probe_txs(versions)[0];

    let mut engine = Engine::new(BackendKind::ReverseDelta, CheckpointPolicy::Never);
    engine.set_auto_compact(None); // keep the full replay chain as the baseline
    engine
        .execute(&Command::define_relation("r", RelationType::Rollback))
        .expect("fresh engine");
    for s in &chain {
        engine
            .execute(&Command::modify_state("r", Expr::snapshot_const(s.clone())))
            .expect("valid modify");
    }
    engine.set_cache_capacity(0); // raw reconstruction cost, as in E2
    let probe = |e: &Engine| {
        time_median(
            || {
                touch(
                    &e.resolve_rollback("r", TxSpec::At(old_tx), false)
                        .expect("probe answers"),
                )
            },
            9,
        )
    };
    let uncompacted = probe(&engine);

    let t = Instant::now();
    let stats = engine.compact(NonZeroUsize::new(1));
    let compact_us = t.elapsed().as_secs_f64() * 1e6;
    let compacted = probe(&engine);

    let full = engine_with_chain(BackendKind::FullCopy, CheckpointPolicy::Never, &chain);
    full.set_cache_capacity(0);
    let full_copy = probe(&full);
    (
        uncompacted,
        compacted,
        full_copy,
        compact_us,
        stats.deltas_folded as u64,
    )
}

fn e16_sharding() {
    let avail = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("E16. Sharded states: parallel σ kernel and LSM-style compaction");
    println!("     (host reports {avail} available core(s); shard budgets are logical)");
    println!("\nE16a. σ(ρ(r,∞)) over 100k tuples vs shard count, 8-thread budget (µs/query)");
    println!(
        "{:<24} {:>10} {:>10} {:>10} {:>10} {:>9}",
        "workload", "1S", "2S", "4S", "8S", "1S/4S"
    );
    let us = measure_sigma_shards();
    println!(
        "{:<24} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>8.2}x",
        "σ grade<500",
        us[0],
        us[1],
        us[2],
        us[3],
        us[0] / us[2].max(1e-9)
    );
    println!("\nE16b. Reverse-delta `old` probe, 1024 versions, no checkpoints (µs/query)");
    let (uncompacted, compacted, full_copy, compact_us, folded) = measure_compaction();
    println!("{:<28} {:>12.1}", "uncompacted (1023 replays)", uncompacted);
    println!(
        "{:<28} {:>12.1} {:>8.1}x vs uncompacted, {:.2}x full-copy",
        "after compact(every=1)",
        compacted,
        uncompacted / compacted.max(1e-9),
        compacted / full_copy.max(1e-9)
    );
    println!("{:<28} {:>12.1}", "full-copy baseline", full_copy);
    println!(
        "{:<28} {:>12.1} ({folded} deltas folded)",
        "compaction pass", compact_us
    );
    println!("=> each shard owns its delta chain, so kernels fan out with no coordination\n   and the merge kernels recombine survivors once; compaction replays each\n   chain once, pinning checkpoints so later probes seed from a nearby clone\n   instead of replaying the whole history.\n");
}

// --------------------------------------------------------------------
// bench7: BENCH_7.json with the sharding + compaction headline numbers.
// --------------------------------------------------------------------
fn bench7() {
    println!("bench7. Writing BENCH_7.json (σ shard scaling + rev-delta compaction)");
    let avail = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let us = measure_sigma_shards();
    let mut scaling = String::new();
    for (i, shards) in E16_SHARDS.into_iter().enumerate() {
        if i > 0 {
            scaling.push_str(", ");
        }
        scaling.push_str(&format!("\"s{shards}_us\": {:.1}", us[i]));
    }
    // host_cores rides along in every entry so downstream checks can
    // judge each scaling number against the parallelism that was
    // actually available when it was measured.
    let sigma_speedup_4s = us[0] / us[2].max(1e-9);
    scaling.push_str(&format!(
        ", \"speedup_4s\": {sigma_speedup_4s:.2}, \"host_cores\": {avail}"
    ));

    let (uncompacted, compacted, full_copy, compact_us, folded) = measure_compaction();
    let compacted_vs_full_copy = compacted / full_copy.max(1e-9);
    assert!(
        compacted_vs_full_copy <= 10.0,
        "compacted old probe must land within 10x of full-copy, got {compacted_vs_full_copy:.2}x \
         ({compacted:.1}us vs {full_copy:.1}us)"
    );

    let json = format!(
        "{{\n  \"seed\": \"{SEED:#x}\",\n  \
         \"host_cores\": {avail},\n  \
         \"e16_sigma_shard_scaling\": {{{scaling}}},\n  \
         \"e16_compaction_rev_delta_1024_versions\": {{\"uncompacted_old_us\": {uncompacted:.1}, \
         \"compacted_old_us\": {compacted:.1}, \"full_copy_old_us\": {full_copy:.1}, \
         \"compacted_vs_full_copy\": {compacted_vs_full_copy:.2}, \
         \"compact_pass_us\": {compact_us:.1}, \"deltas_folded\": {folded}, \
         \"host_cores\": {avail}}},\n  \
         \"headline\": {{\"compacted_vs_full_copy\": {compacted_vs_full_copy:.2}, \
         \"sigma_speedup_4s\": {sigma_speedup_4s:.2}}}\n}}\n"
    );
    std::fs::write("BENCH_7.json", &json).expect("write BENCH_7.json");
    println!("{json}");
}

// --------------------------------------------------------------------
// E17: cost-based plan search over product-heavy temporal queries.
// --------------------------------------------------------------------

/// Builds the E17 database: three disjoint-scheme rollback relations
/// whose cross product is large (emp × dept × loc = 400·40·25 = 400k
/// rows) while the selective conjunction on top keeps only a handful.
fn e17_engine(level: u8) -> Engine {
    let mut rng = StdRng::seed_from_u64(SEED ^ 0x17);
    let mut engine = Engine::new(
        BackendKind::FullCopy,
        CheckpointPolicy::every_k(16).unwrap(),
    );
    engine.set_optimize(level);
    // The memo would answer repeats from cached views; disable it so
    // every evaluation measures the plan, not the cache.
    engine.set_memo_capacity(0);
    let specs: [(&str, &[(&str, DomainType)], usize); 3] = [
        (
            "emp",
            &[("eno", DomainType::Int), ("esal", DomainType::Int)],
            400,
        ),
        (
            "dept",
            &[("dno", DomainType::Int), ("dsize", DomainType::Int)],
            40,
        ),
        (
            "loc",
            &[("lno", DomainType::Int), ("lcap", DomainType::Int)],
            25,
        ),
    ];
    for (name, attrs, card) in specs {
        let schema = Schema::new(attrs.to_vec()).expect("e17 schema");
        let tuples = (0..card).map(|i| {
            Tuple::new(vec![
                Value::Int(i as i64),
                Value::Int(rng.gen_range(0..100)),
            ])
        });
        let state = SnapshotState::new(schema, tuples).expect("e17 state");
        engine
            .execute(&Command::define_relation(name, RelationType::Rollback))
            .expect("define");
        engine
            .execute(&Command::modify_state(name, Expr::snapshot_const(state)))
            .expect("modify");
    }
    engine
}

/// The product-heavy query: one conjunction over a 3-way cross product,
/// every conjunct pinned to a different operand so the searcher can
/// push each one to its leaf.
fn e17_query() -> Expr {
    let p = Predicate::gt_const("esal", Value::Int(90))
        .and(Predicate::lt_const("dno", Value::Int(4)))
        .and(Predicate::lt_const("lno", Value::Int(3)));
    Expr::rollback("emp", TxSpec::Current)
        .product(Expr::rollback("dept", TxSpec::Current))
        .product(Expr::rollback("loc", TxSpec::Current))
        .select(p)
}

/// (µs/query at level 1, µs/query at level 2, result rows).
fn measure_plan_search() -> (f64, f64, usize) {
    let pushdown = e17_engine(1);
    let searched = e17_engine(2);
    let q = e17_query();
    let a = pushdown.eval(&q).expect("level 1 evaluates");
    let b = searched.eval(&q).expect("level 2 evaluates");
    assert_eq!(a, b, "plan search changed the answer");
    let rows = match &a {
        StateValue::Snapshot(s) => s.tuples().len(),
        _ => 0,
    };
    let us_l1 = time_median(|| touch(&pushdown.eval(&q).expect("level 1")), 9);
    let us_l2 = time_median(|| touch(&searched.eval(&q).expect("level 2")), 9);
    (us_l1, us_l2, rows)
}

fn e17_plan_search() {
    println!("E17. Cost-based plan search: products become filtered joins");
    let (us_l1, us_l2, rows) = measure_plan_search();
    let speedup = us_l1 / us_l2.max(1e-9);
    println!(
        "\nE17a. σ over emp×dept×loc (400·40·25 = 400k product rows, {rows} survive; µs/query)"
    );
    println!("{:<40} {:>12}", "plan", "µs/query");
    println!(
        "{:<40} {:>12.1}",
        "level 1: pushdown only (σ stays on ×)", us_l1
    );
    println!(
        "{:<40} {:>12.1} {:>8.2}x",
        "level 2: cost-based search", us_l2, speedup
    );
    let searched = e17_engine(2);
    println!("\nE17b. the chosen plan (txtime explain):");
    println!("{}", searched.explain(&e17_query()));
    println!(
        "=> the searcher splits the conjunction across the product's operands, so each\n   \
         relation is filtered before the product multiplies cardinalities: the joins\n   \
         see hundreds of rows where the as-written plan materializes 400k.\n"
    );
}

// --------------------------------------------------------------------
// bench8: BENCH_8.json with the plan-search headline numbers.
// --------------------------------------------------------------------
fn bench8() {
    println!("bench8. Writing BENCH_8.json (cost-based plan search headline)");
    let avail = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let (us_l1, us_l2, rows) = measure_plan_search();
    let product_join_speedup = us_l1 / us_l2.max(1e-9);
    // The win is algorithmic (row counts, not cores), so it must hold
    // on any host: the acceptance bar is a 5x cut in query time.
    assert!(
        product_join_speedup >= 5.0,
        "plan search must beat pushdown by 5x on the product workload, got \
         {product_join_speedup:.2}x ({us_l1:.1}us vs {us_l2:.1}us)"
    );
    let searched = e17_engine(2);
    searched.eval(&e17_query()).expect("warm the planner");
    let stats = searched.optimizer_stats();
    let json = format!(
        "{{\n  \"seed\": \"{SEED:#x}\",\n  \
         \"host_cores\": {avail},\n  \
         \"e17_product_join\": {{\"pushdown_us\": {us_l1:.1}, \"searched_us\": {us_l2:.1}, \
         \"result_rows\": {rows}, \"product_rows\": 400000, \
         \"plans_enumerated\": {}, \"groups_memoized\": {}, \"rewrites_fired\": {}, \
         \"host_cores\": {avail}}},\n  \
         \"headline\": {{\"product_join_speedup\": {product_join_speedup:.2}}}\n}}\n",
        stats.totals.plans_enumerated, stats.totals.groups_memoized, stats.totals.rewrites_fired,
    );
    std::fs::write("BENCH_8.json", &json).expect("write BENCH_8.json");
    println!("{json}");
}

// --------------------------------------------------------------------
// E18: physical equi-joins vs product-then-select at 10⁶ product rows.
// --------------------------------------------------------------------

const E18_EMP: usize = 2000;
const E18_DEPT: usize = 500;

/// Builds the E18 database: two disjoint-scheme rollback relations whose
/// cross product is 2000·500 = 10⁶ rows, sharing an integer key (eno and
/// dno are the first attribute of each scheme, so the merge kernel can
/// ride the canonical runs).
fn e18_engine(level: u8) -> Engine {
    let mut rng = StdRng::seed_from_u64(SEED ^ 0x18);
    let mut engine = Engine::new(
        BackendKind::FullCopy,
        CheckpointPolicy::every_k(16).unwrap(),
    );
    engine.set_optimize(level);
    engine.set_memo_capacity(0);
    for (name, attrs, card) in e18_specs() {
        let schema = Schema::new(attrs.to_vec()).expect("e18 schema");
        let tuples = (0..card).map(|i| {
            Tuple::new(vec![
                Value::Int(i as i64),
                Value::Int(rng.gen_range(0..100)),
            ])
        });
        let state = SnapshotState::new(schema, tuples).expect("e18 state");
        engine
            .execute(&Command::define_relation(name, RelationType::Rollback))
            .expect("define");
        engine
            .execute(&Command::modify_state(name, Expr::snapshot_const(state)))
            .expect("modify");
    }
    engine
}

fn e18_specs() -> [(&'static str, &'static [(&'static str, DomainType)], usize); 2] {
    [
        (
            "emp",
            &[("eno", DomainType::Int), ("esal", DomainType::Int)],
            E18_EMP,
        ),
        (
            "dept",
            &[("dno", DomainType::Int), ("dsize", DomainType::Int)],
            E18_DEPT,
        ),
    ]
}

/// The equi-join query: an `eno = dno` key conjunct (which no pushdown
/// rule can move — it straddles both operands) plus a side conjunct the
/// join lowering pushes below the build side.
fn e18_query() -> Expr {
    let p = Predicate::eq_attrs("eno", "dno").and(Predicate::gt_const("esal", Value::Int(50)));
    Expr::rollback("emp", TxSpec::Current)
        .product(Expr::rollback("dept", TxSpec::Current))
        .select(p)
}

/// (µs as written, µs at level 1, µs at level 2, result rows).
fn measure_equi_join() -> (f64, f64, f64, usize) {
    let written = e18_engine(0);
    let pushdown = e18_engine(1);
    let searched = e18_engine(2);
    let q = e18_query();
    let a = written.eval(&q).expect("level 0 evaluates");
    let b = pushdown.eval(&q).expect("level 1 evaluates");
    let c = searched.eval(&q).expect("level 2 evaluates");
    assert_eq!(a, b, "pushdown changed the answer");
    assert_eq!(a, c, "plan search changed the answer");
    let rows = match &a {
        StateValue::Snapshot(s) => s.tuples().len(),
        _ => 0,
    };
    // The product legs materialize 10⁶ concatenated tuples per query:
    // fewer reps keep the harness's wall time civil.
    let us_l0 = time_median(|| touch(&written.eval(&q).expect("level 0")), 5);
    let us_l1 = time_median(|| touch(&pushdown.eval(&q).expect("level 1")), 5);
    let us_l2 = time_median(|| touch(&searched.eval(&q).expect("level 2")), 9);
    (us_l0, us_l1, us_l2, rows)
}

/// (hash µs, merge µs) for the bare kernels on the E18 states — the
/// plan-independent crossover: merge skips the build phase when the key
/// is the run-order prefix on both sides.
fn measure_join_kernels() -> (f64, f64) {
    use txtime_core::{JoinPhysical, JoinSpec};
    let engine = e18_engine(0);
    let get = |name: &str| match engine.eval(&Expr::current(name)) {
        Ok(StateValue::Snapshot(s)) => s,
        other => panic!("e18 relation {name}: {other:?}"),
    };
    let (emp, dept) = (get("emp"), get("dept"));
    let spec = |physical| JoinSpec {
        keys: vec![("eno".into(), "dno".into())],
        residual: Predicate::gt_const("esal", Value::Int(50)),
        physical,
    };
    let hash = spec(JoinPhysical::Hash);
    let merge = spec(JoinPhysical::Merge);
    assert_eq!(
        emp.equi_join(&dept, &hash).expect("hash join"),
        emp.equi_join(&dept, &merge).expect("merge join"),
        "kernels disagree"
    );
    let hash_us = time_median(|| emp.equi_join(&dept, &hash).expect("hash").len(), 15);
    let merge_us = time_median(|| emp.equi_join(&dept, &merge).expect("merge").len(), 15);
    (hash_us, merge_us)
}

fn e18_physical_joins() {
    println!("E18. Physical equi-joins: hash/merge kernels vs the σ(×) plan");
    let (us_l0, us_l1, us_l2, rows) = measure_equi_join();
    let speedup = us_l1 / us_l2.max(1e-9);
    println!(
        "\nE18a. σ_eno=dno over emp×dept ({E18_EMP}·{E18_DEPT} = 10⁶ product rows, {rows} survive; µs/query)"
    );
    println!("{:<44} {:>12}", "plan", "µs/query");
    println!("{:<44} {:>12.1}", "level 0: as written (σ over ×)", us_l0);
    println!("{:<44} {:>12.1}", "level 1: pushdown (σ stays on ×)", us_l1);
    println!(
        "{:<44} {:>12.1} {:>8.2}x",
        "level 2: search emits a physical join", us_l2, speedup
    );
    let (hash_us, merge_us) = measure_join_kernels();
    println!("\nE18b. bare kernels on the same states (prefix key, µs/join)");
    println!("{:<44} {:>12.1}", "hash (build dept, probe emp)", hash_us);
    println!(
        "{:<44} {:>12.1}",
        "merge (two-pointer over the runs)", merge_us
    );
    let searched = e18_engine(2);
    println!("\nE18c. the chosen plan (txtime explain):");
    println!("{}", searched.explain(&e18_query()));
    println!(
        "=> the key conjunct straddles both operands, so no selection pushdown can\n   \
         shrink the product; only the join lowering replaces the 10⁶-pair scan with\n   \
         a {E18_DEPT}-row build and a {E18_EMP}-row probe.\n"
    );
}

// --------------------------------------------------------------------
// bench9: BENCH_9.json with the physical-join headline numbers.
// --------------------------------------------------------------------
fn bench9() {
    println!("bench9. Writing BENCH_9.json (physical equi-join headline)");
    let avail = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let (us_l0, us_l1, us_l2, rows) = measure_equi_join();
    let join_speedup = us_l1 / us_l2.max(1e-9);
    // The win is algorithmic — build + probe row counts against the
    // product's |A|·|B| — so it must hold on any host, single-core
    // included: the acceptance bar is a 10x cut in query time.
    assert!(
        join_speedup >= 10.0,
        "the searched join must beat pushdown-over-product by 10x at 10^6 product rows, \
         got {join_speedup:.2}x ({us_l1:.1}us vs {us_l2:.1}us)"
    );
    let (hash_us, merge_us) = measure_join_kernels();
    let json = format!(
        "{{\n  \"seed\": \"{SEED:#x}\",\n  \
         \"host_cores\": {avail},\n  \
         \"e18_equi_join\": {{\"as_written_us\": {us_l0:.1}, \"pushdown_us\": {us_l1:.1}, \
         \"searched_us\": {us_l2:.1}, \"result_rows\": {rows}, \"product_rows\": 1000000, \
         \"host_cores\": {avail}}},\n  \
         \"e18_kernels\": {{\"hash_us\": {hash_us:.1}, \"merge_us\": {merge_us:.1}, \
         \"host_cores\": {avail}}},\n  \
         \"headline\": {{\"join_speedup\": {join_speedup:.2}}}\n}}\n"
    );
    std::fs::write("BENCH_9.json", &json).expect("write BENCH_9.json");
    println!("{json}");
}

// ---------------------------------------------------------------------------
// e19: the multi-session server — group-commit scaling and MVCC read
// latency under write-heavy load (see crates/server and DESIGN.md §14).

/// Where the server benchmarks journal: under `target/` so the fsyncs
/// hit the real disk the build uses, not a tmpfs.
fn e19_wal(tag: &str) -> std::path::PathBuf {
    let dir = std::path::Path::new("target").join("bench10");
    std::fs::create_dir_all(&dir).expect("bench10 dir");
    let path = dir.join(format!("{tag}.wal"));
    let _ = std::fs::remove_file(&path);
    path
}

fn pctl(sorted_us: &[f64], q: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_us.len() as f64 - 1.0) * q).round() as usize;
    sorted_us[idx.min(sorted_us.len() - 1)]
}

struct CommitRun {
    throughput: f64,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
    commits_per_fsync: f64,
}

/// Closed-loop commit workload: `clients` sessions each issue
/// `commits_per_client` small writes to their own relation, one
/// outstanding request per session. Group commit on batches concurrent
/// arrivals into one fsync; off is the per-commit-fsync baseline.
fn e19_commit_run(clients: usize, commits_per_client: usize, group: bool) -> CommitRun {
    use std::sync::{Barrier, Mutex};
    let engine = Engine::new(
        BackendKind::ForwardDelta,
        CheckpointPolicy::every_k(8).unwrap(),
    );
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let cfg = txtime_server::ServerConfig {
        wal_path: Some(e19_wal(&format!(
            "commit-{clients}c-{}",
            if group { "group" } else { "single" }
        ))),
        group_commit: group,
        ..txtime_server::ServerConfig::default()
    };
    let handle = txtime_server::serve(engine, listener, cfg).expect("server starts");
    let addr = handle.addr();

    let start = std::sync::Arc::new(Barrier::new(clients + 1));
    let done = std::sync::Arc::new(Barrier::new(clients + 1));
    let latencies = std::sync::Arc::new(Mutex::new(Vec::<f64>::new()));
    let workers: Vec<_> = (0..clients)
        .map(|i| {
            let start = start.clone();
            let done = done.clone();
            let latencies = latencies.clone();
            std::thread::spawn(move || {
                let mut c = txtime_server::Client::connect(addr).expect("connect");
                let r = c
                    .exec(&format!("define_relation(r{i}, rollback);"))
                    .expect("define");
                assert!(r.is_ok(), "{r:?}");
                let mut local = Vec::with_capacity(commits_per_client);
                start.wait();
                for v in 0..commits_per_client {
                    let cmd = format!("modify_state(r{i}, {{(x: int, v: int): ({i}, {v})}});");
                    let t = Instant::now();
                    let r = c.exec(&cmd).expect("commit");
                    local.push(t.elapsed().as_secs_f64() * 1e6);
                    assert!(r.is_ok(), "{r:?}");
                }
                done.wait();
                latencies.lock().unwrap().extend(local);
            })
        })
        .collect();
    start.wait();
    let t0 = Instant::now();
    done.wait();
    let wall = t0.elapsed().as_secs_f64();
    for w in workers {
        w.join().expect("client panicked");
    }
    handle.shutdown();
    let report = handle.wait();
    let mut lat = latencies.lock().unwrap().clone();
    lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let total = (clients * commits_per_client) as f64;
    assert_eq!(report.group_commit.commits, total as u64 + clients as u64);
    CommitRun {
        throughput: total / wall,
        p50_us: pctl(&lat, 0.50),
        p95_us: pctl(&lat, 0.95),
        p99_us: pctl(&lat, 0.99),
        commits_per_fsync: report.group_commit.commits_per_fsync(),
    }
}

/// Read-latency workload: one reader evaluates a selective query over a
/// 2048-tuple relation `reads` times while `writers` sessions hammer
/// commits. Returns the reader's sorted latencies (µs). The fsync
/// happens outside the engine lock, so write-heavy load should leave
/// read tails nearly untouched — the MVCC claim BENCH_10 gates.
fn e19_read_run(writers: usize, reads: usize) -> Vec<f64> {
    let engine = Engine::new(
        BackendKind::ForwardDelta,
        CheckpointPolicy::every_k(8).unwrap(),
    );
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let cfg = txtime_server::ServerConfig {
        wal_path: Some(e19_wal(&format!("read-{writers}w"))),
        group_commit: true,
        ..txtime_server::ServerConfig::default()
    };
    let handle = txtime_server::serve(engine, listener, cfg).expect("server starts");
    let addr = handle.addr();

    let mut setup = txtime_server::Client::connect(addr).expect("connect");
    assert!(setup
        .exec("define_relation(hot, rollback);")
        .unwrap()
        .is_ok());
    let mut literal = String::from("{(a: int, b: int): ");
    for i in 0..2048 {
        if i > 0 {
            literal.push_str(", ");
        }
        literal.push_str(&format!("({i}, {})", (i * 7) % 1000));
    }
    literal.push('}');
    assert!(setup
        .exec(&format!("modify_state(hot, {literal});"))
        .unwrap()
        .is_ok());

    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let writer_threads: Vec<_> = (0..writers)
        .map(|i| {
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut c = txtime_server::Client::connect(addr).expect("connect");
                let r = c
                    .exec(&format!("define_relation(w{i}, rollback);"))
                    .expect("define");
                assert!(r.is_ok(), "{r:?}");
                let mut v = 0u64;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let r = c
                        .exec(&format!("modify_state(w{i}, {{(x: int): ({v})}});"))
                        .expect("commit");
                    assert!(r.is_ok(), "{r:?}");
                    v += 1;
                }
            })
        })
        .collect();
    // Let the writers reach steady state before sampling reads.
    std::thread::sleep(std::time::Duration::from_millis(50));

    let mut reader = txtime_server::Client::connect(addr).expect("connect");
    let mut lat = Vec::with_capacity(reads);
    for _ in 0..reads {
        let t = Instant::now();
        let r = reader
            .exec("display(select[b > 500](rho(hot, inf)));")
            .expect("read");
        lat.push(t.elapsed().as_secs_f64() * 1e6);
        assert!(r.is_ok(), "{r:?}");
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    for w in writer_threads {
        w.join().expect("writer panicked");
    }
    handle.shutdown();
    handle.wait();
    lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
    lat
}

fn e19_server() {
    println!("e19. txtime serve: group-commit scaling (closed-loop clients, fsync per group vs per commit)");
    println!("    clients  mode    commits/s  p50 us  p95 us  p99 us  commits/fsync");
    for clients in [1, 2, 4, 8] {
        for group in [false, true] {
            let run = e19_commit_run(clients, 150, group);
            println!(
                "    {clients:>7}  {:<6}  {:>9.0}  {:>6.0}  {:>6.0}  {:>6.0}  {:>13.2}",
                if group { "group" } else { "single" },
                run.throughput,
                run.p50_us,
                run.p95_us,
                run.p99_us,
                run.commits_per_fsync
            );
        }
    }
    println!("\n    snapshot read latency over 2048 tuples (1 reader, group commit on)");
    println!("    writers  p50 us  p95 us  p99 us");
    for writers in [0, 7] {
        let lat = e19_read_run(writers, 300);
        println!(
            "    {writers:>7}  {:>6.0}  {:>6.0}  {:>6.0}",
            pctl(&lat, 0.50),
            pctl(&lat, 0.95),
            pctl(&lat, 0.99)
        );
    }
    println!();
}

// bench10: BENCH_10.json with the server headline numbers
// (explicit-only arm).
fn bench10() {
    println!("bench10. Writing BENCH_10.json (e19 server group-commit headline)");
    let avail = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let mut scaling = String::new();
    let mut tput_8_group = 0.0;
    let mut tput_8_single = 0.0;
    let mut cpf_8_group = 0.0;
    for clients in [1, 2, 4, 8] {
        for group in [false, true] {
            let run = e19_commit_run(clients, 150, group);
            if clients == 8 {
                if group {
                    tput_8_group = run.throughput;
                    cpf_8_group = run.commits_per_fsync;
                } else {
                    tput_8_single = run.throughput;
                }
            }
            if !scaling.is_empty() {
                scaling.push_str(", ");
            }
            scaling.push_str(&format!(
                "{{\"clients\": {clients}, \"group_commit\": {group}, \
                 \"commits_per_sec\": {:.0}, \"p50_us\": {:.0}, \"p95_us\": {:.0}, \
                 \"p99_us\": {:.0}, \"commits_per_fsync\": {:.2}, \"host_cores\": {avail}}}",
                run.throughput, run.p50_us, run.p95_us, run.p99_us, run.commits_per_fsync
            ));
        }
    }
    let speedup = tput_8_group / tput_8_single.max(1e-9);
    // Unconditional witnesses — true on any host, any core count:
    // batches actually form (the fsync count drops below the commit
    // count), and amortizing the fsync beats paying it per commit.
    assert!(
        cpf_8_group >= 2.0,
        "group commit never batched at 8 clients: {cpf_8_group:.2} commits/fsync"
    );
    assert!(
        speedup >= 1.25,
        "group commit must beat per-commit fsync at 8 clients, \
         got {speedup:.2}x ({tput_8_group:.0}/s vs {tput_8_single:.0}/s)"
    );
    // The 3x scaling claim needs enough cores that group mode is
    // fsync-bound rather than CPU-bound; on a 1-core host every mode
    // converges on the same CPU ceiling. Gate it on host_cores, and
    // record host_cores in every BENCH_10 entry so downstream checks
    // (CI's bench-assert step) can apply the same gate.
    if avail >= 4 {
        assert!(
            speedup >= 3.0,
            "group commit must beat per-commit fsync by 3x at 8 clients \
             on a {avail}-core host, got {speedup:.2}x \
             ({tput_8_group:.0}/s vs {tput_8_single:.0}/s)"
        );
    } else {
        println!(
            "    SKIP strict 3x gate: host has {avail} core(s); \
             measured {speedup:.2}x ({cpf_8_group:.2} commits/fsync)"
        );
    }

    let idle = e19_read_run(0, 300);
    let heavy = e19_read_run(7, 300);
    let (idle_p95, heavy_p95) = (pctl(&idle, 0.95), pctl(&heavy, 0.95));
    // Snapshot reads never wait on a group fsync (it happens outside the
    // engine lock). Unconditional witness: if readers were blocked
    // behind fsyncs the heavy tail would sit at multiple group-flush
    // periods (several ms); 8x idle with a 2ms floor catches that
    // regression while tolerating pure CPU timesharing.
    assert!(
        heavy_p95 <= (8.0 * idle_p95).max(2000.0),
        "read p95 under 7 writers suggests reads block on the commit \
         path: {heavy_p95:.0}us vs idle {idle_p95:.0}us"
    );
    // The tight ratio is a parallelism claim: it holds when the reader
    // does not timeshare one core with 7 writers. The 300us floor
    // absorbs scheduler jitter on sub-100us baselines.
    let read_bound = (1.5 * idle_p95).max(300.0);
    if avail >= 4 {
        assert!(
            heavy_p95 <= read_bound,
            "read p95 under 7 writers must stay within 1.5x of idle \
             (floor 300us) on a {avail}-core host, \
             got {heavy_p95:.0}us vs idle {idle_p95:.0}us"
        );
    } else {
        println!(
            "    SKIP strict read-tail gate: host has {avail} core(s); \
             measured {heavy_p95:.0}us vs idle {idle_p95:.0}us"
        );
    }

    let json = format!(
        "{{\n  \"seed\": \"{SEED:#x}\",\n  \
         \"host_cores\": {avail},\n  \
         \"e19_commit_scaling\": [{scaling}],\n  \
         \"e19_read_latency\": {{\"idle_p50_us\": {:.0}, \"idle_p95_us\": {idle_p95:.0}, \
         \"heavy_p50_us\": {:.0}, \"heavy_p95_us\": {heavy_p95:.0}, \"writers\": 7, \
         \"host_cores\": {avail}}},\n  \
         \"headline\": {{\"group_commit_speedup_8c\": {speedup:.2}, \
         \"read_p95_ratio\": {:.2}}}\n}}\n",
        pctl(&idle, 0.50),
        pctl(&heavy, 0.50),
        heavy_p95 / idle_p95.max(1e-9),
    );
    std::fs::write("BENCH_10.json", &json).expect("write BENCH_10.json");
    println!("{json}");
}
