#![warn(missing_docs)]

//! Shared workload builders for the benchmarks and the experiment
//! harness.
//!
//! Every experiment in EXPERIMENTS.md is driven by workloads built here,
//! so the Criterion benches and the table-printing `experiments` binary
//! measure the same thing. All generation is seeded — run-to-run results
//! use identical data.

use txtime_snapshot::rng::rngs::StdRng;
use txtime_snapshot::rng::SeedableRng;

use txtime_core::{Command, Expr, RelationType, StateValue, TransactionNumber};
use txtime_historical::generate::{random_historical_state, HistGenConfig};
use txtime_historical::HistoricalState;
use txtime_snapshot::generate::{mutate_state, random_state, GenConfig};
use txtime_snapshot::{DomainType, Schema, SnapshotState};
use txtime_storage::{BackendKind, CheckpointPolicy, Engine};

/// The fixed seed for every workload (reproducibility).
pub const SEED: u64 = 0x5EED_1987;

/// The value scheme used by the snapshot workloads.
pub fn bench_schema() -> Schema {
    Schema::new(vec![
        ("id", DomainType::Int),
        ("name", DomainType::Str),
        ("grade", DomainType::Int),
    ])
    .unwrap()
}

/// Generation parameters sized for benchmarking.
pub fn bench_gen_config(cardinality: usize) -> GenConfig {
    GenConfig {
        arity: 3,
        cardinality,
        int_range: 10_000,
        str_pool: 64,
    }
}

/// A chain of `versions` successive snapshot states over
/// [`bench_schema`], each mutating `churn` of the previous.
pub fn version_chain(versions: usize, cardinality: usize, churn: f64) -> Vec<SnapshotState> {
    let mut rng = StdRng::seed_from_u64(SEED);
    let cfg = bench_gen_config(cardinality);
    let schema = bench_schema();
    let mut out = Vec::with_capacity(versions);
    let mut state = random_state(&mut rng, &schema, &cfg);
    for _ in 0..versions {
        out.push(state.clone());
        state = mutate_state(&mut rng, &state, &cfg, churn);
    }
    out
}

/// Loads a version chain into an engine as rollback relation `"r"`.
pub fn engine_with_chain(
    backend: BackendKind,
    checkpoints: CheckpointPolicy,
    chain: &[SnapshotState],
) -> Engine {
    let mut e = Engine::new(backend, checkpoints);
    e.execute(&Command::define_relation("r", RelationType::Rollback))
        .expect("fresh engine");
    for s in chain {
        e.execute(&Command::modify_state("r", Expr::snapshot_const(s.clone())))
            .expect("valid modify");
    }
    e
}

/// A chain of historical states for temporal workloads (E5/E6).
pub fn historical_chain(versions: usize, cardinality: usize) -> Vec<HistoricalState> {
    let mut rng = StdRng::seed_from_u64(SEED);
    let cfg = HistGenConfig {
        values: bench_gen_config(cardinality),
        horizon: 1_000,
        max_periods: 3,
    };
    (0..versions)
        .map(|_| random_historical_state(&mut rng, &bench_schema(), &cfg))
        .collect()
}

/// Loads an historical chain into an engine as temporal relation `"t"`.
pub fn engine_with_temporal(backend: BackendKind, chain: &[HistoricalState]) -> Engine {
    let mut e = Engine::new(backend, CheckpointPolicy::every_k(16).unwrap());
    e.execute(&Command::define_relation("t", RelationType::Temporal))
        .expect("fresh engine");
    for h in chain {
        e.execute(&Command::modify_state(
            "t",
            Expr::historical_const(h.clone()),
        ))
        .expect("valid modify");
    }
    e
}

/// The transaction numbers that probe "old / middle / recent" targets in
/// a store whose versions committed at tx 2..=versions+1.
pub fn probe_txs(versions: usize) -> [(&'static str, TransactionNumber); 3] {
    [
        ("old", TransactionNumber(2)),
        ("mid", TransactionNumber(versions as u64 / 2 + 1)),
        ("recent", TransactionNumber(versions as u64 + 1)),
    ]
}

/// Materializes a rollback state, returning its cardinality (a cheap
/// "use" that defeats dead-code elimination without criterion).
pub fn touch(state: &StateValue) -> usize {
    state.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use txtime_core::TxSpec;

    #[test]
    fn version_chain_has_requested_shape() {
        let chain = version_chain(10, 50, 0.1);
        assert_eq!(chain.len(), 10);
        assert!(chain.iter().all(|s| s.schema() == &bench_schema()));
    }

    #[test]
    fn engine_loads_and_answers() {
        let chain = version_chain(8, 20, 0.2);
        for backend in BackendKind::ALL {
            let e = engine_with_chain(backend, CheckpointPolicy::every_k(4).unwrap(), &chain);
            for (_, tx) in probe_txs(8) {
                let s = e
                    .eval(&Expr::rollback("r", TxSpec::At(tx)))
                    .expect("probe answers");
                assert!(touch(&s) <= 20 + 8); // churn adds at most 1/version
            }
        }
    }

    #[test]
    fn temporal_engine_loads() {
        let chain = historical_chain(5, 20);
        let e = engine_with_temporal(BackendKind::FullCopy, &chain);
        assert!(e.eval(&Expr::hcurrent("t")).is_ok());
    }
}
