//! E8: concurrent transaction throughput and restart overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use txtime_snapshot::rng::rngs::StdRng;
use txtime_snapshot::rng::{Rng, SeedableRng};

use txtime_bench::{version_chain, SEED};
use txtime_core::{Command, Database, Expr, RelationType, Sentence};
use txtime_txn::{ConcurrentManager, Transaction};

fn setup(relations: usize) -> Database {
    let mut cmds = Vec::new();
    for r in 0..relations {
        cmds.push(Command::define_relation(
            format!("r{r}"),
            RelationType::Rollback,
        ));
        cmds.push(Command::modify_state(
            format!("r{r}"),
            Expr::snapshot_const(version_chain(1, 10, 0.0).pop().unwrap()),
        ));
    }
    Sentence::new(cmds).unwrap().eval().unwrap()
}

fn transactions(relations: usize, count: u64) -> Vec<Transaction> {
    let mut rng = StdRng::seed_from_u64(SEED);
    (1..=count)
        .map(|id| {
            let r = format!("r{}", rng.gen_range(0..relations));
            Transaction::new(
                id,
                vec![Command::modify_state(
                    r.clone(),
                    Expr::current(r).union(Expr::snapshot_const(
                        version_chain(1, 1, 0.0).pop().unwrap(),
                    )),
                )],
            )
        })
        .collect()
}

fn bench_concurrency(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_concurrency");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    for (workload, relations) in [("conflict", 1usize), ("disjoint", 16)] {
        let initial = setup(relations);
        let txns = transactions(relations, 64);
        for threads in [1usize, 4] {
            group.bench_with_input(
                BenchmarkId::new(workload, threads),
                &threads,
                |b, &threads| {
                    b.iter(|| {
                        let report = ConcurrentManager::new().run_from(
                            initial.clone(),
                            txns.clone(),
                            threads,
                        );
                        assert_eq!(report.commits.len(), 64);
                        report.restarts
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_concurrency);
criterion_main!(benches);
