//! E5: temporal query cost on a temporal relation.

use criterion::{criterion_group, criterion_main, Criterion};

use txtime_bench::{engine_with_temporal, historical_chain};
use txtime_core::{Expr, TransactionNumber, TxSpec};
use txtime_historical::{TemporalElement, TemporalExpr, TemporalPred};
use txtime_snapshot::{Predicate, Value};
use txtime_storage::BackendKind;

fn bench_temporal(c: &mut Criterion) {
    let chain = historical_chain(64, 100);
    let engine = engine_with_temporal(BackendKind::FullCopy, &chain);
    let window = TemporalElement::period(100, 300);

    let mut group = c.benchmark_group("e5_temporal_query");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("rho_hat_current", |b| {
        let q = Expr::hcurrent("t");
        b.iter(|| engine.eval(&q).expect("valid").len())
    });
    group.bench_function("rho_hat_past", |b| {
        let q = Expr::hrollback("t", TxSpec::At(TransactionNumber(33)));
        b.iter(|| engine.eval(&q).expect("valid").len())
    });
    group.bench_function("delta_window_clip", |b| {
        let q = Expr::hcurrent("t").delta(
            TemporalPred::overlaps(
                TemporalExpr::ValidTime,
                TemporalExpr::constant(window.clone()),
            ),
            TemporalExpr::intersect(
                TemporalExpr::ValidTime,
                TemporalExpr::constant(window.clone()),
            ),
        );
        b.iter(|| engine.eval(&q).expect("valid").len())
    });
    group.bench_function("hselect_value_filter", |b| {
        let q = Expr::hcurrent("t").hselect(Predicate::gt_const("grade", Value::Int(5000)));
        b.iter(|| engine.eval(&q).expect("valid").len())
    });
    group.bench_function("timeslice", |b| {
        let h = engine
            .eval(&Expr::hcurrent("t"))
            .unwrap()
            .into_historical()
            .unwrap();
        b.iter(|| h.timeslice(200).len())
    });
    group.finish();
}

criterion_group!(benches, bench_temporal);
criterion_main!(benches);
