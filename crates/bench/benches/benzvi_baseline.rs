//! E6: Ben-Zvi Time-View vs ρ̂ ∘ timeslice.

use criterion::{criterion_group, criterion_main, Criterion};

use txtime_bench::historical_chain;
use txtime_benzvi::bridge;
use txtime_core::{Expr, TransactionNumber, TxSpec};

fn bench_benzvi(c: &mut Criterion) {
    let chain = historical_chain(32, 60);
    let b = bridge::load(&chain);
    let tt = TransactionNumber(20);
    let tv = 500;

    let mut group = c.benchmark_group("e6_benzvi");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("trm_time_view", |bch| {
        bch.iter(|| b.trm.time_view(tv, tt).len())
    });
    group.bench_function("ours_rho_hat_timeslice", |bch| {
        let q = Expr::hrollback("r", TxSpec::At(tt));
        bch.iter(|| {
            q.eval(&b.database)
                .unwrap()
                .into_historical()
                .unwrap()
                .timeslice(tv)
                .len()
        })
    });
    group.bench_function("trm_full_history_assembled", |bch| {
        bch.iter(|| b.trm.assemble_history(tt).len())
    });
    group.bench_function("ours_full_history_rho_hat", |bch| {
        let q = Expr::hrollback("r", TxSpec::At(tt));
        bch.iter(|| q.eval(&b.database).unwrap().len())
    });
    group.finish();
}

criterion_group!(benches, bench_benzvi);
criterion_main!(benches);
