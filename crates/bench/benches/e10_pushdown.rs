//! E10: the materialization cache under repeated rollback probes, and
//! operator pushdown (σ over ρ) vs materialize-then-filter.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use txtime_snapshot::rng::rngs::StdRng;
use txtime_snapshot::rng::{Rng, SeedableRng};

use txtime_bench::{engine_with_chain, version_chain, SEED};
use txtime_core::{Expr, StateSource, TransactionNumber, TxSpec};
use txtime_snapshot::{Predicate, Value};
use txtime_storage::{BackendKind, CheckpointPolicy};

/// The audit shape: a small working set of as-of points revisited over
/// and over. With the cache on, only the first visit replays deltas.
fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_cache");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(20);
    let versions = 256usize;
    let chain = version_chain(versions, 200, 0.1);
    let mut rng = StdRng::seed_from_u64(SEED);
    let probes: Vec<TransactionNumber> = (0..16)
        .map(|_| TransactionNumber(rng.gen_range(2..versions as u64 + 2)))
        .collect();
    for backend in [BackendKind::ForwardDelta, BackendKind::ReverseDelta] {
        let engine = engine_with_chain(backend, CheckpointPolicy::every_k(64).unwrap(), &chain);
        for (label, capacity) in [("uncached", 0usize), ("cached", 128)] {
            engine.set_cache_capacity(capacity);
            group.bench_with_input(
                BenchmarkId::new(format!("{backend}/{label}"), versions),
                &probes,
                |b, probes| {
                    b.iter(|| {
                        probes
                            .iter()
                            .map(|&t| {
                                engine
                                    .eval(&Expr::rollback("r", TxSpec::At(t)))
                                    .expect("probe answers")
                                    .len()
                            })
                            .sum::<usize>()
                    })
                },
            );
        }
    }
    group.finish();
}

/// σ_F(ρ(r, t)) evaluated through the engine (pushdown: the store filters
/// while reconstructing) vs resolving the full version and filtering it
/// afterwards — the un-pushed plan.
fn bench_pushdown(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_pushdown");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(20);
    let versions = 128usize;
    let chain = version_chain(versions, 400, 0.1);
    let mid = TransactionNumber(versions as u64 / 2 + 1);
    // int_range is 10_000, so this keeps ~5% of tuples.
    let pred = Predicate::lt_const("id", Value::Int(500));
    for backend in [BackendKind::TupleTimestamp, BackendKind::ForwardDelta] {
        let engine = engine_with_chain(backend, CheckpointPolicy::every_k(32).unwrap(), &chain);
        engine.set_cache_capacity(0); // isolate pushdown from caching
        let pushed = Expr::rollback("r", TxSpec::At(mid)).select(pred.clone());
        group.bench_with_input(
            BenchmarkId::new(format!("{backend}/pushed"), versions),
            &pushed,
            |b, pushed| b.iter(|| engine.eval(pushed).expect("probe answers").len()),
        );
        group.bench_with_input(
            BenchmarkId::new(format!("{backend}/materialized"), versions),
            &pred,
            |b, pred| {
                b.iter(|| {
                    engine
                        .resolve_rollback("r", TxSpec::At(mid), false)
                        .expect("probe answers")
                        .into_snapshot()
                        .expect("snapshot relation")
                        .select(pred)
                        .expect("predicate compiles")
                        .len()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_cache, bench_pushdown);
criterion_main!(benches);
