//! E4: modify_state throughput by update mix and backend.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use txtime_snapshot::rng::rngs::StdRng;
use txtime_snapshot::rng::SeedableRng;

use txtime_bench::{bench_gen_config, bench_schema, version_chain, SEED};
use txtime_core::{Command, Expr, RelationType};
use txtime_storage::{BackendKind, CheckpointPolicy, Engine};

fn loaded_engine(backend: BackendKind) -> Engine {
    let mut e = Engine::new(backend, CheckpointPolicy::every_k(32).unwrap());
    e.execute(&Command::define_relation("r", RelationType::Rollback))
        .unwrap();
    let base = version_chain(1, 500, 0.0).pop().unwrap();
    e.execute(&Command::modify_state("r", Expr::snapshot_const(base)))
        .unwrap();
    e
}

fn bench_modify(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_modify_state");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(20);
    let mut rng = StdRng::seed_from_u64(SEED);
    let delta =
        txtime_snapshot::generate::random_state(&mut rng, &bench_schema(), &bench_gen_config(1));
    for backend in BackendKind::ALL {
        for mix in ["append", "delete", "replace"] {
            let expr = match mix {
                "append" => Expr::current("r").union(Expr::snapshot_const(delta.clone())),
                "delete" => Expr::current("r").difference(Expr::snapshot_const(delta.clone())),
                _ => Expr::current("r")
                    .difference(Expr::snapshot_const(delta.clone()))
                    .union(Expr::snapshot_const(delta.clone())),
            };
            let cmd = Command::modify_state("r", expr);
            group.bench_with_input(
                BenchmarkId::new(backend.to_string(), mix),
                &cmd,
                |b, cmd| {
                    b.iter_batched_ref(
                        || loaded_engine(backend),
                        |engine| engine.execute(cmd).expect("valid command"),
                        BatchSize::SmallInput,
                    )
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_modify);
criterion_main!(benches);
