//! E9: FINDSTATE lookup — interpolation search vs binary search vs
//! linear scan.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use txtime_snapshot::rng::rngs::StdRng;
use txtime_snapshot::rng::{Rng, SeedableRng};

use txtime_bench::{version_chain, SEED};
use txtime_core::semantics::aux::{find_state, find_state_binary};
use txtime_core::{Command, Expr, RelationType, Sentence, TransactionNumber};

fn bench_findstate(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_findstate");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &versions in &[16usize, 256, 4096] {
        let chain = version_chain(versions, 4, 0.5);
        let mut cmds = vec![Command::define_relation("r", RelationType::Rollback)];
        for s in &chain {
            cmds.push(Command::modify_state("r", Expr::snapshot_const(s.clone())));
        }
        let db = Sentence::new(cmds).unwrap().eval().unwrap();
        let rel = db.state.lookup("r").unwrap();
        let mut rng = StdRng::seed_from_u64(SEED);
        let probes: Vec<TransactionNumber> = (0..256)
            .map(|_| TransactionNumber(rng.gen_range(0..versions as u64 + 3)))
            .collect();

        group.bench_with_input(
            BenchmarkId::new("interpolating", versions),
            &probes,
            |b, probes| b.iter(|| probes.iter().filter_map(|&t| find_state(rel, t)).count()),
        );
        group.bench_with_input(
            BenchmarkId::new("binary", versions),
            &probes,
            |b, probes| {
                b.iter(|| {
                    probes
                        .iter()
                        .filter_map(|&t| find_state_binary(rel, t))
                        .count()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("linear", versions),
            &probes,
            |b, probes| {
                b.iter(|| {
                    probes
                        .iter()
                        .filter_map(|&t| {
                            rel.versions()
                                .iter()
                                .rev()
                                .find(|v| v.tx <= t)
                                .map(|v| &v.state)
                        })
                        .count()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_findstate);
criterion_main!(benches);
