//! E7: unoptimized vs optimized expression evaluation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use txtime_snapshot::rng::rngs::StdRng;
use txtime_snapshot::rng::SeedableRng;

use txtime_bench::{bench_gen_config, version_chain, SEED};
use txtime_core::{Command, Expr, RelationType, Sentence};
use txtime_optimizer::{optimize, SchemaCatalog};
use txtime_snapshot::{DomainType, Predicate, Schema, Value};

fn bench_optimizer(c: &mut Criterion) {
    let emp_chain = version_chain(4, 400, 0.1);
    let mut cmds = vec![Command::define_relation("emp", RelationType::Rollback)];
    for s in &emp_chain {
        cmds.push(Command::modify_state(
            "emp",
            Expr::snapshot_const(s.clone()),
        ));
    }
    cmds.push(Command::define_relation("dept", RelationType::Rollback));
    let dept_schema = Schema::new(vec![("dno", DomainType::Int)]).unwrap();
    let mut rng = StdRng::seed_from_u64(SEED);
    let dept_state =
        txtime_snapshot::generate::random_state(&mut rng, &dept_schema, &bench_gen_config(40));
    cmds.push(Command::modify_state(
        "dept",
        Expr::snapshot_const(dept_state),
    ));
    let db = Sentence::new(cmds).unwrap().eval().unwrap();
    let catalog = SchemaCatalog::from_database(&db);

    let queries: Vec<(&str, Expr)> = vec![
        (
            "select_over_product",
            Expr::current("emp").product(Expr::current("dept")).select(
                Predicate::lt_const("grade", Value::Int(500))
                    .and(Predicate::lt_const("dno", Value::Int(1000))),
            ),
        ),
        (
            "cascaded_selects",
            Expr::current("emp")
                .select(Predicate::gt_const("grade", Value::Int(100)))
                .select(Predicate::lt_const("grade", Value::Int(5000)))
                .select(Predicate::gt_const("id", Value::Int(10))),
        ),
    ];

    let mut group = c.benchmark_group("e7_optimizer");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for (name, q) in &queries {
        let o = optimize(q, &catalog);
        assert_eq!(q.eval(&db).unwrap(), o.eval(&db).unwrap());
        group.bench_with_input(BenchmarkId::new("original", name), q, |b, q| {
            b.iter(|| q.eval(&db).expect("valid").len())
        });
        group.bench_with_input(BenchmarkId::new("optimized", name), &o, |b, o| {
            b.iter(|| o.eval(&db).expect("valid").len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_optimizer);
criterion_main!(benches);
