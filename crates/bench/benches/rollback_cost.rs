//! E2: rollback cost vs history depth, per backend.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use txtime_bench::{engine_with_chain, probe_txs, version_chain};
use txtime_core::{StateSource, TxSpec};
use txtime_storage::{BackendKind, CheckpointPolicy};

fn bench_rollback(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_rollback_cost");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(20);
    for &versions in &[16usize, 128, 512] {
        let chain = version_chain(versions, 200, 0.1);
        for backend in BackendKind::ALL {
            let engine = engine_with_chain(backend, CheckpointPolicy::every_k(32).unwrap(), &chain);
            engine.set_cache_capacity(0); // raw reconstruction cost; e10_pushdown measures caching
            for (age, tx) in probe_txs(versions) {
                group.bench_with_input(
                    BenchmarkId::new(format!("{backend}/{age}"), versions),
                    &tx,
                    |b, &tx| {
                        b.iter(|| {
                            engine
                                .resolve_rollback("r", TxSpec::At(tx), false)
                                .expect("probe answers")
                                .len()
                        })
                    },
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_rollback);
criterion_main!(benches);
