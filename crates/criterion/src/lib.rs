#![warn(missing_docs)]

//! An offline, in-tree stand-in for the `criterion` crate.
//!
//! The workspace builds with no registry access, so the real `criterion`
//! cannot be a dependency. This crate keeps the bench sources compiling
//! and runnable (`cargo bench`) by implementing the subset of the API
//! they use — `Criterion::benchmark_group`, `bench_function`,
//! `bench_with_input`, `Bencher::iter`/`iter_batched_ref`,
//! `BenchmarkId`, `BatchSize`, and the `criterion_group!`/
//! `criterion_main!` macros — over plain `std::time::Instant` timing.
//! It reports the median of the measured samples, with none of real
//! criterion's statistical analysis.

use std::time::{Duration, Instant};

/// How batched-iteration inputs are grouped; accepted for source
/// compatibility, ignored by the shim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
    /// One batch per allocation.
    PerIteration,
}

/// A benchmark's identifier: a function name plus a parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id labelled `{function}/{parameter}`.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: format!("{}/{}", function.into(), parameter),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// The measurement driver handed to every benchmark closure.
pub struct Bencher {
    samples: usize,
    results: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, repeatedly.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        for _ in 0..self.samples {
            let start = Instant::now();
            let out = routine();
            self.results.push(start.elapsed());
            drop(out);
        }
    }

    /// Times `routine` over a mutable value rebuilt by `setup` for each
    /// sample; setup time is excluded from the measurement.
    pub fn iter_batched_ref<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(&mut I) -> O,
        _size: BatchSize,
    ) {
        for _ in 0..self.samples {
            let mut input = setup();
            let start = Instant::now();
            let out = routine(&mut input);
            self.results.push(start.elapsed());
            drop(out);
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the warm-up budget (accepted; the shim does a fixed warm-up).
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Sets the measurement budget (accepted; the shim is sample-count
    /// driven).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.samples = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        self.criterion.run_one(&label, f);
        self
    }

    /// Runs one benchmark over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        self.criterion.run_one(&label, |b| f(b, input));
        self
    }

    /// Ends the group (report lines were already printed per benchmark).
    pub fn finish(&mut self) {}
}

/// The top-level benchmark driver.
pub struct Criterion {
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { samples: 12 }
    }
}

impl Criterion {
    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }

    fn run_one(&mut self, label: &str, mut f: impl FnMut(&mut Bencher)) {
        // One untimed warm-up pass, then the timed samples.
        let mut warm = Bencher {
            samples: 1,
            results: Vec::new(),
        };
        f(&mut warm);
        let mut b = Bencher {
            samples: self.samples,
            results: Vec::new(),
        };
        f(&mut b);
        let mut times = b.results;
        times.sort();
        let median = times.get(times.len() / 2).copied().unwrap_or_default();
        println!(
            "bench: {label:<60} median {median:>12.2?} ({} samples)",
            times.len()
        );
    }
}

/// Declares a group of benchmark functions, as real criterion does.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench harness entry point running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("param", 7), &7u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.bench_function("batched", |b| {
            b.iter_batched_ref(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
