#![warn(missing_docs)]

//! An offline, in-tree stand-in for the `proptest` crate.
//!
//! The workspace builds with no registry access, so the real `proptest`
//! cannot be a dependency. This crate exposes the (small) subset of its
//! API that the txtime test suite actually uses — `proptest!`,
//! `Strategy`, `any`, `prop::collection::vec`, range strategies, tuple
//! strategies, `prop_map`, `ProptestConfig::with_cases`, and the
//! `prop_assert*` macros — implemented over a deterministic SplitMix64
//! generator. Test sources are unchanged; swapping the real crate back
//! in is a one-line change in the workspace manifest.
//!
//! Differences from real proptest, by design:
//! - no shrinking: a failing case reports its values via the assert
//!   message, and the run is deterministic per test name, so failures
//!   reproduce exactly by re-running;
//! - `prop_assert!` panics (it is `assert!`) instead of returning a
//!   rejection, which is equivalent for CI purposes.

pub mod strategy;

pub mod collection;

/// Runner configuration (`ProptestConfig`).
pub mod test_runner {
    /// How many random cases each property runs.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 64 }
        }
    }

    /// A failed property case (real proptest's `TestCaseError`).
    ///
    /// Bodies may end a case early with `Err(TestCaseError::fail(..))?`;
    /// the harness reports it as a panic with the given reason.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        /// Why the case failed.
        pub reason: String,
    }

    impl TestCaseError {
        /// A failure with the given reason.
        pub fn fail(reason: impl std::fmt::Display) -> TestCaseError {
            TestCaseError {
                reason: reason.to_string(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.reason)
        }
    }

    /// The deterministic generator driving all strategies: SplitMix64.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator seeded from a 64-bit value.
        pub fn seed_from_u64(seed: u64) -> TestRng {
            TestRng { state: seed }
        }

        /// The next raw 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// A uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            // Debiased: reject draws from the incomplete top interval.
            let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
            loop {
                let v = self.next_u64();
                if v <= zone {
                    return v % bound;
                }
            }
        }
    }

    /// The per-test generator: seeded from the test's name and the case
    /// index, so every test's stream is stable across runs and across
    /// the other tests in the file.
    pub fn rng_for(test_name: &str, case: u64) -> TestRng {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng::seed_from_u64(h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }
}

/// The imports test files glob in: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{any, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// The `prop::` module alias real proptest's prelude provides.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a boolean property holds for the current case.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts two values are equal for the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts two values differ for the current case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests: each `#[test] fn name(x in strategy, ...)`
/// item becomes an ordinary test that runs its body over `cases`
/// generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::Config::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::rng_for(stringify!($name), case as u64);
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                // The body runs in a closure returning Result so `?` on
                // TestCaseError works, as in real proptest.
                #[allow(clippy::redundant_closure_call)]
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                if let Err(e) = outcome {
                    panic!("property {} failed at case {}: {}", stringify!($name), case, e);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_small() -> impl Strategy<Value = Vec<(u32, u32)>> {
        prop::collection::vec((0u32..40, 1u32..12), 0..5).prop_map(|v| v)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn ranges_and_collections_respect_bounds(pairs in arb_small(), x in any::<u64>()) {
            prop_assert!(pairs.len() < 5);
            for (a, b) in pairs {
                prop_assert!((0..40).contains(&a));
                prop_assert!((1..12).contains(&b));
            }
            let _ = x;
        }

        #[test]
        fn trailing_comma_and_multiple_args(a in 0u8..10, b in 0usize..=3,) {
            prop_assert!(a < 10);
            prop_assert!(b <= 3);
        }
    }

    #[test]
    fn determinism_per_test_name() {
        let mut r1 = crate::test_runner::rng_for("t", 0);
        let mut r2 = crate::test_runner::rng_for("t", 0);
        assert_eq!(r1.next_u64(), r2.next_u64());
        let mut r3 = crate::test_runner::rng_for("u", 0);
        assert_ne!(r1.next_u64(), r3.next_u64());
    }
}
