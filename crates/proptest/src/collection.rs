//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A length specification for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // inclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// A strategy producing `Vec`s whose elements come from `element` and
/// whose length falls in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// The output of [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo + rng.below(span + 1) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
