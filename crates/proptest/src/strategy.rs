//! Value-generation strategies: the `Strategy` trait, `any`, range and
//! tuple strategies, and the `prop_map` combinator.

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no shrinking; a strategy is just a
/// deterministic sampler.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// A strategy producing `f(v)` for each generated `v`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Types with a natural full-domain strategy (real proptest's
/// `Arbitrary`).
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The full-domain strategy for `T` (use as `any::<u64>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// The output of [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                self.start().wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Every strategy behind a reference is a strategy (lets `&strat` work).
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}
