//! Parse errors with source positions.

use std::fmt;

/// A lexical or syntactic error, with the 1-based line/column where it was
/// detected.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Human-readable description of what went wrong and what was
    /// expected.
    pub message: String,
    /// 1-based line number.
    pub line: usize,
    /// 1-based column number.
    pub col: usize,
}

impl ParseError {
    /// Creates an error at a position.
    pub fn new(message: impl Into<String>, line: usize, col: usize) -> ParseError {
        ParseError {
            message: message.into(),
            line,
            col,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = ParseError::new("expected `)`", 3, 14);
        assert_eq!(e.to_string(), "3:14: expected `)`");
    }
}
