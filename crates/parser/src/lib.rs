#![warn(missing_docs)]

//! Concrete surface syntax for the txtime language.
//!
//! The paper gives the language's abstract syntax in BNF (§3.1, §4); this
//! crate provides a concrete rendering of it, so that sentences can be
//! written as text, stored in scripts, and fed to the engine:
//!
//! ```text
//! define_relation(emp, rollback);
//! modify_state(emp, {(name: str, sal: int): ("alice", 100), ("bob", 200)});
//! modify_state(emp, rho(emp, inf) union {(name: str, sal: int): ("carol", 50)});
//! display(project[name](select[sal > 100](rho(emp, inf))));
//! ```
//!
//! Historical constants carry valid times:
//!
//! ```text
//! modify_state(h, historical {(name: str): ("alice") @ {[0, 10)}, ("bob") @ {[5, forever)}});
//! display(delta[valid overlaps {[3, 7)}; valid intersect {[3, 7)}](hrho(h, inf)));
//! ```
//!
//! The [`print`] module renders every AST back to this syntax;
//! `parse(print(x)) == x` is property-tested.
//!
//! # Example
//!
//! ```
//! use txtime_parser::parse_sentence;
//!
//! let db = parse_sentence(r#"
//!     define_relation(emp, rollback);
//!     modify_state(emp, {(name: str): ("alice")});
//!     modify_state(emp, rho(emp, inf) union {(name: str): ("bob")});
//! "#).unwrap().eval().unwrap();
//! assert_eq!(db.tx.0, 3);
//! ```

pub mod error;
pub mod lexer;
pub mod parser;
pub mod print;
pub mod token;

pub use error::ParseError;

use txtime_core::{Command, CommandSpans, Expr, ExprSpans, Sentence, SentenceSpans};

/// Parses a full sentence (one or more `;`-terminated commands).
pub fn parse_sentence(input: &str) -> Result<Sentence, ParseError> {
    parser::Parser::new(input)?.parse_sentence()
}

/// Parses a single command (without a trailing `;`).
pub fn parse_command(input: &str) -> Result<Command, ParseError> {
    parser::Parser::new(input)?.parse_single_command()
}

/// Parses a single expression.
pub fn parse_expr(input: &str) -> Result<Expr, ParseError> {
    parser::Parser::new(input)?.parse_single_expr()
}

/// Parses a full sentence and returns its span table alongside, so
/// diagnostics can cite source positions.
pub fn parse_sentence_spanned(input: &str) -> Result<(Sentence, SentenceSpans), ParseError> {
    parser::Parser::new(input)?.parse_sentence_spanned()
}

/// Parses a single command together with its span table.
pub fn parse_command_spanned(input: &str) -> Result<(Command, CommandSpans), ParseError> {
    parser::Parser::new(input)?.parse_single_command_spanned()
}

/// Parses a single expression together with its span table.
pub fn parse_expr_spanned(input: &str) -> Result<(Expr, ExprSpans), ParseError> {
    parser::Parser::new(input)?.parse_single_expr_spanned()
}
