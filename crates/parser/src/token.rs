//! Tokens of the surface syntax.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// An identifier or keyword (keywords are not reserved; the parser
    /// matches them contextually).
    Ident(String),
    /// An integer literal (sign included).
    Int(i64),
    /// A real literal (sign included; contains a decimal point).
    Real(f64),
    /// A double-quoted string literal (escapes resolved).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `,`
    Comma,
    /// `;`
    Semicolon,
    /// `:`
    Colon,
    /// `@`
    At,
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// End of input.
    Eof,
}

impl Token {
    /// Whether this token is the identifier/keyword `kw`.
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s == kw)
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(i) => write!(f, "{i}"),
            Token::Real(r) => write!(f, "{r}"),
            Token::Str(s) => write!(f, "{s:?}"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::LBracket => write!(f, "["),
            Token::RBracket => write!(f, "]"),
            Token::LBrace => write!(f, "{{"),
            Token::RBrace => write!(f, "}}"),
            Token::Comma => write!(f, ","),
            Token::Semicolon => write!(f, ";"),
            Token::Colon => write!(f, ":"),
            Token::At => write!(f, "@"),
            Token::Eq => write!(f, "="),
            Token::Ne => write!(f, "<>"),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
            Token::Eof => write!(f, "<eof>"),
        }
    }
}

/// A token plus its source position (for diagnostics).
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_check() {
        assert!(Token::Ident("union".into()).is_kw("union"));
        assert!(!Token::Ident("union".into()).is_kw("minus"));
        assert!(!Token::Comma.is_kw("union"));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Token::Le.to_string(), "<=");
        assert_eq!(Token::Str("a\"b".into()).to_string(), "\"a\\\"b\"");
    }
}
