//! The lexer: source text → token stream.

use crate::error::ParseError;
use crate::token::{Spanned, Token};

/// Tokenizes `input`; comments run from `--` to end of line.
pub fn lex(input: &str) -> Result<Vec<Spanned>, ParseError> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0;
    let mut line = 1;
    let mut col = 1;

    macro_rules! push {
        ($tok:expr, $len:expr) => {{
            tokens.push(Spanned {
                token: $tok,
                line,
                col,
            });
            i += $len;
            col += $len;
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                i += 1;
                line += 1;
                col = 1;
            }
            c if c.is_whitespace() => {
                i += 1;
                col += 1;
            }
            '-' if chars.get(i + 1) == Some(&'-') => {
                // Line comment.
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '(' => push!(Token::LParen, 1),
            ')' => push!(Token::RParen, 1),
            '[' => push!(Token::LBracket, 1),
            ']' => push!(Token::RBracket, 1),
            '{' => push!(Token::LBrace, 1),
            '}' => push!(Token::RBrace, 1),
            ',' => push!(Token::Comma, 1),
            ';' => push!(Token::Semicolon, 1),
            ':' => push!(Token::Colon, 1),
            '@' => push!(Token::At, 1),
            '=' => push!(Token::Eq, 1),
            '<' => match chars.get(i + 1) {
                Some('>') => push!(Token::Ne, 2),
                Some('=') => push!(Token::Le, 2),
                _ => push!(Token::Lt, 1),
            },
            '>' => match chars.get(i + 1) {
                Some('=') => push!(Token::Ge, 2),
                _ => push!(Token::Gt, 1),
            },
            '"' => {
                let start_col = col;
                let mut s = String::new();
                let mut j = i + 1;
                let mut closed = false;
                while j < chars.len() {
                    match chars[j] {
                        '"' => {
                            closed = true;
                            break;
                        }
                        '\\' => {
                            let esc = chars.get(j + 1).copied().ok_or_else(|| {
                                ParseError::new("unterminated escape in string", line, start_col)
                            })?;
                            s.push(match esc {
                                'n' => '\n',
                                't' => '\t',
                                '\\' => '\\',
                                '"' => '"',
                                other => {
                                    return Err(ParseError::new(
                                        format!("unknown escape \\{other}"),
                                        line,
                                        start_col,
                                    ))
                                }
                            });
                            j += 2;
                        }
                        '\n' => {
                            return Err(ParseError::new(
                                "unterminated string literal",
                                line,
                                start_col,
                            ))
                        }
                        other => {
                            s.push(other);
                            j += 1;
                        }
                    }
                }
                if !closed {
                    return Err(ParseError::new(
                        "unterminated string literal",
                        line,
                        start_col,
                    ));
                }
                let len = j + 1 - i;
                push!(Token::Str(s), len);
            }
            c if c.is_ascii_digit()
                || (c == '-' && chars.get(i + 1).is_some_and(|d| d.is_ascii_digit())) =>
            {
                let start = i;
                let start_col = col;
                let mut j = i;
                if chars[j] == '-' {
                    j += 1;
                }
                while j < chars.len() && chars[j].is_ascii_digit() {
                    j += 1;
                }
                let mut is_real = false;
                if j + 1 < chars.len() && chars[j] == '.' && chars[j + 1].is_ascii_digit() {
                    is_real = true;
                    j += 1;
                    while j < chars.len() && chars[j].is_ascii_digit() {
                        j += 1;
                    }
                }
                let text: String = chars[start..j].iter().collect();
                let token = if is_real {
                    Token::Real(text.parse().map_err(|_| {
                        ParseError::new(format!("invalid real literal {text}"), line, start_col)
                    })?)
                } else {
                    Token::Int(text.parse().map_err(|_| {
                        ParseError::new(format!("invalid integer literal {text}"), line, start_col)
                    })?)
                };
                let len = j - i;
                push!(token, len);
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                let mut j = i;
                while j < chars.len() && (chars[j].is_ascii_alphanumeric() || chars[j] == '_') {
                    j += 1;
                }
                let text: String = chars[start..j].iter().collect();
                let len = j - i;
                push!(Token::Ident(text), len);
            }
            other => {
                return Err(ParseError::new(
                    format!("unexpected character {other:?}"),
                    line,
                    col,
                ))
            }
        }
    }
    tokens.push(Spanned {
        token: Token::Eof,
        line,
        col,
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<Token> {
        lex(s).unwrap().into_iter().map(|t| t.token).collect()
    }

    #[test]
    fn punctuation_and_operators() {
        assert_eq!(
            toks("( ) [ ] { } , ; : @ = <> < <= > >="),
            vec![
                Token::LParen,
                Token::RParen,
                Token::LBracket,
                Token::RBracket,
                Token::LBrace,
                Token::RBrace,
                Token::Comma,
                Token::Semicolon,
                Token::Colon,
                Token::At,
                Token::Eq,
                Token::Ne,
                Token::Lt,
                Token::Le,
                Token::Gt,
                Token::Ge,
                Token::Eof,
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            toks("42 -7 3.25 -0.5"),
            vec![
                Token::Int(42),
                Token::Int(-7),
                Token::Real(3.25),
                Token::Real(-0.5),
                Token::Eof
            ]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            toks(r#""hello" "a\"b" "tab\tend""#),
            vec![
                Token::Str("hello".into()),
                Token::Str("a\"b".into()),
                Token::Str("tab\tend".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn identifiers_and_keywords() {
        assert_eq!(
            toks("rho emp_2 union"),
            vec![
                Token::Ident("rho".into()),
                Token::Ident("emp_2".into()),
                Token::Ident("union".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("a -- comment ; with stuff\nb"),
            vec![
                Token::Ident("a".into()),
                Token::Ident("b".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn positions_track_lines() {
        let ts = lex("a\n  b").unwrap();
        assert_eq!((ts[0].line, ts[0].col), (1, 1));
        assert_eq!((ts[1].line, ts[1].col), (2, 3));
    }

    #[test]
    fn unterminated_string_is_an_error() {
        assert!(lex("\"abc").is_err());
        assert!(lex("\"ab\nc\"").is_err());
    }

    #[test]
    fn unknown_character_is_an_error() {
        let e = lex("a $ b").unwrap_err();
        assert!(e.message.contains('$'));
    }

    #[test]
    fn minus_without_digit_is_error_unless_comment() {
        // A single '-' (not '--', not a negative number) is not a token.
        assert!(lex("a - b").is_err());
    }
}
