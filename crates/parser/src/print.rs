//! Pretty-printer: AST → parseable surface syntax.
//!
//! Every printer here produces text that the parser maps back to an equal
//! AST; `tests/round_trip.rs` property-tests this for randomly generated
//! sentences.

use std::fmt::Write;

use txtime_core::{Command, Expr, SchemeChange, Sentence, TxSpec};
use txtime_historical::{HistoricalState, TemporalElement, TemporalExpr, TemporalPred, FOREVER};
use txtime_snapshot::{Operand, Predicate, Schema, SnapshotState, Value};

/// Renders a sentence, one command per line.
pub fn print_sentence(s: &Sentence) -> String {
    let mut out = String::new();
    for c in s.commands() {
        let _ = writeln!(out, "{};", print_command(c));
    }
    out
}

/// Renders a command.
pub fn print_command(c: &Command) -> String {
    match c {
        Command::DefineRelation(i, y) => format!("define_relation({i}, {})", y.keyword()),
        Command::ModifyState(i, e) => format!("modify_state({i}, {})", print_expr(e)),
        Command::DeleteRelation(i) => format!("delete_relation({i})"),
        Command::EvolveScheme(i, ch) => {
            format!("evolve_scheme({i}, {})", print_scheme_change(ch))
        }
        Command::Display(e) => format!("display({})", print_expr(e)),
    }
}

/// Renders a scheme change.
pub fn print_scheme_change(c: &SchemeChange) -> String {
    match c {
        SchemeChange::AddAttribute {
            name,
            domain,
            default,
        } => format!(
            "add {name}: {} default {}",
            domain.keyword(),
            print_value(default)
        ),
        SchemeChange::DropAttribute(name) => format!("drop {name}"),
        SchemeChange::RenameAttribute { from, to } => format!("rename {from} to {to}"),
    }
}

/// Renders an expression.
pub fn print_expr(e: &Expr) -> String {
    match e {
        Expr::SnapshotConst(s) => print_snapshot_state(s),
        Expr::HistoricalConst(h) => format!("historical {}", print_historical_state(h)),
        Expr::Union(a, b) => format!("({} union {})", print_expr(a), print_expr(b)),
        Expr::Difference(a, b) => format!("({} minus {})", print_expr(a), print_expr(b)),
        Expr::Product(a, b) => format!("({} times {})", print_expr(a), print_expr(b)),
        Expr::Project(attrs, e) => format!("project[{}]({})", attrs.join(", "), print_expr(e)),
        Expr::Select(p, e) => format!("select[{}]({})", print_predicate(p), print_expr(e)),
        Expr::Rollback(i, n) => format!("rho({i}, {})", print_tx_spec(n)),
        Expr::HUnion(a, b) => format!("({} hunion {})", print_expr(a), print_expr(b)),
        Expr::HDifference(a, b) => format!("({} hminus {})", print_expr(a), print_expr(b)),
        Expr::HProduct(a, b) => format!("({} htimes {})", print_expr(a), print_expr(b)),
        Expr::HProject(attrs, e) => {
            format!("hproject[{}]({})", attrs.join(", "), print_expr(e))
        }
        Expr::HSelect(p, e) => format!("hselect[{}]({})", print_predicate(p), print_expr(e)),
        Expr::Delta(g, v, e) => format!(
            "delta[{}; {}]({})",
            print_temporal_pred(g),
            print_temporal_expr(v),
            print_expr(e)
        ),
        Expr::HRollback(i, n) => format!("hrho({i}, {})", print_tx_spec(n)),
        // Physical joins have no surface syntax (only the plan search
        // constructs them); render them in the plan/explain notation.
        Expr::Join(spec, a, b) => format!("join[{spec}]({}, {})", print_expr(a), print_expr(b)),
        Expr::HJoin(spec, a, b) => format!("hjoin[{spec}]({}, {})", print_expr(a), print_expr(b)),
    }
}

fn print_tx_spec(spec: &TxSpec) -> String {
    match spec {
        TxSpec::At(n) => n.0.to_string(),
        TxSpec::Current => "inf".to_string(),
    }
}

/// Renders a snapshot state as `{(schema): tuple, …}`.
pub fn print_snapshot_state(s: &SnapshotState) -> String {
    let mut out = String::from("{");
    out.push_str(&print_schema(s.schema()));
    out.push_str(": ");
    let tuples: Vec<String> = s
        .iter()
        .map(|t| {
            let vals: Vec<String> = t.values().iter().map(print_value).collect();
            format!("({})", vals.join(", "))
        })
        .collect();
    out.push_str(&tuples.join(", "));
    out.push('}');
    out
}

/// Renders an historical state as `{(schema): tuple @ element, …}`.
pub fn print_historical_state(h: &HistoricalState) -> String {
    let mut out = String::from("{");
    out.push_str(&print_schema(h.schema()));
    out.push_str(": ");
    let entries: Vec<String> = h
        .iter()
        .map(|(t, e)| {
            let vals: Vec<String> = t.values().iter().map(print_value).collect();
            format!("({}) @ {}", vals.join(", "), print_temporal_element(e))
        })
        .collect();
    out.push_str(&entries.join(", "));
    out.push('}');
    out
}

fn print_schema(s: &Schema) -> String {
    let attrs: Vec<String> = s
        .attributes()
        .iter()
        .map(|a| format!("{}: {}", a.name, a.domain.keyword()))
        .collect();
    format!("({})", attrs.join(", "))
}

/// Renders a value literal.
pub fn print_value(v: &Value) -> String {
    match v {
        Value::Int(i) => i.to_string(),
        // {:?} prints the shortest representation that round-trips; the
        // lexer accepts `d.d` forms, which covers every finite non-exotic
        // double printed this way.
        Value::Real(r) => {
            let s = format!("{:?}", r.get());
            if s.contains('.') || s.contains('e') {
                s
            } else {
                format!("{s}.0")
            }
        }
        Value::Bool(b) => b.to_string(),
        Value::Str(s) => {
            let mut out = String::from("\"");
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    other => out.push(other),
                }
            }
            out.push('"');
            out
        }
    }
}

/// Renders a predicate.
pub fn print_predicate(p: &Predicate) -> String {
    match p {
        Predicate::True => "true".into(),
        Predicate::False => "false".into(),
        Predicate::Comp(l, op, r) => {
            format!("{} {} {}", print_operand(l), op.symbol(), print_operand(r))
        }
        Predicate::And(a, b) => format!("({} and {})", print_predicate(a), print_predicate(b)),
        Predicate::Or(a, b) => format!("({} or {})", print_predicate(a), print_predicate(b)),
        Predicate::Not(a) => format!("(not {})", print_predicate(a)),
    }
}

fn print_operand(o: &Operand) -> String {
    match o {
        Operand::Attr(a) => a.to_string(),
        Operand::Const(v) => print_value(v),
    }
}

/// Renders a temporal element as `{[s, e), …}`.
pub fn print_temporal_element(e: &TemporalElement) -> String {
    let parts: Vec<String> = e
        .periods()
        .iter()
        .map(|p| {
            if p.end() == FOREVER {
                format!("[{}, forever)", p.start())
            } else {
                format!("[{}, {})", p.start(), p.end())
            }
        })
        .collect();
    format!("{{{}}}", parts.join(", "))
}

/// Renders a temporal expression.
pub fn print_temporal_expr(e: &TemporalExpr) -> String {
    match e {
        TemporalExpr::ValidTime => "valid".into(),
        TemporalExpr::Const(el) => print_temporal_element(el),
        TemporalExpr::Union(a, b) => format!(
            "({} union {})",
            print_temporal_expr(a),
            print_temporal_expr(b)
        ),
        TemporalExpr::Intersect(a, b) => format!(
            "({} intersect {})",
            print_temporal_expr(a),
            print_temporal_expr(b)
        ),
        TemporalExpr::Difference(a, b) => format!(
            "({} minus {})",
            print_temporal_expr(a),
            print_temporal_expr(b)
        ),
        TemporalExpr::First(a) => format!("first({})", print_temporal_expr(a)),
        TemporalExpr::Last(a) => format!("last({})", print_temporal_expr(a)),
    }
}

/// Renders a temporal predicate.
pub fn print_temporal_pred(p: &TemporalPred) -> String {
    match p {
        TemporalPred::True => "true".into(),
        TemporalPred::False => "false".into(),
        TemporalPred::Equals(a, b) => {
            format!("{} = {}", print_temporal_expr(a), print_temporal_expr(b))
        }
        TemporalPred::Subset(a, b) => {
            format!(
                "{} subset {}",
                print_temporal_expr(a),
                print_temporal_expr(b)
            )
        }
        TemporalPred::Overlaps(a, b) => format!(
            "{} overlaps {}",
            print_temporal_expr(a),
            print_temporal_expr(b)
        ),
        TemporalPred::Precedes(a, b) => format!(
            "{} precedes {}",
            print_temporal_expr(a),
            print_temporal_expr(b)
        ),
        TemporalPred::And(a, b) => format!(
            "({} and {})",
            print_temporal_pred(a),
            print_temporal_pred(b)
        ),
        TemporalPred::Or(a, b) => {
            format!("({} or {})", print_temporal_pred(a), print_temporal_pred(b))
        }
        TemporalPred::Not(a) => format!("(not {})", print_temporal_pred(a)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse_command, parse_expr};
    use txtime_core::RelationType;

    #[test]
    fn command_round_trip() {
        let cmds = [
            Command::define_relation("emp", RelationType::Temporal),
            Command::delete_relation("emp"),
            Command::display(Expr::current("emp")),
        ];
        for c in cmds {
            assert_eq!(parse_command(&print_command(&c)).unwrap(), c);
        }
    }

    #[test]
    fn value_printing_round_trips() {
        for v in [
            Value::Int(-42),
            Value::real(2.5),
            Value::real(3.0),
            Value::Bool(true),
            Value::str("he said \"hi\"\n\tok\\done"),
        ] {
            let printed = print_value(&v);
            let e =
                parse_expr(&format!("{{(x: {}): ({})}}", v.domain().keyword(), printed)).unwrap();
            match e {
                Expr::SnapshotConst(s) => {
                    assert_eq!(s.iter().next().unwrap().get(0), &v, "printed: {printed}")
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn temporal_element_round_trips() {
        use txtime_historical::Period;
        let e = TemporalElement::from_periods([
            Period::new(0, 5).unwrap(),
            Period::new(9, FOREVER).unwrap(),
        ]);
        assert_eq!(print_temporal_element(&e), "{[0, 5), [9, forever)}");
    }
}
