//! Recursive-descent parser for the surface syntax.
//!
//! The grammar follows the paper's BNF (§3.1, §4) with a concrete
//! rendering chosen in this crate; see the crate docs for examples. The
//! parser is hand-written recursive descent with single-token lookahead
//! plus bounded backtracking at the one genuinely ambiguous point
//! (parenthesized temporal predicates vs parenthesized temporal
//! expressions inside δ's guard).

use txtime_core::{
    Command, CommandSpans, Expr, ExprSpans, RelationType, SchemeChange, Sentence, SentenceSpans,
    Span, TransactionNumber, TxSpec,
};
use txtime_historical::{
    HistoricalState, Period, TemporalElement, TemporalExpr, TemporalPred, FOREVER,
};
use txtime_snapshot::{
    CompOp, DomainType, Operand, Predicate, Schema, SnapshotState, Tuple, Value,
};

use crate::error::ParseError;
use crate::lexer::lex;
use crate::token::{Spanned, Token};

/// The parser state: a token buffer and a cursor.
pub struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    /// Lexes `input` and prepares a parser over it.
    pub fn new(input: &str) -> Result<Parser, ParseError> {
        Ok(Parser {
            tokens: lex(input)?,
            pos: 0,
        })
    }

    fn peek(&self) -> &Spanned {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek2(&self) -> &Spanned {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)]
    }

    fn advance(&mut self) -> Spanned {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    /// The source position of the next token.
    fn here(&self) -> Span {
        let t = self.peek();
        Span::new(t.line, t.col)
    }

    fn error(&self, msg: impl Into<String>) -> ParseError {
        let here = self.peek();
        ParseError::new(
            format!("{} (found `{}`)", msg.into(), here.token),
            here.line,
            here.col,
        )
    }

    fn expect(&mut self, token: Token) -> Result<(), ParseError> {
        if self.peek().token == token {
            self.advance();
            Ok(())
        } else {
            Err(self.error(format!("expected `{token}`")))
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.peek().token.is_kw(kw) {
            self.advance();
            Ok(())
        } else {
            Err(self.error(format!("expected `{kw}`")))
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().token.is_kw(kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match &self.peek().token {
            Token::Ident(s) => {
                let s = s.clone();
                self.advance();
                Ok(s)
            }
            _ => Err(self.error("expected an identifier")),
        }
    }

    // ----- sentences and commands -------------------------------------

    /// `sentence := (command ';')+`
    pub fn parse_sentence(&mut self) -> Result<Sentence, ParseError> {
        self.parse_sentence_spanned().map(|(s, _)| s)
    }

    /// Like [`Parser::parse_sentence`], but also returns the span table
    /// used by diagnostics.
    pub fn parse_sentence_spanned(&mut self) -> Result<(Sentence, SentenceSpans), ParseError> {
        let mut commands = Vec::new();
        let mut spans = Vec::new();
        while self.peek().token != Token::Eof {
            let (c, csp) = self.command()?;
            commands.push(c);
            spans.push(csp);
            self.expect(Token::Semicolon)?;
        }
        if commands.is_empty() {
            return Err(self.error("a sentence requires at least one command"));
        }
        let sentence = Sentence::new(commands).map_err(|e| self.error(e.to_string()))?;
        Ok((sentence, SentenceSpans { commands: spans }))
    }

    /// Parses exactly one command and requires end of input.
    pub fn parse_single_command(&mut self) -> Result<Command, ParseError> {
        self.parse_single_command_spanned().map(|(c, _)| c)
    }

    /// Like [`Parser::parse_single_command`], but also returns the span
    /// table used by diagnostics.
    pub fn parse_single_command_spanned(&mut self) -> Result<(Command, CommandSpans), ParseError> {
        let (c, csp) = self.command()?;
        // Tolerate one optional trailing semicolon.
        let _ = self.peek().token == Token::Semicolon && {
            self.advance();
            true
        };
        self.expect(Token::Eof)?;
        Ok((c, csp))
    }

    /// Parses exactly one expression and requires end of input.
    pub fn parse_single_expr(&mut self) -> Result<Expr, ParseError> {
        self.parse_single_expr_spanned().map(|(e, _)| e)
    }

    /// Like [`Parser::parse_single_expr`], but also returns the span
    /// table used by diagnostics.
    pub fn parse_single_expr_spanned(&mut self) -> Result<(Expr, ExprSpans), ParseError> {
        let (e, esp) = self.expr()?;
        self.expect(Token::Eof)?;
        Ok((e, esp))
    }

    fn command(&mut self) -> Result<(Command, CommandSpans), ParseError> {
        let head = self.here();
        let kw = self.ident()?;
        let no_expr = |c: Command| (c, CommandSpans { head, expr: None });
        match kw.as_str() {
            "define_relation" => {
                self.expect(Token::LParen)?;
                let ident = self.ident()?;
                self.expect(Token::Comma)?;
                let ty_name = self.ident()?;
                let rtype = RelationType::from_keyword(&ty_name)
                    .ok_or_else(|| self.error(format!("unknown relation type `{ty_name}`")))?;
                self.expect(Token::RParen)?;
                Ok(no_expr(Command::define_relation(ident, rtype)))
            }
            "modify_state" => {
                self.expect(Token::LParen)?;
                let ident = self.ident()?;
                self.expect(Token::Comma)?;
                let (expr, esp) = self.expr()?;
                self.expect(Token::RParen)?;
                Ok((
                    Command::modify_state(ident, expr),
                    CommandSpans {
                        head,
                        expr: Some(esp),
                    },
                ))
            }
            "delete_relation" => {
                self.expect(Token::LParen)?;
                let ident = self.ident()?;
                self.expect(Token::RParen)?;
                Ok(no_expr(Command::delete_relation(ident)))
            }
            "evolve_scheme" => {
                self.expect(Token::LParen)?;
                let ident = self.ident()?;
                self.expect(Token::Comma)?;
                let change = self.scheme_change()?;
                self.expect(Token::RParen)?;
                Ok(no_expr(Command::evolve_scheme(ident, change)))
            }
            "display" => {
                self.expect(Token::LParen)?;
                let (expr, esp) = self.expr()?;
                self.expect(Token::RParen)?;
                Ok((
                    Command::display(expr),
                    CommandSpans {
                        head,
                        expr: Some(esp),
                    },
                ))
            }
            other => Err(self.error(format!("unknown command `{other}`"))),
        }
    }

    /// `scheme_change := add I ':' domain default literal | drop I
    ///                  | rename I to I`
    fn scheme_change(&mut self) -> Result<SchemeChange, ParseError> {
        if self.eat_kw("add") {
            let name = self.ident()?;
            self.expect(Token::Colon)?;
            let domain = self.domain()?;
            self.expect_kw("default")?;
            let default = self.literal()?;
            Ok(SchemeChange::AddAttribute {
                name,
                domain,
                default,
            })
        } else if self.eat_kw("drop") {
            Ok(SchemeChange::DropAttribute(self.ident()?))
        } else if self.eat_kw("rename") {
            let from = self.ident()?;
            self.expect_kw("to")?;
            let to = self.ident()?;
            Ok(SchemeChange::RenameAttribute { from, to })
        } else {
            Err(self.error("expected `add`, `drop`, or `rename`"))
        }
    }

    // ----- expressions -------------------------------------------------

    /// `expr := unary (binop unary)*` with the six binary operators at a
    /// single (left-associative) precedence level.
    ///
    /// Returns the expression together with its span table; a binary
    /// node's span is its operator token, a unary node's the operator
    /// keyword, a constant's its opening token.
    fn expr(&mut self) -> Result<(Expr, ExprSpans), ParseError> {
        let (mut left, mut lsp) = self.unary_expr()?;
        loop {
            let op = match &self.peek().token {
                Token::Ident(s)
                    if matches!(
                        s.as_str(),
                        "union" | "minus" | "times" | "hunion" | "hminus" | "htimes"
                    ) =>
                {
                    s.clone()
                }
                _ => break,
            };
            let opsp = self.here();
            self.advance();
            let (right, rsp) = self.unary_expr()?;
            left = match op.as_str() {
                "union" => left.union(right),
                "minus" => left.difference(right),
                "times" => left.product(right),
                "hunion" => left.hunion(right),
                "hminus" => left.hdifference(right),
                "htimes" => left.hproduct(right),
                _ => unreachable!("matched above"),
            };
            lsp = ExprSpans::node(opsp, vec![lsp, rsp]);
        }
        Ok((left, lsp))
    }

    fn unary_expr(&mut self) -> Result<(Expr, ExprSpans), ParseError> {
        let start = self.here();
        match &self.peek().token {
            Token::LParen => {
                self.advance();
                let e = self.expr()?;
                self.expect(Token::RParen)?;
                Ok(e)
            }
            Token::LBrace => Ok((
                Expr::snapshot_const(self.snapshot_state()?),
                ExprSpans::leaf(start),
            )),
            Token::Ident(kw) => {
                let kw = kw.clone();
                match kw.as_str() {
                    "historical" => {
                        self.advance();
                        Ok((
                            Expr::historical_const(self.historical_state()?),
                            ExprSpans::leaf(start),
                        ))
                    }
                    "project" | "hproject" => {
                        self.advance();
                        self.expect(Token::LBracket)?;
                        let mut attrs = vec![self.ident()?];
                        while self.peek().token == Token::Comma {
                            self.advance();
                            attrs.push(self.ident()?);
                        }
                        self.expect(Token::RBracket)?;
                        self.expect(Token::LParen)?;
                        let (e, esp) = self.expr()?;
                        self.expect(Token::RParen)?;
                        Ok((
                            if kw == "project" {
                                e.project(attrs)
                            } else {
                                e.hproject(attrs)
                            },
                            ExprSpans::node(start, vec![esp]),
                        ))
                    }
                    "select" | "hselect" => {
                        self.advance();
                        self.expect(Token::LBracket)?;
                        let p = self.predicate()?;
                        self.expect(Token::RBracket)?;
                        self.expect(Token::LParen)?;
                        let (e, esp) = self.expr()?;
                        self.expect(Token::RParen)?;
                        Ok((
                            if kw == "select" {
                                e.select(p)
                            } else {
                                e.hselect(p)
                            },
                            ExprSpans::node(start, vec![esp]),
                        ))
                    }
                    "delta" => {
                        self.advance();
                        self.expect(Token::LBracket)?;
                        let g = self.temporal_pred()?;
                        self.expect(Token::Semicolon)?;
                        let v = self.temporal_expr()?;
                        self.expect(Token::RBracket)?;
                        self.expect(Token::LParen)?;
                        let (e, esp) = self.expr()?;
                        self.expect(Token::RParen)?;
                        Ok((e.delta(g, v), ExprSpans::node(start, vec![esp])))
                    }
                    // `asof[N](E)` — sugar for the rollback-completeness
                    // transformer: every ρ(I, ∞)/ρ̂(I, ∞) leaf of E is
                    // rewritten to ρ(I, N)/ρ̂(I, N) at parse time. The
                    // rewrite only changes rollback arguments, never the
                    // tree's shape, so E's span table carries over.
                    "asof" => {
                        self.advance();
                        self.expect(Token::LBracket)?;
                        let spec = self.tx_spec()?;
                        let TxSpec::At(n) = spec else {
                            return Err(self.error("asof requires a specific transaction number"));
                        };
                        self.expect(Token::RBracket)?;
                        self.expect(Token::LParen)?;
                        let (e, esp) = self.expr()?;
                        self.expect(Token::RParen)?;
                        Ok((txtime_core::as_of(&e, n), esp))
                    }
                    "rho" | "hrho" => {
                        self.advance();
                        self.expect(Token::LParen)?;
                        let ident = self.ident()?;
                        self.expect(Token::Comma)?;
                        let spec = self.tx_spec()?;
                        self.expect(Token::RParen)?;
                        Ok((
                            if kw == "rho" {
                                Expr::rollback(ident, spec)
                            } else {
                                Expr::hrollback(ident, spec)
                            },
                            ExprSpans::leaf(start),
                        ))
                    }
                    other => Err(self.error(format!("unknown operator `{other}`"))),
                }
            }
            _ => Err(self.error("expected an expression")),
        }
    }

    /// `numeral := non-negative integer | inf`
    fn tx_spec(&mut self) -> Result<TxSpec, ParseError> {
        match &self.peek().token {
            Token::Int(n) if *n >= 0 => {
                let n = *n as u64;
                self.advance();
                Ok(TxSpec::At(TransactionNumber(n)))
            }
            Token::Ident(s) if s == "inf" => {
                self.advance();
                Ok(TxSpec::Current)
            }
            _ => Err(self.error("expected a transaction number or `inf`")),
        }
    }

    // ----- constant states ----------------------------------------------

    /// `'{' schema ':' [tuple (',' tuple)*] '}'`
    fn snapshot_state(&mut self) -> Result<SnapshotState, ParseError> {
        self.expect(Token::LBrace)?;
        let schema = self.schema()?;
        self.expect(Token::Colon)?;
        let mut tuples = Vec::new();
        if self.peek().token != Token::RBrace {
            tuples.push(self.tuple()?);
            while self.peek().token == Token::Comma {
                self.advance();
                tuples.push(self.tuple()?);
            }
        }
        self.expect(Token::RBrace)?;
        SnapshotState::new(schema, tuples).map_err(|e| self.error(e.to_string()))
    }

    /// `'{' schema ':' [tuple '@' element (',' …)*] '}'`
    fn historical_state(&mut self) -> Result<HistoricalState, ParseError> {
        self.expect(Token::LBrace)?;
        let schema = self.schema()?;
        self.expect(Token::Colon)?;
        let mut entries = Vec::new();
        if self.peek().token != Token::RBrace {
            loop {
                let t = self.tuple()?;
                self.expect(Token::At)?;
                let e = self.temporal_element()?;
                entries.push((t, e));
                if self.peek().token == Token::Comma {
                    self.advance();
                } else {
                    break;
                }
            }
        }
        self.expect(Token::RBrace)?;
        HistoricalState::new(schema, entries).map_err(|e| self.error(e.to_string()))
    }

    /// `'(' I ':' domain (',' I ':' domain)* ')'`
    fn schema(&mut self) -> Result<Schema, ParseError> {
        self.expect(Token::LParen)?;
        let mut attrs = Vec::new();
        loop {
            let name = self.ident()?;
            self.expect(Token::Colon)?;
            let domain = self.domain()?;
            attrs.push((name, domain));
            if self.peek().token == Token::Comma {
                self.advance();
            } else {
                break;
            }
        }
        self.expect(Token::RParen)?;
        Schema::new(attrs).map_err(|e| self.error(e.to_string()))
    }

    fn domain(&mut self) -> Result<DomainType, ParseError> {
        let name = self.ident()?;
        DomainType::from_keyword(&name)
            .ok_or_else(|| self.error(format!("unknown domain `{name}`")))
    }

    /// `'(' literal (',' literal)* ')'`
    fn tuple(&mut self) -> Result<Tuple, ParseError> {
        self.expect(Token::LParen)?;
        let mut values = vec![self.literal()?];
        while self.peek().token == Token::Comma {
            self.advance();
            values.push(self.literal()?);
        }
        self.expect(Token::RParen)?;
        Ok(Tuple::new(values))
    }

    fn literal(&mut self) -> Result<Value, ParseError> {
        match &self.peek().token {
            Token::Int(n) => {
                let n = *n;
                self.advance();
                Ok(Value::Int(n))
            }
            Token::Real(r) => {
                let r = *r;
                self.advance();
                Ok(Value::real(r))
            }
            Token::Str(s) => {
                let s = s.clone();
                self.advance();
                Ok(Value::str(s))
            }
            Token::Ident(s) if s == "true" => {
                self.advance();
                Ok(Value::Bool(true))
            }
            Token::Ident(s) if s == "false" => {
                self.advance();
                Ok(Value::Bool(false))
            }
            _ => Err(self.error("expected a literal value")),
        }
    }

    // ----- predicates (𝓕) ------------------------------------------------

    /// `pred := and_pred ('or' and_pred)*`
    fn predicate(&mut self) -> Result<Predicate, ParseError> {
        let mut left = self.and_pred()?;
        while self.eat_kw("or") {
            let right = self.and_pred()?;
            left = left.or(right);
        }
        Ok(left)
    }

    fn and_pred(&mut self) -> Result<Predicate, ParseError> {
        let mut left = self.not_pred()?;
        while self.eat_kw("and") {
            let right = self.not_pred()?;
            left = left.and(right);
        }
        Ok(left)
    }

    fn not_pred(&mut self) -> Result<Predicate, ParseError> {
        if self.eat_kw("not") {
            Ok(self.not_pred()?.not())
        } else {
            self.primary_pred()
        }
    }

    fn primary_pred(&mut self) -> Result<Predicate, ParseError> {
        // `true`/`false` are predicate constants unless followed by a
        // comparison operator (in which case they are Bool operands).
        if (self.peek().token.is_kw("true") || self.peek().token.is_kw("false"))
            && !is_comp_op(&self.peek2().token)
        {
            let b = self.peek().token.is_kw("true");
            self.advance();
            return Ok(if b { Predicate::True } else { Predicate::False });
        }
        if self.peek().token == Token::LParen {
            self.advance();
            let p = self.predicate()?;
            self.expect(Token::RParen)?;
            return Ok(p);
        }
        let left = self.operand()?;
        let op = self.comp_op()?;
        let right = self.operand()?;
        Ok(Predicate::Comp(left, op, right))
    }

    fn operand(&mut self) -> Result<Operand, ParseError> {
        match &self.peek().token {
            Token::Ident(s) if s != "true" && s != "false" => {
                let s = s.clone();
                self.advance();
                Ok(Operand::attr(s))
            }
            _ => Ok(Operand::Const(self.literal()?)),
        }
    }

    fn comp_op(&mut self) -> Result<CompOp, ParseError> {
        let op = match self.peek().token {
            Token::Eq => CompOp::Eq,
            Token::Ne => CompOp::Ne,
            Token::Lt => CompOp::Lt,
            Token::Le => CompOp::Le,
            Token::Gt => CompOp::Gt,
            Token::Ge => CompOp::Ge,
            _ => return Err(self.error("expected a comparison operator")),
        };
        self.advance();
        Ok(op)
    }

    // ----- temporal predicates (𝓖) and expressions (𝓥) -------------------

    /// `tpred := tand ('or' tand)*`
    fn temporal_pred(&mut self) -> Result<TemporalPred, ParseError> {
        let mut left = self.temporal_and()?;
        while self.eat_kw("or") {
            let right = self.temporal_and()?;
            left = left.or(right);
        }
        Ok(left)
    }

    fn temporal_and(&mut self) -> Result<TemporalPred, ParseError> {
        let mut left = self.temporal_not()?;
        while self.eat_kw("and") {
            let right = self.temporal_not()?;
            left = left.and(right);
        }
        Ok(left)
    }

    fn temporal_not(&mut self) -> Result<TemporalPred, ParseError> {
        if self.eat_kw("not") {
            Ok(self.temporal_not()?.not())
        } else {
            self.temporal_primary()
        }
    }

    fn temporal_primary(&mut self) -> Result<TemporalPred, ParseError> {
        if self.peek().token.is_kw("true") {
            self.advance();
            return Ok(TemporalPred::True);
        }
        if self.peek().token.is_kw("false") {
            self.advance();
            return Ok(TemporalPred::False);
        }
        if self.peek().token == Token::LParen {
            // Ambiguity: '(' tpred ')' vs a comparison whose left operand
            // is a parenthesized temporal expression. Try the comparison
            // first; backtrack on failure.
            let save = self.pos;
            if let Ok(p) = self.try_temporal_comparison() {
                return Ok(p);
            }
            self.pos = save;
            self.advance(); // '('
            let p = self.temporal_pred()?;
            self.expect(Token::RParen)?;
            return Ok(p);
        }
        self.try_temporal_comparison()
    }

    fn try_temporal_comparison(&mut self) -> Result<TemporalPred, ParseError> {
        let left = self.temporal_expr()?;
        if self.peek().token == Token::Eq {
            self.advance();
            let right = self.temporal_expr()?;
            return Ok(TemporalPred::equals(left, right));
        }
        for (kw, ctor) in [
            ("subset", TemporalPred::subset as fn(_, _) -> _),
            ("overlaps", TemporalPred::overlaps as fn(_, _) -> _),
            ("precedes", TemporalPred::precedes as fn(_, _) -> _),
        ] {
            if self.eat_kw(kw) {
                let right = self.temporal_expr()?;
                return Ok(ctor(left, right));
            }
        }
        Err(self.error("expected `=`, `subset`, `overlaps`, or `precedes`"))
    }

    /// `texpr := tterm (('union'|'intersect'|'minus') tterm)*`
    fn temporal_expr(&mut self) -> Result<TemporalExpr, ParseError> {
        let mut left = self.temporal_term()?;
        loop {
            if self.eat_kw("union") {
                left = TemporalExpr::union(left, self.temporal_term()?);
            } else if self.eat_kw("intersect") {
                left = TemporalExpr::intersect(left, self.temporal_term()?);
            } else if self.eat_kw("minus") {
                left = TemporalExpr::difference(left, self.temporal_term()?);
            } else {
                break;
            }
        }
        Ok(left)
    }

    fn temporal_term(&mut self) -> Result<TemporalExpr, ParseError> {
        match &self.peek().token {
            Token::Ident(s) if s == "valid" => {
                self.advance();
                Ok(TemporalExpr::ValidTime)
            }
            Token::Ident(s) if s == "first" || s == "last" => {
                let is_first = s == "first";
                self.advance();
                self.expect(Token::LParen)?;
                let inner = self.temporal_expr()?;
                self.expect(Token::RParen)?;
                Ok(if is_first {
                    TemporalExpr::first(inner)
                } else {
                    TemporalExpr::last(inner)
                })
            }
            Token::LBrace => Ok(TemporalExpr::constant(self.temporal_element()?)),
            Token::LParen => {
                self.advance();
                let e = self.temporal_expr()?;
                self.expect(Token::RParen)?;
                Ok(e)
            }
            _ => Err(self.error("expected a temporal expression")),
        }
    }

    /// `telement := '{' [period (',' period)*] '}'`
    fn temporal_element(&mut self) -> Result<TemporalElement, ParseError> {
        self.expect(Token::LBrace)?;
        let mut periods = Vec::new();
        if self.peek().token != Token::RBrace {
            periods.push(self.period()?);
            while self.peek().token == Token::Comma {
                self.advance();
                periods.push(self.period()?);
            }
        }
        self.expect(Token::RBrace)?;
        Ok(TemporalElement::from_periods(periods))
    }

    /// `period := '[' int ',' (int|'forever') ')'`
    fn period(&mut self) -> Result<Period, ParseError> {
        self.expect(Token::LBracket)?;
        let start = self.chronon()?;
        self.expect(Token::Comma)?;
        let end = if self.eat_kw("forever") {
            FOREVER
        } else {
            self.chronon()?
        };
        self.expect(Token::RParen)?;
        Period::new(start, end).map_err(|e| self.error(e.to_string()))
    }

    fn chronon(&mut self) -> Result<u32, ParseError> {
        match self.peek().token {
            Token::Int(n) if n >= 0 && n <= u32::MAX as i64 => {
                self.advance();
                Ok(n as u32)
            }
            _ => Err(self.error("expected a chronon (non-negative integer)")),
        }
    }
}

fn is_comp_op(t: &Token) -> bool {
    matches!(
        t,
        Token::Eq | Token::Ne | Token::Lt | Token::Le | Token::Gt | Token::Ge
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse_command, parse_expr, parse_sentence};

    #[test]
    fn parses_define_and_modify() {
        let s = parse_sentence(
            r#"
            define_relation(emp, rollback);
            modify_state(emp, {(name: str, sal: int): ("alice", 100)});
            "#,
        )
        .unwrap();
        assert_eq!(s.commands().len(), 2);
        let db = s.eval().unwrap();
        assert_eq!(db.tx.0, 2);
    }

    #[test]
    fn parses_algebra_expressions() {
        let e = parse_expr("project[name](select[sal > 100](rho(emp, inf)))").unwrap();
        assert_eq!(
            e.to_string(),
            "project[name](select[sal > 100](rho(emp, inf)))"
        );
    }

    #[test]
    fn binary_operators_are_left_associative() {
        let e = parse_expr("rho(a, inf) union rho(b, inf) minus rho(c, inf)").unwrap();
        assert_eq!(
            e.to_string(),
            "((rho(a, inf) union rho(b, inf)) minus rho(c, inf))"
        );
    }

    #[test]
    fn parentheses_override_associativity() {
        let e = parse_expr("rho(a, inf) union (rho(b, inf) minus rho(c, inf))").unwrap();
        assert_eq!(
            e.to_string(),
            "(rho(a, inf) union (rho(b, inf) minus rho(c, inf)))"
        );
    }

    #[test]
    fn parses_rollback_at_transaction() {
        let e = parse_expr("rho(emp, 42)").unwrap();
        assert_eq!(e, Expr::rollback("emp", TxSpec::At(TransactionNumber(42))));
    }

    #[test]
    fn parses_empty_state() {
        let e = parse_expr("{(x: int):}").unwrap();
        match e {
            Expr::SnapshotConst(s) => assert!(s.is_empty()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_all_literal_kinds() {
        let e =
            parse_expr(r#"{(i: int, r: real, b: bool, s: str): (-3, 2.5, true, "hi")}"#).unwrap();
        match e {
            Expr::SnapshotConst(s) => {
                let t = s.iter().next().unwrap();
                assert_eq!(t.get(0), &Value::Int(-3));
                assert_eq!(t.get(1), &Value::real(2.5));
                assert_eq!(t.get(2), &Value::Bool(true));
                assert_eq!(t.get(3), &Value::str("hi"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_predicates_with_precedence() {
        // `or` binds looser than `and`.
        let e = parse_expr("select[a = 1 or b = 2 and c = 3](rho(r, inf))").unwrap();
        assert_eq!(
            e.to_string(),
            "select[(a = 1 or (b = 2 and c = 3))](rho(r, inf))"
        );
    }

    #[test]
    fn parses_bool_operand_vs_pred_constant() {
        let e = parse_expr("select[flag = true and true](rho(r, inf))").unwrap();
        assert_eq!(e.to_string(), "select[(flag = true and true)](rho(r, inf))");
    }

    #[test]
    fn parses_historical_constant() {
        let e = parse_expr(
            r#"historical {(name: str): ("alice") @ {[0, 10)}, ("bob") @ {[5, forever)}}"#,
        )
        .unwrap();
        match e {
            Expr::HistoricalConst(h) => {
                assert_eq!(h.len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_delta() {
        let e =
            parse_expr("delta[valid overlaps {[3, 7)}; valid intersect {[3, 7)}](hrho(h, inf))")
                .unwrap();
        match &e {
            Expr::Delta(g, v, _) => {
                assert!(matches!(g, TemporalPred::Overlaps(..)));
                assert!(matches!(v, TemporalExpr::Intersect(..)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_parenthesized_temporal_predicate() {
        let e = parse_expr(
            "delta[(valid overlaps {[0, 5)}) and not valid precedes {[9, 10)}; valid](hrho(h, inf))",
        )
        .unwrap();
        assert!(matches!(e, Expr::Delta(TemporalPred::And(..), _, _)));
    }

    #[test]
    fn parses_parenthesized_temporal_expr_comparison() {
        let e = parse_expr("delta[(valid union {[0, 2)}) subset {[0, 50)}; valid](hrho(h, inf))")
            .unwrap();
        assert!(matches!(e, Expr::Delta(TemporalPred::Subset(..), _, _)));
    }

    #[test]
    fn parses_first_last() {
        let e =
            parse_expr("delta[first(valid) precedes last(valid); valid](hrho(h, inf))").unwrap();
        assert!(matches!(e, Expr::Delta(TemporalPred::Precedes(..), _, _)));
    }

    #[test]
    fn asof_sugar_rewrites_current_leaves() {
        let e = parse_expr("asof[5](select[x > 1](rho(r, inf) union rho(q, 3)))").unwrap();
        assert_eq!(e.to_string(), "select[x > 1]((rho(r, 5) union rho(q, 3)))");
        // ∞ is not a valid asof target.
        assert!(parse_expr("asof[inf](rho(r, inf))").is_err());
    }

    #[test]
    fn parses_extension_commands() {
        assert!(matches!(
            parse_command("delete_relation(emp)").unwrap(),
            Command::DeleteRelation(_)
        ));
        assert!(matches!(
            parse_command(r#"evolve_scheme(emp, add dept: str default "unknown")"#).unwrap(),
            Command::EvolveScheme(_, SchemeChange::AddAttribute { .. })
        ));
        assert!(matches!(
            parse_command("evolve_scheme(emp, drop sal)").unwrap(),
            Command::EvolveScheme(_, SchemeChange::DropAttribute(_))
        ));
        assert!(matches!(
            parse_command("evolve_scheme(emp, rename sal to salary)").unwrap(),
            Command::EvolveScheme(_, SchemeChange::RenameAttribute { .. })
        ));
        assert!(matches!(
            parse_command("display(rho(emp, inf))").unwrap(),
            Command::Display(_)
        ));
    }

    #[test]
    fn error_positions_are_reported() {
        let e = parse_sentence("define_relation(emp rollback);").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("expected"));
    }

    #[test]
    fn span_tables_record_operator_positions() {
        use crate::parse_expr_spanned;
        // Columns:  1        10        20        30
        //           |        |         |         |
        let src = "project[x](rho(a, inf) union rho(b, inf))";
        let (e, sp) = parse_expr_spanned(src).unwrap();
        assert!(matches!(e, Expr::Project(..)));
        assert_eq!((sp.span.line, sp.span.col), (1, 1)); // `project`
        let union = &sp.children[0];
        assert_eq!((union.span.line, union.span.col), (1, 24)); // `union`
        assert_eq!(
            (union.children[0].span.line, union.children[0].span.col),
            (1, 12)
        ); // `rho(a, …)`
        assert_eq!(
            (union.children[1].span.line, union.children[1].span.col),
            (1, 30)
        ); // `rho(b, …)`
    }

    #[test]
    fn span_tables_follow_lines_and_mirror_shape() {
        use crate::parse_sentence_spanned;
        let src = "define_relation(emp, rollback);\nmodify_state(emp,\n  rho(emp, inf));\n";
        let (s, sp) = parse_sentence_spanned(src).unwrap();
        assert_eq!(s.commands().len(), 2);
        assert_eq!(sp.commands.len(), 2);
        assert_eq!((sp.commands[0].head.line, sp.commands[0].head.col), (1, 1));
        assert!(sp.commands[0].expr.is_none());
        assert_eq!((sp.commands[1].head.line, sp.commands[1].head.col), (2, 1));
        let esp = sp.commands[1].expr.as_ref().unwrap();
        assert_eq!((esp.span.line, esp.span.col), (3, 3)); // `rho` on line 3
        assert!(esp.children.is_empty());
    }

    #[test]
    fn parens_are_transparent_and_asof_preserves_spans() {
        use crate::parse_expr_spanned;
        let (_, sp) = parse_expr_spanned("(rho(a, inf))").unwrap();
        assert_eq!((sp.span.line, sp.span.col), (1, 2)); // inner `rho`
        let (e, sp) = parse_expr_spanned("asof[3](rho(a, inf) union rho(b, inf))").unwrap();
        // asof rewrites rollback arguments without changing tree shape…
        assert!(matches!(e, Expr::Union(..)));
        // …so the span table is the inner expression's.
        assert_eq!((sp.span.line, sp.span.col), (1, 21)); // `union`
        assert_eq!(sp.children.len(), 2);
    }

    #[test]
    fn rejects_unknown_relation_type() {
        let e = parse_sentence("define_relation(emp, versioned);").unwrap_err();
        assert!(e.message.contains("versioned"));
    }

    #[test]
    fn rejects_missing_semicolon() {
        assert!(parse_sentence("define_relation(emp, rollback)").is_err());
    }

    #[test]
    fn rejects_trailing_garbage_in_expr() {
        assert!(parse_expr("rho(a, inf) rho(b, inf)").is_err());
    }

    #[test]
    fn comments_are_allowed_between_commands() {
        let s = parse_sentence("-- set up\ndefine_relation(emp, rollback); -- done\n").unwrap();
        assert_eq!(s.commands().len(), 1);
    }

    #[test]
    fn invalid_period_is_reported() {
        let e = parse_expr("historical {(x: int): (1) @ {[5, 5)}}").unwrap_err();
        assert!(e.message.contains("empty"));
    }
}
