//! Round-trip property: `parse(print(x)) == x` for randomly generated
//! expressions, commands, and sentences.

use proptest::prelude::*;
use txtime_snapshot::rng::rngs::StdRng;
use txtime_snapshot::rng::{Rng, SeedableRng};

use txtime_core::generate::{random_commands, CmdGenConfig};
use txtime_core::{Command, Expr, RelationType, SchemeChange, Sentence, TransactionNumber, TxSpec};
use txtime_historical::generate::{random_element, random_historical_state, HistGenConfig};
use txtime_historical::{TemporalExpr, TemporalPred};
use txtime_parser::print::{print_command, print_expr, print_sentence};
use txtime_parser::{parse_command, parse_expr, parse_sentence};
use txtime_snapshot::generate::{random_predicate, random_state, GenConfig};
use txtime_snapshot::{DomainType, Schema, Value};

fn schema() -> Schema {
    Schema::new(vec![
        ("a0", DomainType::Int),
        ("a1", DomainType::Str),
        ("a2", DomainType::Bool),
    ])
    .unwrap()
}

fn cfg() -> GenConfig {
    GenConfig {
        arity: 3,
        cardinality: 6,
        int_range: 20,
        str_pool: 5,
    }
}

/// Generates a random expression of bounded depth mixing the full
/// operator vocabulary. Snapshot-kind and historical-kind subtrees are
/// kept separate so the expression is *syntactically* coherent (the
/// grammar does not prevent kind errors; evaluation does).
fn random_expr(rng: &mut StdRng, depth: usize, historical: bool) -> Expr {
    if depth == 0 {
        return random_leaf(rng, historical);
    }
    if historical {
        match rng.gen_range(0..6) {
            0 => random_expr(rng, depth - 1, true).hunion(random_expr(rng, depth - 1, true)),
            1 => random_expr(rng, depth - 1, true).hdifference(random_expr(rng, depth - 1, true)),
            2 => random_expr(rng, depth - 1, true).hproject(vec!["a0".into(), "a1".into()]),
            3 => random_expr(rng, depth - 1, true).hselect(random_predicate(
                rng,
                &schema(),
                &cfg(),
                1,
            )),
            4 => {
                random_expr(rng, depth - 1, true).delta(random_tpred(rng, 1), random_texpr(rng, 1))
            }
            _ => random_leaf(rng, true),
        }
    } else {
        match rng.gen_range(0..6) {
            0 => random_expr(rng, depth - 1, false).union(random_expr(rng, depth - 1, false)),
            1 => random_expr(rng, depth - 1, false).difference(random_expr(rng, depth - 1, false)),
            2 => random_expr(rng, depth - 1, false).project(vec!["a0".into(), "a2".into()]),
            3 => random_expr(rng, depth - 1, false).select(random_predicate(
                rng,
                &schema(),
                &cfg(),
                1,
            )),
            4 => random_expr(rng, depth - 1, false).product(random_expr(rng, depth - 1, false)),
            _ => random_leaf(rng, false),
        }
    }
}

fn random_leaf(rng: &mut StdRng, historical: bool) -> Expr {
    let spec = if rng.gen_bool(0.5) {
        TxSpec::Current
    } else {
        TxSpec::At(TransactionNumber(rng.gen_range(0..50)))
    };
    if historical {
        match rng.gen_range(0..2) {
            0 => Expr::hrollback(format!("h{}", rng.gen_range(0..3)), spec),
            _ => {
                let hcfg = HistGenConfig {
                    values: cfg(),
                    horizon: 30,
                    max_periods: 2,
                };
                Expr::historical_const(random_historical_state(rng, &schema(), &hcfg))
            }
        }
    } else {
        match rng.gen_range(0..2) {
            0 => Expr::rollback(format!("r{}", rng.gen_range(0..3)), spec),
            _ => Expr::snapshot_const(random_state(rng, &schema(), &cfg())),
        }
    }
}

fn random_texpr(rng: &mut StdRng, depth: usize) -> TemporalExpr {
    if depth == 0 {
        return if rng.gen_bool(0.5) {
            TemporalExpr::ValidTime
        } else {
            let hcfg = HistGenConfig {
                values: cfg(),
                horizon: 30,
                max_periods: 2,
            };
            TemporalExpr::constant(random_element(rng, &hcfg))
        };
    }
    match rng.gen_range(0..5) {
        0 => TemporalExpr::union(random_texpr(rng, depth - 1), random_texpr(rng, depth - 1)),
        1 => TemporalExpr::intersect(random_texpr(rng, depth - 1), random_texpr(rng, depth - 1)),
        2 => TemporalExpr::difference(random_texpr(rng, depth - 1), random_texpr(rng, depth - 1)),
        3 => TemporalExpr::first(random_texpr(rng, depth - 1)),
        _ => TemporalExpr::last(random_texpr(rng, depth - 1)),
    }
}

fn random_tpred(rng: &mut StdRng, depth: usize) -> TemporalPred {
    if depth == 0 {
        return match rng.gen_range(0..4) {
            0 => TemporalPred::equals(random_texpr(rng, 1), random_texpr(rng, 1)),
            1 => TemporalPred::subset(random_texpr(rng, 1), random_texpr(rng, 1)),
            2 => TemporalPred::overlaps(random_texpr(rng, 1), random_texpr(rng, 1)),
            _ => TemporalPred::precedes(random_texpr(rng, 1), random_texpr(rng, 1)),
        };
    }
    match rng.gen_range(0..3) {
        0 => random_tpred(rng, depth - 1).and(random_tpred(rng, depth - 1)),
        1 => random_tpred(rng, depth - 1).or(random_tpred(rng, depth - 1)),
        _ => random_tpred(rng, depth - 1).not(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn snapshot_expr_round_trip(seed in any::<u64>(), depth in 0usize..4) {
        let mut rng = StdRng::seed_from_u64(seed);
        let e = random_expr(&mut rng, depth, false);
        let printed = print_expr(&e);
        let reparsed = parse_expr(&printed)
            .unwrap_or_else(|err| panic!("reparse failed: {err}\ninput: {printed}"));
        prop_assert_eq!(reparsed, e);
    }

    #[test]
    fn historical_expr_round_trip(seed in any::<u64>(), depth in 0usize..4) {
        let mut rng = StdRng::seed_from_u64(seed);
        let e = random_expr(&mut rng, depth, true);
        let printed = print_expr(&e);
        let reparsed = parse_expr(&printed)
            .unwrap_or_else(|err| panic!("reparse failed: {err}\ninput: {printed}"));
        prop_assert_eq!(reparsed, e);
    }

    #[test]
    fn sentence_round_trip(seed in any::<u64>(), len in 1usize..15) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cmds = random_commands(&mut rng, &schema(), &CmdGenConfig {
            values: cfg(),
            relations: vec!["r0".into(), "r1".into()],
            churn: 0.3,
        }, len);
        let s = Sentence::new(cmds).unwrap();
        let printed = print_sentence(&s);
        let reparsed = parse_sentence(&printed)
            .unwrap_or_else(|err| panic!("reparse failed: {err}\ninput: {printed}"));
        prop_assert_eq!(reparsed, s);
    }

    #[test]
    fn extension_command_round_trip(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cmds = vec![
            Command::define_relation("emp", RelationType::Rollback),
            Command::delete_relation("emp"),
            Command::evolve_scheme("emp", SchemeChange::AddAttribute {
                name: "dept".into(),
                domain: DomainType::Str,
                default: Value::str(format!("d{}", rng.gen_range(0..5))),
            }),
            Command::evolve_scheme("emp", SchemeChange::DropAttribute("a0".into())),
            Command::evolve_scheme("emp", SchemeChange::RenameAttribute {
                from: "a1".into(),
                to: "a9".into(),
            }),
            Command::display(random_expr(&mut rng, 2, false)),
        ];
        for c in cmds {
            let printed = print_command(&c);
            prop_assert_eq!(parse_command(&printed).unwrap(), c);
        }
    }
}
