//! Counters for the incremental view memo.
//!
//! The memo itself — hash-consed expression keys, cached states, delta
//! propagation — lives above this crate (`txtime-optimizer` owns the
//! hash-consing, `txtime-storage` owns the registry), but its accounting
//! is type-free and belongs here with the other execution counters, so
//! `txtime stats` can surface memo and pool numbers side by side.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Thread-safe counters shared by one view registry.
///
/// All counters are monotonically increasing and relaxed: they are
/// diagnostics, not synchronization.
#[derive(Debug, Default)]
pub struct MemoCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    registrations: AtomicU64,
    propagations: AtomicU64,
    propagated_changes: AtomicU64,
    fallbacks: AtomicU64,
    invalidations: AtomicU64,
}

impl MemoCounters {
    /// Fresh zeroed counters.
    pub fn new() -> MemoCounters {
        MemoCounters::default()
    }

    /// Records a lookup that returned a cached, still-valid state.
    pub fn add_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a lookup that found nothing usable.
    pub fn add_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Records an expression entering the memo.
    pub fn add_registration(&self) {
        self.registrations.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one memoized node updated by a per-operator delta rule,
    /// carrying `changes` changed tuples/entries.
    pub fn add_propagation(&self, changes: u64) {
        self.propagations.fetch_add(1, Ordering::Relaxed);
        self.propagated_changes
            .fetch_add(changes, Ordering::Relaxed);
    }

    /// Records one memoized node that fell back to targeted
    /// re-evaluation from its (cached) children instead of a delta rule.
    pub fn add_fallback(&self) {
        self.fallbacks.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `views` cached states dropped by invalidation.
    pub fn add_invalidations(&self, views: u64) {
        self.invalidations.fetch_add(views, Ordering::Relaxed);
    }

    /// A point-in-time snapshot; `roots` and `views` are gauges supplied
    /// by the registry that owns the cached states.
    pub fn snapshot(&self, roots: usize, views: usize) -> MemoStats {
        MemoStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            registrations: self.registrations.load(Ordering::Relaxed),
            propagations: self.propagations.load(Ordering::Relaxed),
            propagated_changes: self.propagated_changes.load(Ordering::Relaxed),
            fallbacks: self.fallbacks.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            roots,
            views,
        }
    }

    /// Zeroes every counter (gauges are owned by the registry).
    pub fn reset(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.registrations.store(0, Ordering::Relaxed);
        self.propagations.store(0, Ordering::Relaxed);
        self.propagated_changes.store(0, Ordering::Relaxed);
        self.fallbacks.store(0, Ordering::Relaxed);
        self.invalidations.store(0, Ordering::Relaxed);
    }
}

/// A snapshot of one view registry's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Lookups answered from a cached, still-valid state.
    pub hits: u64,
    /// Lookups that found nothing usable.
    pub misses: u64,
    /// Expressions registered into the memo.
    pub registrations: u64,
    /// Memoized nodes updated by a per-operator delta rule.
    pub propagations: u64,
    /// Changed tuples/entries carried by those delta rules.
    pub propagated_changes: u64,
    /// Memoized nodes recomputed from their cached children because a
    /// delta rule did not apply (×/δ over threshold, unknown delta).
    pub fallbacks: u64,
    /// Cached states dropped by invalidation (reschema, relation
    /// deletion, scheme evolution, history truncation, eviction).
    pub invalidations: u64,
    /// Registered root expressions currently held.
    pub roots: usize,
    /// Cached node states currently held (roots plus shared
    /// subexpressions).
    pub views: usize,
}

impl MemoStats {
    /// Fraction of lookups that hit, in `[0, 1]` (0 when no lookups).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl fmt::Display for MemoStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "memo:  {} roots / {} cached views, {} hits / {} misses ({:.1}% hit rate)",
            self.roots,
            self.views,
            self.hits,
            self.misses,
            self.hit_rate() * 100.0
        )?;
        writeln!(
            f,
            "       {} registrations, {} propagations ({} changes), {} fallbacks, {} invalidations",
            self.registrations,
            self.propagations,
            self.propagated_changes,
            self.fallbacks,
            self.invalidations
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let c = MemoCounters::new();
        c.add_hit();
        c.add_hit();
        c.add_miss();
        c.add_registration();
        c.add_propagation(7);
        c.add_propagation(3);
        c.add_fallback();
        c.add_invalidations(4);
        let s = c.snapshot(2, 5);
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 1);
        assert_eq!(s.registrations, 1);
        assert_eq!(s.propagations, 2);
        assert_eq!(s.propagated_changes, 10);
        assert_eq!(s.fallbacks, 1);
        assert_eq!(s.invalidations, 4);
        assert_eq!((s.roots, s.views), (2, 5));
        assert!((s.hit_rate() - 2.0 / 3.0).abs() < 1e-9);
        c.reset();
        assert_eq!(c.snapshot(0, 0), MemoStats::default());
    }

    #[test]
    fn stats_display_shows_key_numbers() {
        let c = MemoCounters::new();
        c.add_hit();
        c.add_miss();
        let text = c.snapshot(1, 3).to_string();
        assert!(text.contains("1 roots / 3 cached views"));
        assert!(text.contains("50.0% hit rate"));
        assert_eq!(MemoStats::default().hit_rate(), 0.0);
    }
}
