//! A scoped worker pool for parallel query evaluation.
//!
//! The paper's expressions are side-effect-free and evaluate to a single
//! state ("evaluation of an expression on a specific database does not
//! change that database", §3.4), which makes the algebra embarrassingly
//! parallel: any operator may split its input, evaluate the pieces
//! concurrently, and merge — as long as the merged result is *identical*
//! to the sequential answer. [`ExecPool`] provides exactly that
//! discipline:
//!
//! * **Partition/merge** ([`ExecPool::map_chunks`]): the input is split
//!   into contiguous chunks, each chunk is evaluated on its own scoped
//!   thread, and the per-chunk results are returned **in chunk order**.
//!   Because the inputs come from `BTreeSet`/`BTreeMap`-backed states,
//!   chunks are disjoint ascending ranges of the canonical order, so an
//!   in-order merge reproduces the sequential result bit for bit.
//! * **Independent subtrees** ([`ExecPool::join`]): the two children of a
//!   binary operator are evaluated concurrently; the left result is
//!   always inspected first, so error selection matches the sequential
//!   left-to-right evaluation order.
//!
//! The pool is hermetic — `std::thread::scope` only, no work-stealing
//! runtime — and a pool of **one** thread never spawns: every entry point
//! runs inline on the caller's thread, giving the exact sequential code
//! path. Thread count comes from `ExecPool::new`, or from the
//! `TXTIME_THREADS` environment variable / `available_parallelism` via
//! [`ExecPool::from_env`].
//!
//! Every entry point is attributed to an [`OpKind`] and feeds per-operator
//! call/chunk/wall-time counters, surfaced by [`ExecPool::stats`] (and, in
//! the CLI, `txtime stats`).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

pub mod memo;

pub use memo::{MemoCounters, MemoStats};

/// The operators whose work the pool schedules and accounts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Snapshot selection σ.
    Select,
    /// Snapshot projection π.
    Project,
    /// Snapshot cartesian product ×.
    Product,
    /// Snapshot union ∪.
    Union,
    /// Snapshot difference −.
    Difference,
    /// Historical selection σ̂.
    HSelect,
    /// Historical projection π̂.
    HProject,
    /// Historical product ×̂.
    HProduct,
    /// Historical union ∪̂.
    HUnion,
    /// Historical difference −̂.
    HDifference,
    /// Concurrent evaluation of a binary operator's two subtrees.
    Subtree,
    /// Batched rollback resolution (`Engine::resolve_many`).
    Resolve,
    /// Delta propagation through memoized views (`modify_state`).
    Propagate,
    /// Per-shard fan-out of a sharded store's rollback resolution.
    Shard,
    /// Delta-chain compaction (folding deltas into checkpoints).
    Compact,
    /// Cost-based plan search (`Engine::eval` at optimize level 2);
    /// recorded externally, chunks count the plans enumerated.
    Optimize,
    /// Snapshot physical equi-join (hash or merge); chunks count probe
    /// partitions.
    Join,
    /// Historical physical equi-join.
    HJoin,
    /// One served client request (parse→check→plan→execute); recorded
    /// externally by `txtime serve`, chunks count requests.
    Serve,
}

impl OpKind {
    /// Every operator kind, in display order.
    pub const ALL: [OpKind; 19] = [
        OpKind::Select,
        OpKind::Project,
        OpKind::Product,
        OpKind::Join,
        OpKind::Union,
        OpKind::Difference,
        OpKind::HSelect,
        OpKind::HProject,
        OpKind::HProduct,
        OpKind::HJoin,
        OpKind::HUnion,
        OpKind::HDifference,
        OpKind::Subtree,
        OpKind::Resolve,
        OpKind::Propagate,
        OpKind::Shard,
        OpKind::Compact,
        OpKind::Optimize,
        OpKind::Serve,
    ];

    /// The operator's display name.
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Select => "select",
            OpKind::Project => "project",
            OpKind::Product => "product",
            OpKind::Union => "union",
            OpKind::Difference => "difference",
            OpKind::HSelect => "hselect",
            OpKind::HProject => "hproject",
            OpKind::HProduct => "hproduct",
            OpKind::HUnion => "hunion",
            OpKind::HDifference => "hdifference",
            OpKind::Subtree => "subtree",
            OpKind::Resolve => "resolve",
            OpKind::Propagate => "propagate",
            OpKind::Shard => "shard",
            OpKind::Compact => "compact",
            OpKind::Optimize => "optimize",
            OpKind::Join => "join",
            OpKind::HJoin => "hjoin",
            OpKind::Serve => "serve",
        }
    }

    /// The minimum number of work units a chunk of this operator should
    /// carry before splitting pays for a thread spawn. The partitioned
    /// kernels derive their grains from this table (for the set
    /// operators the unit is an input tuple/entry; for the products it
    /// is an output pair), so tiny inputs stay inline on the calling
    /// thread instead of paying spawn overhead.
    pub const fn min_chunk(self) -> usize {
        match self {
            // Per-item work is a cheap comparison/copy: demand big chunks.
            OpKind::Select
            | OpKind::Project
            | OpKind::Union
            | OpKind::Difference
            | OpKind::HSelect
            | OpKind::HProject
            | OpKind::HUnion
            | OpKind::HDifference => 512,
            // One left item fans out over the whole right operand: the
            // grain is sized in output pairs, not input items.
            OpKind::Product | OpKind::HProduct => 4096,
            // Per probe tuple: one hash lookup plus its matches.
            OpKind::Join | OpKind::HJoin => 512,
            // Units are whole subtrees / rollback targets / memoized
            // views / shards / chains.
            OpKind::Subtree
            | OpKind::Resolve
            | OpKind::Propagate
            | OpKind::Shard
            | OpKind::Compact
            | OpKind::Optimize
            | OpKind::Serve => 1,
        }
    }

    fn index(self) -> usize {
        OpKind::ALL.iter().position(|&k| k == self).expect("listed")
    }
}

#[derive(Default)]
struct OpCounters {
    calls: AtomicU64,
    chunks: AtomicU64,
    nanos: AtomicU64,
}

/// One operator's accumulated counters (a row of [`ExecStats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpStat {
    /// Operator display name.
    pub name: &'static str,
    /// Scheduled invocations.
    pub calls: u64,
    /// Chunks (units of parallel work) across all invocations; a call
    /// that ran as a single inline chunk counts 1.
    pub chunks: u64,
    /// Wall-clock nanoseconds across all invocations, measured on the
    /// scheduling thread (spawn to last join).
    pub nanos: u64,
}

/// A snapshot of the pool's per-operator counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecStats {
    /// The pool's thread count.
    pub threads: usize,
    /// Per-operator rows, in [`OpKind::ALL`] order.
    pub ops: Vec<OpStat>,
}

impl ExecStats {
    /// Total scheduled invocations across all operators.
    pub fn total_calls(&self) -> u64 {
        self.ops.iter().map(|o| o.calls).sum()
    }

    /// Total chunks across all operators.
    pub fn total_chunks(&self) -> u64 {
        self.ops.iter().map(|o| o.chunks).sum()
    }
}

impl std::fmt::Display for ExecStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "exec: {} thread(s) (host parallelism {})",
            self.threads,
            ExecPool::host_parallelism()
        )?;
        for op in self.ops.iter().filter(|o| o.calls > 0) {
            writeln!(
                f,
                "      {:<12} {:>8} calls {:>8} chunks {:>10.3} ms",
                op.name,
                op.calls,
                op.chunks,
                op.nanos as f64 / 1e6
            )?;
        }
        Ok(())
    }
}

/// Accumulated physical-join gauges, beyond the generic per-operator
/// call/chunk/time counters: how much was built, probed, and partitioned.
/// Surfaced by `txtime stats` so join regressions are observable without
/// a profiler.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JoinStats {
    /// Join kernel invocations (snapshot and historical).
    pub joins: u64,
    /// Total build-side rows across all joins.
    pub build_rows: u64,
    /// Total probe-side rows across all joins.
    pub probe_rows: u64,
    /// Total probe partitions (chunks) scheduled.
    pub partitions: u64,
}

impl std::fmt::Display for JoinStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "joins: {} ({} build rows, {} probe rows, {} partitions)",
            self.joins, self.build_rows, self.probe_rows, self.partitions
        )
    }
}

/// A scoped worker pool with a fixed thread budget.
///
/// The pool holds no threads while idle: each partition/merge call opens a
/// `std::thread::scope`, spawns at most `threads − 1` workers (the
/// caller's thread always takes the first chunk), and joins them before
/// returning. A one-thread pool is the exact sequential path — no scope,
/// no spawn, no chunk boundary.
pub struct ExecPool {
    threads: usize,
    /// Extra threads currently spawned by [`ExecPool::join`]; bounds
    /// nested subtree parallelism to the thread budget.
    in_flight: AtomicUsize,
    counters: [OpCounters; OpKind::ALL.len()],
    join_counters: [AtomicU64; 4],
}

impl std::fmt::Debug for ExecPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecPool")
            .field("threads", &self.threads)
            .finish_non_exhaustive()
    }
}

impl ExecPool {
    /// A pool with the given thread budget (0 is clamped to 1).
    ///
    /// The budget is taken verbatim — oversubscription included — for
    /// callers that deliberately test scheduling. User-facing entry
    /// points should prefer [`ExecPool::clamped`].
    pub fn new(threads: usize) -> ExecPool {
        ExecPool {
            threads: threads.max(1),
            in_flight: AtomicUsize::new(0),
            counters: std::array::from_fn(|_| OpCounters::default()),
            join_counters: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// The host's available parallelism (1 when it cannot be queried).
    pub fn host_parallelism() -> usize {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }

    /// A pool with the requested budget clamped to the host's available
    /// parallelism: asking for 8 threads on a 1-core host yields a
    /// sequential pool instead of 8 threads contending for one core
    /// (where spawn/join overhead makes partitioned kernels *slower*
    /// than sequential).
    pub fn clamped(threads: usize) -> ExecPool {
        ExecPool::new(threads.max(1).min(ExecPool::host_parallelism()))
    }

    /// A pool sized from the environment: `TXTIME_THREADS` if set to a
    /// positive integer, otherwise `std::thread::available_parallelism`.
    pub fn from_env() -> ExecPool {
        let threads = std::env::var("TXTIME_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
        ExecPool::new(threads)
    }

    /// The shared one-thread pool: the exact sequential path.
    pub fn sequential() -> &'static ExecPool {
        static SEQ: OnceLock<ExecPool> = OnceLock::new();
        SEQ.get_or_init(|| ExecPool::new(1))
    }

    /// The pool's thread budget.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Partition/merge: splits `items` into at most `threads` contiguous
    /// chunks of at least `grain` items, maps each chunk with `f` (the
    /// first chunk on the calling thread, the rest on scoped workers),
    /// and returns the results **in chunk order**.
    ///
    /// Because chunks are contiguous, results at index `i` cover items
    /// strictly before those at index `i + 1` — a caller that merges the
    /// results in order reproduces what a single sequential pass over
    /// `items` would have produced.
    pub fn map_chunks<T, R, F>(&self, op: OpKind, items: &[T], grain: usize, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&[T]) -> R + Sync,
    {
        let started = Instant::now();
        // Every chunk gets at least `grain` items, so tiny inputs stay on
        // the calling thread instead of paying spawn overhead.
        let want = (items.len() / grain.max(1)).clamp(1, self.threads.max(1));
        let results = if want <= 1 {
            vec![f(items)]
        } else {
            let chunk_len = items.len().div_ceil(want);
            let chunks: Vec<&[T]> = items.chunks(chunk_len).collect();
            std::thread::scope(|s| {
                let workers: Vec<_> = chunks[1..].iter().map(|&c| s.spawn(|| f(c))).collect();
                let mut out = Vec::with_capacity(chunks.len());
                out.push(f(chunks[0]));
                for w in workers {
                    out.push(w.join().expect("exec worker panicked"));
                }
                out
            })
        };
        self.record(
            op,
            results.len() as u64,
            started.elapsed().as_nanos() as u64,
        );
        results
    }

    /// Evaluates two independent computations, concurrently when a thread
    /// is available, and returns `(a, b)`.
    ///
    /// Callers inspect the left result first, so error selection matches
    /// sequential left-to-right evaluation regardless of which side
    /// finished first.
    pub fn join<A, B, FA, FB>(&self, op: OpKind, fa: FA, fb: FB) -> (A, B)
    where
        A: Send,
        B: Send,
        FA: FnOnce() -> A + Send,
        FB: FnOnce() -> B + Send,
    {
        // Spawning is bounded by the thread budget: deeply nested binary
        // nodes degrade to inline evaluation instead of a thread explosion.
        if self.threads <= 1 || self.in_flight.load(Ordering::Relaxed) + 1 >= self.threads {
            return (fa(), fb());
        }
        let started = Instant::now();
        self.in_flight.fetch_add(1, Ordering::Relaxed);
        let out = std::thread::scope(|s| {
            let left = s.spawn(fa);
            let b = fb();
            (left.join().expect("exec worker panicked"), b)
        });
        self.in_flight.fetch_sub(1, Ordering::Relaxed);
        self.record(op, 2, started.elapsed().as_nanos() as u64);
        out
    }

    fn record(&self, op: OpKind, chunks: u64, nanos: u64) {
        let c = &self.counters[op.index()];
        c.calls.fetch_add(1, Ordering::Relaxed);
        c.chunks.fetch_add(chunks, Ordering::Relaxed);
        c.nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Accounts work measured outside the pool under `op`, so phases
    /// the pool does not itself schedule (the engine's plan search)
    /// appear in the same [`ExecStats`] table.
    pub fn record_external(&self, op: OpKind, chunks: u64, elapsed: std::time::Duration) {
        self.record(op, chunks, elapsed.as_nanos() as u64);
    }

    /// Accounts one physical-join invocation's build/probe/partition
    /// volumes (the join kernels call this once per join).
    pub fn note_join(&self, build_rows: u64, probe_rows: u64, partitions: u64) {
        self.join_counters[0].fetch_add(1, Ordering::Relaxed);
        self.join_counters[1].fetch_add(build_rows, Ordering::Relaxed);
        self.join_counters[2].fetch_add(probe_rows, Ordering::Relaxed);
        self.join_counters[3].fetch_add(partitions, Ordering::Relaxed);
    }

    /// A snapshot of the physical-join gauges.
    pub fn join_stats(&self) -> JoinStats {
        JoinStats {
            joins: self.join_counters[0].load(Ordering::Relaxed),
            build_rows: self.join_counters[1].load(Ordering::Relaxed),
            probe_rows: self.join_counters[2].load(Ordering::Relaxed),
            partitions: self.join_counters[3].load(Ordering::Relaxed),
        }
    }

    /// A snapshot of the per-operator counters.
    pub fn stats(&self) -> ExecStats {
        ExecStats {
            threads: self.threads,
            ops: OpKind::ALL
                .iter()
                .map(|&k| {
                    let c = &self.counters[k.index()];
                    OpStat {
                        name: k.name(),
                        calls: c.calls.load(Ordering::Relaxed),
                        chunks: c.chunks.load(Ordering::Relaxed),
                        nanos: c.nanos.load(Ordering::Relaxed),
                    }
                })
                .collect(),
        }
    }

    /// Zeroes every counter.
    pub fn reset_stats(&self) {
        for c in &self.counters {
            c.calls.store(0, Ordering::Relaxed);
            c.chunks.store(0, Ordering::Relaxed);
            c.nanos.store(0, Ordering::Relaxed);
        }
        for c in &self.join_counters {
            c.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_threads_clamp_to_one() {
        assert_eq!(ExecPool::new(0).threads(), 1);
        assert_eq!(ExecPool::sequential().threads(), 1);
    }

    #[test]
    fn map_chunks_preserves_item_order() {
        let items: Vec<u64> = (0..10_000).collect();
        for threads in [1, 2, 3, 8] {
            let pool = ExecPool::new(threads);
            let sums = pool.map_chunks(OpKind::Select, &items, 16, |chunk| chunk.to_vec());
            let flat: Vec<u64> = sums.into_iter().flatten().collect();
            assert_eq!(flat, items, "{threads} threads");
        }
    }

    #[test]
    fn map_chunks_respects_grain_and_budget() {
        let items: Vec<u64> = (0..100).collect();
        let pool = ExecPool::new(8);
        // 100 items at grain 60 → one chunk, inline.
        assert_eq!(
            pool.map_chunks(OpKind::Union, &items, 60, <[u64]>::len)
                .len(),
            1
        );
        // grain 10 → 8 chunks (thread budget).
        assert_eq!(
            pool.map_chunks(OpKind::Union, &items, 10, <[u64]>::len)
                .len(),
            8
        );
        // grain 1 on a 2-thread pool → 2 chunks.
        let two = ExecPool::new(2);
        assert_eq!(
            two.map_chunks(OpKind::Union, &items, 1, <[u64]>::len).len(),
            2
        );
    }

    #[test]
    fn single_thread_pool_never_splits() {
        let items: Vec<u64> = (0..10_000).collect();
        let pool = ExecPool::new(1);
        let out = pool.map_chunks(OpKind::Product, &items, 1, <[u64]>::len);
        assert_eq!(out, vec![10_000]);
    }

    #[test]
    fn join_returns_both_sides_in_order() {
        for threads in [1, 4] {
            let pool = ExecPool::new(threads);
            let (a, b) = pool.join(OpKind::Subtree, || 1 + 1, || "two");
            assert_eq!((a, b), (2, "two"));
        }
    }

    #[test]
    fn join_nests_without_exceeding_budget() {
        let pool = ExecPool::new(2);
        let (a, (b, c)) = pool.join(
            OpKind::Subtree,
            || 1,
            || pool.join(OpKind::Subtree, || 2, || 3),
        );
        assert_eq!((a, b, c), (1, 2, 3));
    }

    #[test]
    fn stats_account_calls_chunks_and_reset() {
        let pool = ExecPool::new(4);
        let items: Vec<u64> = (0..64).collect();
        pool.map_chunks(OpKind::Select, &items, 8, <[u64]>::len);
        pool.map_chunks(OpKind::Select, &items, 64, <[u64]>::len);
        pool.join(OpKind::Subtree, || (), || ());
        let stats = pool.stats();
        assert_eq!(stats.threads, 4);
        let select = stats.ops.iter().find(|o| o.name == "select").unwrap();
        assert_eq!(select.calls, 2);
        assert_eq!(select.chunks, 4 + 1);
        let subtree = stats.ops.iter().find(|o| o.name == "subtree").unwrap();
        assert_eq!(subtree.calls, 1);
        assert!(stats.total_calls() >= 3);
        assert!(stats.to_string().contains("select"));
        pool.reset_stats();
        assert_eq!(pool.stats().total_calls(), 0);
    }

    #[test]
    fn clamped_never_exceeds_host_parallelism() {
        let host = ExecPool::host_parallelism();
        assert!(host >= 1);
        assert_eq!(ExecPool::clamped(0).threads(), 1);
        assert_eq!(ExecPool::clamped(1).threads(), 1);
        assert!(ExecPool::clamped(usize::MAX).threads() <= host);
        // Explicit `new` keeps the verbatim budget for scheduling tests.
        assert_eq!(ExecPool::new(8).threads(), 8);
    }

    #[test]
    fn min_chunk_floors_are_positive() {
        for kind in OpKind::ALL {
            assert!(kind.min_chunk() >= 1, "{}", kind.name());
        }
        // The set kernels demand larger chunks than subtree scheduling.
        assert!(OpKind::Union.min_chunk() > OpKind::Subtree.min_chunk());
    }

    #[test]
    fn from_env_reads_txtime_threads() {
        // Serialized within this test: no other exec test reads the env.
        std::env::set_var("TXTIME_THREADS", "3");
        assert_eq!(ExecPool::from_env().threads(), 3);
        std::env::set_var("TXTIME_THREADS", "not a number");
        assert!(ExecPool::from_env().threads() >= 1);
        std::env::remove_var("TXTIME_THREADS");
        assert!(ExecPool::from_env().threads() >= 1);
    }
}
