//! The server's gauges: session admission and group commit.
//!
//! Counters live in atomics shared by every session thread and the
//! committer; [`SessionStats`]/[`GroupCommitStats`] are the point-in-time
//! snapshots the `STATS` verb, `txtime stats --addr`, and the shutdown
//! summary render.

use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Live admission counters (interior mutability; relaxed ordering is
/// enough — gauges, not synchronization).
#[derive(Default)]
pub(crate) struct SessionCounters {
    pub accepted: AtomicU64,
    pub active: AtomicUsize,
    pub rejected_sessions: AtomicU64,
    pub shed_requests: AtomicU64,
    pub requests: AtomicU64,
    pub reads: AtomicU64,
    pub writes: AtomicU64,
    pub check_rejected: AtomicU64,
}

impl SessionCounters {
    pub fn snapshot(&self) -> SessionStats {
        SessionStats {
            accepted: self.accepted.load(Ordering::Relaxed),
            active: self.active.load(Ordering::Relaxed),
            rejected_sessions: self.rejected_sessions.load(Ordering::Relaxed),
            shed_requests: self.shed_requests.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            check_rejected: self.check_rejected.load(Ordering::Relaxed),
        }
    }
}

/// A snapshot of the session/admission gauges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionStats {
    /// Connections accepted into a session.
    pub accepted: u64,
    /// Sessions currently live.
    pub active: usize,
    /// Connections turned away at the door (`ERR busy`).
    pub rejected_sessions: u64,
    /// Requests load-shed by the admission gate (`ERR overloaded`).
    pub shed_requests: u64,
    /// Requests served (any verb).
    pub requests: u64,
    /// Read commands evaluated (displays).
    pub reads: u64,
    /// Write commands acked through the committer.
    pub writes: u64,
    /// Commands rejected by the static checker before execution.
    pub check_rejected: u64,
}

impl fmt::Display for SessionStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "sessions: {} accepted / {} active / {} rejected busy",
            self.accepted, self.active, self.rejected_sessions
        )?;
        writeln!(
            f,
            "requests: {} served ({} reads, {} writes, {} check-rejected), {} shed overloaded",
            self.requests, self.reads, self.writes, self.check_rejected, self.shed_requests
        )
    }
}

/// Live group-commit counters.
#[derive(Default)]
pub(crate) struct GroupCommitCounters {
    pub groups: AtomicU64,
    pub commits: AtomicU64,
    pub fsyncs: AtomicU64,
    pub max_group: AtomicU64,
    pub queue_peak: AtomicU64,
    pub durable_tx: AtomicU64,
}

impl GroupCommitCounters {
    pub fn record_group(&self, commits: usize) {
        self.groups.fetch_add(1, Ordering::Relaxed);
        self.commits.fetch_add(commits as u64, Ordering::Relaxed);
        self.fsyncs.fetch_add(1, Ordering::Relaxed);
        self.max_group.fetch_max(commits as u64, Ordering::Relaxed);
    }

    pub fn note_queue_depth(&self, depth: usize) {
        self.queue_peak.fetch_max(depth as u64, Ordering::Relaxed);
    }

    /// Advances the durable-clock gauge after a group's fsync returns
    /// (before its acks go out, so an acked commit is always ≤ the
    /// gauge). Acquire/Release so a reader that sees the gauge also sees
    /// the states it covers.
    pub fn note_durable(&self, tx: u64) {
        self.durable_tx.fetch_max(tx, Ordering::Release);
    }

    pub fn durable_tx(&self) -> u64 {
        self.durable_tx.load(Ordering::Acquire)
    }

    pub fn snapshot(&self) -> GroupCommitStats {
        GroupCommitStats {
            groups: self.groups.load(Ordering::Relaxed),
            commits: self.commits.load(Ordering::Relaxed),
            fsyncs: self.fsyncs.load(Ordering::Relaxed),
            max_group: self.max_group.load(Ordering::Relaxed),
            queue_peak: self.queue_peak.load(Ordering::Relaxed),
            durable_tx: self.durable_tx(),
        }
    }
}

/// A snapshot of the group-commit gauges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupCommitStats {
    /// Commit groups flushed.
    pub groups: u64,
    /// Write commands committed across all groups.
    pub commits: u64,
    /// fsyncs issued (one per group — the point of the stage).
    pub fsyncs: u64,
    /// The largest group flushed.
    pub max_group: u64,
    /// The deepest the commit queue got.
    pub queue_peak: u64,
    /// The highest transaction number whose group fsync has returned —
    /// every commit at or below it survives a crash. The engine clock
    /// may run ahead of this while a group is in flight (see DESIGN.md
    /// §14, "the durability window"); `SNAPSHOT DURABLE` pins to it.
    pub durable_tx: u64,
}

impl GroupCommitStats {
    /// Mean commits per fsync — the batching factor the bench reports.
    pub fn commits_per_fsync(&self) -> f64 {
        if self.fsyncs == 0 {
            0.0
        } else {
            self.commits as f64 / self.fsyncs as f64
        }
    }
}

impl fmt::Display for GroupCommitStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "group commit: {} commits in {} groups ({} fsyncs, {:.2} commits/fsync, max group {}, queue peak {}, durable at tx {})",
            self.commits,
            self.groups,
            self.fsyncs,
            self.commits_per_fsync(),
            self.max_group,
            self.queue_peak,
            self.durable_tx
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_counters_track_batches() {
        let c = GroupCommitCounters::default();
        c.record_group(4);
        c.record_group(2);
        c.note_queue_depth(7);
        c.note_queue_depth(3);
        c.note_durable(5);
        c.note_durable(3); // never regresses
        let s = c.snapshot();
        assert_eq!(s.groups, 2);
        assert_eq!(s.commits, 6);
        assert_eq!(s.fsyncs, 2);
        assert_eq!(s.max_group, 4);
        assert_eq!(s.queue_peak, 7);
        assert_eq!(s.durable_tx, 5);
        assert!((s.commits_per_fsync() - 3.0).abs() < 1e-9);
    }
}
