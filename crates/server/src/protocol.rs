//! The wire format: length-prefixed text frames.
//!
//! A frame is the payload's byte length in ASCII decimal, one space, the
//! payload bytes, and a terminating newline:
//!
//! ```text
//! 25 EXEC display(rho(r, inf))\n
//! ```
//!
//! The length prefix lets payloads span lines (a displayed state, a
//! batch of diagnostics) while the trailing newline keeps the stream
//! greppable and the framing self-checking: a reader that loses sync
//! fails loudly on the missing terminator instead of silently
//! misparsing. Both requests and responses use the same frame; every
//! request gets exactly one response.
//!
//! Request payloads are verb-prefixed text, deliberately shaped like the
//! language's own commands so a future surface language can ride the
//! same channel (see DESIGN.md §14 for the verb table). Response
//! payloads start with `OK`, `VAL`, or `ERR <kind>:`.

use std::io::{BufRead, Write};

/// The largest payload either side accepts: big enough for any rendered
/// state the benchmarks produce, small enough that a garbage length
/// prefix cannot balloon an allocation.
pub const MAX_FRAME: usize = 64 * 1024 * 1024;

/// Writes one frame and flushes the sink (a request or response is
/// always complete on the wire when this returns).
pub fn write_frame(out: &mut impl Write, payload: &str) -> std::io::Result<()> {
    let mut buf = Vec::with_capacity(payload.len() + 16);
    buf.extend_from_slice(payload.len().to_string().as_bytes());
    buf.push(b' ');
    buf.extend_from_slice(payload.as_bytes());
    buf.push(b'\n');
    out.write_all(&buf)?;
    out.flush()
}

fn proto_err(msg: impl Into<String>) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.into())
}

/// Reads one frame. `Ok(None)` is a clean end of stream (the peer closed
/// between frames); EOF inside a frame is an error.
pub fn read_frame(input: &mut impl BufRead) -> std::io::Result<Option<String>> {
    let mut len: usize = 0;
    let mut any_digit = false;
    loop {
        let mut byte = [0u8; 1];
        match input.read(&mut byte) {
            Ok(0) => {
                return if any_digit {
                    Err(proto_err("EOF inside frame header"))
                } else {
                    Ok(None)
                }
            }
            Ok(_) => {}
            Err(e) => return Err(e),
        }
        match byte[0] {
            b'0'..=b'9' => {
                any_digit = true;
                len = len
                    .checked_mul(10)
                    .and_then(|n| n.checked_add(usize::from(byte[0] - b'0')))
                    .filter(|&n| n <= MAX_FRAME)
                    .ok_or_else(|| proto_err("frame length exceeds MAX_FRAME"))?;
            }
            b' ' if any_digit => break,
            // Tolerate blank lines between frames (a human poking the
            // port with netcat).
            b'\n' | b'\r' if !any_digit => {}
            other => return Err(proto_err(format!("unexpected byte {other:#04x} in header"))),
        }
    }
    let mut payload = vec![0u8; len];
    input.read_exact(&mut payload)?;
    let mut terminator = [0u8; 1];
    input.read_exact(&mut terminator)?;
    if terminator[0] != b'\n' {
        return Err(proto_err("missing frame terminator"));
    }
    String::from_utf8(payload)
        .map(Some)
        .map_err(|_| proto_err("frame payload is not UTF-8"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_round_trip() {
        let payloads = ["", "PING", "VAL\nline one\nline two", "EXEC x;"];
        let mut wire = Vec::new();
        for p in payloads {
            write_frame(&mut wire, p).unwrap();
        }
        let mut cursor = Cursor::new(wire);
        for p in payloads {
            assert_eq!(read_frame(&mut cursor).unwrap().as_deref(), Some(p));
        }
        assert_eq!(read_frame(&mut cursor).unwrap(), None);
    }

    #[test]
    fn blank_lines_between_frames_are_tolerated() {
        let mut wire = Vec::new();
        wire.extend_from_slice(b"\r\n\n");
        write_frame(&mut wire, "PING").unwrap();
        let mut cursor = Cursor::new(wire);
        assert_eq!(read_frame(&mut cursor).unwrap().as_deref(), Some("PING"));
    }

    #[test]
    fn torn_and_malformed_frames_fail_loudly() {
        // EOF mid-header.
        let mut c = Cursor::new(b"12".to_vec());
        assert!(read_frame(&mut c).is_err());
        // EOF mid-payload.
        let mut c = Cursor::new(b"10 short".to_vec());
        assert!(read_frame(&mut c).is_err());
        // Missing terminator.
        let mut c = Cursor::new(b"2 abX".to_vec());
        assert!(read_frame(&mut c).is_err());
        // Garbage header byte.
        let mut c = Cursor::new(b"x PING\n".to_vec());
        assert!(read_frame(&mut c).is_err());
    }

    #[test]
    fn oversized_length_is_rejected_before_allocating() {
        let mut c = Cursor::new(b"99999999999999999999 x\n".to_vec());
        assert!(read_frame(&mut c).is_err());
    }
}
