//! A blocking client for the frame protocol — what the bench driver,
//! the test suites, and `txtime stats --addr` speak.

use std::io::BufReader;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::protocol::{read_frame, write_frame};

/// One connection = one session. Requests are synchronous: each
/// [`Client::request`] writes a frame and blocks for the response frame.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

/// A response, split on the protocol's first-line status.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// `OK <detail>`
    Ok(String),
    /// `VAL` — the rendered state follows on later lines.
    Val(String),
    /// `ERR <kind>: <message>` (kind ∈ parse, check, exec, busy,
    /// overloaded, proto, shutdown, timeout). Every kind but `timeout`
    /// is a *definite* failure; `timeout` means the outcome of a write
    /// is unknown — it may still become durable, so blindly retrying it
    /// can double-apply.
    Err {
        /// The error class.
        kind: String,
        /// Human-readable detail, possibly multi-line (diagnostics).
        message: String,
    },
}

impl Response {
    /// Splits a raw response payload on the status prefix.
    pub fn parse(raw: &str) -> Response {
        if let Some(detail) = raw.strip_prefix("OK") {
            Response::Ok(detail.trim_start().to_string())
        } else if let Some(val) = raw.strip_prefix("VAL") {
            Response::Val(val.strip_prefix('\n').unwrap_or(val).to_string())
        } else if let Some(rest) = raw.strip_prefix("ERR ") {
            let (kind, message) = rest.split_once(':').unwrap_or((rest, ""));
            Response::Err {
                kind: kind.trim().to_string(),
                message: message.trim_start().to_string(),
            }
        } else {
            Response::Err {
                kind: "proto".to_string(),
                message: format!("unrecognized response {raw:?}"),
            }
        }
    }

    /// Whether the response is any `OK`/`VAL`.
    pub fn is_ok(&self) -> bool {
        !matches!(self, Response::Err { .. })
    }
}

impl Client {
    /// Connects to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: stream,
        })
    }

    /// Connects with a timeout on the initial handshake-free connect.
    pub fn connect_timeout(
        addr: &std::net::SocketAddr,
        timeout: Duration,
    ) -> std::io::Result<Client> {
        let stream = TcpStream::connect_timeout(addr, timeout)?;
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: stream,
        })
    }

    /// Sends one raw request payload and blocks for the raw response
    /// payload. An early close by the server (e.g. after `QUIT`) is an
    /// `UnexpectedEof` error.
    pub fn request_raw(&mut self, payload: &str) -> std::io::Result<String> {
        write_frame(&mut self.writer, payload)?;
        read_frame(&mut self.reader)?.ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed before responding",
            )
        })
    }

    /// Sends one request and parses the response.
    pub fn request(&mut self, payload: &str) -> std::io::Result<Response> {
        Ok(Response::parse(&self.request_raw(payload)?))
    }

    /// Executes one command (`EXEC <text>`).
    pub fn exec(&mut self, command: &str) -> std::io::Result<Response> {
        self.request(&format!("EXEC {command}"))
    }

    /// Pins this session's reads to the engine's current clock,
    /// returning the pinned transaction number.
    pub fn snapshot(&mut self) -> std::io::Result<Response> {
        self.request("SNAPSHOT")
    }

    /// Pins this session's reads to the newest *durable* (fsynced)
    /// transaction — crash-consistent reads that can never observe
    /// state the server would lose by dying before a group commit's
    /// fsync returns.
    pub fn snapshot_durable(&mut self) -> std::io::Result<Response> {
        self.request("SNAPSHOT DURABLE")
    }

    /// Asks the server for its gauge report.
    pub fn stats(&mut self) -> std::io::Result<String> {
        self.request_raw("STATS")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn responses_split_on_status() {
        assert_eq!(
            Response::parse("OK modified tx=5"),
            Response::Ok("modified tx=5".into())
        );
        assert_eq!(
            Response::parse("VAL\n(x: int) { (1) }"),
            Response::Val("(x: int) { (1) }".into())
        );
        match Response::parse("ERR check: 1 diagnostic(s)\nerror[E001]: nope") {
            Response::Err { kind, message } => {
                assert_eq!(kind, "check");
                assert!(message.contains("E001"));
            }
            other => panic!("unexpected {other:?}"),
        }
        match Response::parse("ERR timeout: commit outcome unknown (no ack within 60s)") {
            Response::Err { kind, .. } => assert_eq!(kind, "timeout"),
            other => panic!("unexpected {other:?}"),
        }
        assert!(!Response::parse("garbage").is_ok());
    }
}
