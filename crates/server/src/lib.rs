#![warn(missing_docs)]

//! `txtime serve` — a multi-session TCP front end for the storage engine.
//!
//! The paper fixes what concurrency must *mean*, not how it is built:
//! "Implementations may also permit concurrent transactions, again as
//! long as the semantics of sequential update with a monotonically
//! increasing transaction time is preserved" (§3.2, claim 4). This crate
//! is the front door that earns that license at the wire:
//!
//! * **Sessions** — each TCP connection is a session running its own
//!   parse → static-check → plan pipeline. Commands are checked against
//!   a shared [`Linter`] catalog (kept in lock-step with the engine by
//!   committing it in commit order), so ill-formed commands are rejected
//!   with `E0xx` diagnostics carrying spans into the client's own text
//!   before any state is touched.
//! * **MVCC snapshot reads** — the rollback stores are append-only, so
//!   any past version stays materializable forever. A session that pins
//!   a snapshot (`SNAPSHOT [AT n]`) has its ρ/ρ̂-at-∞ leaves rewritten to
//!   ρ-at-`n`; its reads are then repeatable regardless of interleaved
//!   commits, and hold the engine's read lock only while one expression
//!   evaluates — never across requests, so readers never gate writers.
//!   `SNAPSHOT DURABLE` pins to the newest *fsynced* transaction instead
//!   of the applied clock, for clients that must never observe state a
//!   crash could take back (DESIGN.md §14, "the durability window").
//! * **Group commit** — all writes funnel through a single committer
//!   thread: a batch is validated and applied under the write lock,
//!   journal lines for the *successful* commands are formatted with
//!   [`wal::append_commands`], and then — outside the lock — written
//!   with one `write_all` and made durable with one fsync before any
//!   client is acked. One fsync per group instead of one per commit is
//!   the throughput lever BENCH_10 measures; acks after fsync is the
//!   durability story. A single committer makes commit order a total
//!   order, so commit clocks are monotone by construction
//!   ([`txtime_txn::is_monotone`] asserts it per batch).
//! * **Admission control** — connections beyond `max_sessions` are
//!   turned away (`ERR busy`); requests queue on a gate sized from the
//!   engine's [`ExecPool`] thread budget and are load-shed
//!   (`ERR overloaded`) rather than queued without bound. Gauges are
//!   [`SessionStats`] and [`GroupCommitStats`], surfaced by the `STATS`
//!   verb and `txtime stats --addr`.

use std::collections::VecDeque;
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, RwLock};
use std::time::{Duration, Instant};

use txtime_analyze::Linter;
use txtime_core::{Command, CommandOutcome, Expr, TransactionNumber, TxSpec};
use txtime_exec::{ExecPool, OpKind};
use txtime_parser::parse_command_spanned;
use txtime_storage::{wal, Engine};

pub mod client;
pub mod protocol;
mod stats;

pub use client::{Client, Response};
pub use stats::{GroupCommitStats, SessionStats};

use stats::{GroupCommitCounters, SessionCounters};

/// How often blocked session reads wake to poll the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(100);
/// How long a session waits for the rest of a frame once its first byte
/// has arrived.
const FRAME_TIMEOUT: Duration = Duration::from_secs(10);
/// The most commits one group flushes (bounds write-lock hold time).
const MAX_GROUP: usize = 64;
/// How long a session waits for its commit ack before giving up. Hitting
/// it does NOT mean the write failed — the commit may still be applied
/// and become durable — so the response uses the dedicated `ERR timeout`
/// kind, never `ERR exec` (which is reserved for definite failures).
const ACK_TIMEOUT: Duration = Duration::from_secs(60);

/// Crash injection points for the recovery tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Failpoint {
    /// Kill the process after a commit group's WAL append + fsync but
    /// before any client is acked — the window the crash-recovery suite
    /// pins: everything durable replays, nothing acked is lost.
    CrashBeforeGroupAck,
}

impl Failpoint {
    /// Reads `TXTIME_FAILPOINT` (value `group-commit-ack`).
    pub fn from_env() -> Option<Failpoint> {
        match std::env::var("TXTIME_FAILPOINT").ok()?.as_str() {
            "group-commit-ack" => Some(Failpoint::CrashBeforeGroupAck),
            _ => None,
        }
    }
}

/// The process exit code a tripped failpoint uses (distinguishable from
/// panics and clean exits in the crash tests).
pub const FAILPOINT_EXIT_CODE: i32 = 86;

/// Server tuning. `Default` is sized for tests and small deployments.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Journal path; `None` serves memory-only (no durability).
    pub wal_path: Option<PathBuf>,
    /// Batch write commits into one fsync (`false` = the per-commit
    /// fsync baseline BENCH_10 compares against).
    pub group_commit: bool,
    /// Connections beyond this are refused with `ERR busy`.
    pub max_sessions: usize,
    /// Concurrently *executing* requests; `0` derives `2 × pool threads`
    /// from the engine's worker pool, floored at 8 so small hosts can
    /// still overlap request pipelines with the fsync stage.
    pub max_inflight: usize,
    /// How long a request may wait for an execution permit before being
    /// load-shed with `ERR overloaded`.
    pub queue_wait: Duration,
    /// Bound on the committer's queue; pushes beyond it are load-shed.
    pub commit_queue_depth: usize,
    /// Crash injection for the recovery tests (see [`Failpoint`]).
    pub failpoint: Option<Failpoint>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            wal_path: None,
            group_commit: true,
            max_sessions: 64,
            max_inflight: 0,
            queue_wait: Duration::from_millis(500),
            commit_queue_depth: 1024,
            failpoint: None,
        }
    }
}

/// What [`ServerHandle::wait`] returns: the engine (flushed and synced)
/// plus the final gauge snapshots.
pub struct ServerReport {
    /// The engine, recovered from the server after every thread joined.
    pub engine: Engine,
    /// Final session/admission gauges.
    pub sessions: SessionStats,
    /// Final group-commit gauges.
    pub group_commit: GroupCommitStats,
}

type WriteAck = Result<(CommandOutcome, TransactionNumber, Vec<String>), String>;

struct WriteReq {
    cmd: Command,
    ack: mpsc::Sender<WriteAck>,
}

#[derive(Default)]
struct QueueInner {
    q: VecDeque<WriteReq>,
    closed: bool,
}

/// The bounded commit queue (push from sessions, drain by the committer).
struct CommitQueue {
    inner: Mutex<QueueInner>,
    nonempty: Condvar,
    depth: usize,
}

impl CommitQueue {
    fn new(depth: usize) -> CommitQueue {
        CommitQueue {
            inner: Mutex::new(QueueInner::default()),
            nonempty: Condvar::new(),
            depth: depth.max(1),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, QueueInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// `Err(true)` = queue full (shed), `Err(false)` = closed (shutdown).
    fn push(&self, req: WriteReq, gauges: &GroupCommitCounters) -> Result<(), bool> {
        let mut inner = self.lock();
        if inner.closed {
            return Err(false);
        }
        if inner.q.len() >= self.depth {
            return Err(true);
        }
        inner.q.push_back(req);
        gauges.note_queue_depth(inner.q.len());
        self.nonempty.notify_one();
        Ok(())
    }

    /// Blocks for work. `group` drains up to [`MAX_GROUP`] requests;
    /// otherwise exactly one (the per-commit-fsync baseline). `None` =
    /// closed and drained.
    fn pop_batch(&self, group: bool) -> Option<Vec<WriteReq>> {
        let mut inner = self.lock();
        loop {
            if !inner.q.is_empty() {
                let take = if group {
                    MAX_GROUP.min(inner.q.len())
                } else {
                    1
                };
                return Some(inner.q.drain(..take).collect());
            }
            if inner.closed {
                return None;
            }
            inner = self
                .nonempty
                .wait_timeout(inner, POLL_INTERVAL)
                .unwrap_or_else(|e| e.into_inner())
                .0;
        }
    }

    fn close(&self) {
        self.lock().closed = true;
        self.nonempty.notify_all();
    }
}

/// A counting gate over the worker pool: at most `permits` requests
/// execute at once; the rest wait up to `queue_wait` and are then shed.
struct Gate {
    permits: Mutex<usize>,
    freed: Condvar,
}

impl Gate {
    fn new(permits: usize) -> Gate {
        Gate {
            permits: Mutex::new(permits.max(1)),
            freed: Condvar::new(),
        }
    }

    fn acquire(&self, wait: Duration) -> bool {
        let deadline = Instant::now() + wait;
        let mut permits = self.permits.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if *permits > 0 {
                *permits -= 1;
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            permits = self
                .freed
                .wait_timeout(permits, deadline - now)
                .unwrap_or_else(|e| e.into_inner())
                .0;
        }
    }

    fn release(&self) {
        let mut permits = self.permits.lock().unwrap_or_else(|e| e.into_inner());
        *permits += 1;
        self.freed.notify_one();
    }
}

struct Shared {
    engine: RwLock<Engine>,
    linter: Mutex<Linter>,
    pool: Arc<ExecPool>,
    cfg: ServerConfig,
    queue: CommitQueue,
    gate: Gate,
    sessions: SessionCounters,
    commits: GroupCommitCounters,
    shutdown: AtomicBool,
}

impl Shared {
    fn read_engine(&self) -> std::sync::RwLockReadGuard<'_, Engine> {
        self.engine.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write_engine(&self) -> std::sync::RwLockWriteGuard<'_, Engine> {
        self.engine.write().unwrap_or_else(|e| e.into_inner())
    }

    fn stats_text(&self) -> String {
        let (tx, relations, pending) = {
            let eng = self.read_engine();
            (eng.tx(), eng.relations().len(), eng.memo_pending_spans())
        };
        format!(
            "{}{}engine: clock at tx {tx} (durable at tx {}), {relations} relation(s), {pending} memo span(s) queued\nwal: {}\n",
            self.sessions.snapshot(),
            self.commits.snapshot(),
            self.commits.durable_tx(),
            self.cfg
                .wal_path
                .as_ref()
                .map_or("none".to_string(), |p| p.display().to_string()),
        )
    }
}

/// A running server: the listener, committer, and session threads.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    listener: Option<std::thread::JoinHandle<()>>,
    committer: Option<std::thread::JoinHandle<()>>,
}

/// Starts a server on `listener`, taking ownership of `engine`.
///
/// The engine should *not* have a WAL attached ([`Engine::with_wal`]);
/// the server journals through `cfg.wal_path` itself so the group fsync
/// happens outside the engine's write lock — readers are never stalled
/// behind a disk flush. Use [`txtime_storage::recovery::recover`] first
/// to continue an existing journal; before attaching it for append, the
/// server truncates any corrupt tail ([`wal::truncate_to_verified_prefix`])
/// so new commits extend exactly the prefix recovery replayed — appending
/// after dead bytes would let the *next* recovery discard acked writes.
pub fn serve(
    engine: Engine,
    listener: TcpListener,
    cfg: ServerConfig,
) -> std::io::Result<ServerHandle> {
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let pool = engine.pool();
    let inflight = if cfg.max_inflight == 0 {
        (pool.threads() * 2).max(8)
    } else {
        cfg.max_inflight
    };
    let wal_file = match &cfg.wal_path {
        Some(path) => {
            // Recovery replays only the verified prefix of the journal;
            // anything after the first corrupt line is dead bytes. They
            // must be truncated *before* we attach in append mode —
            // otherwise new (acked, fsynced) commits would land after
            // the corruption and the next recovery would silently
            // discard them.
            if std::fs::metadata(path)
                .map(|m| m.len() > 0)
                .unwrap_or(false)
            {
                let dropped = wal::truncate_to_verified_prefix(path)?;
                if dropped > 0 {
                    eprintln!(
                        "wal: truncated {dropped} corrupt trailing byte(s) from {} before appending",
                        path.display()
                    );
                }
            }
            Some(
                std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)?,
            )
        }
        None => None,
    };
    // Seed the checker's catalog from an engine that already has state
    // (the recovery path): replaying relation definitions would need the
    // original commands, so instead start the linter from the live
    // catalog the engine exposes.
    let linter = seed_linter(&engine);
    let commits = GroupCommitCounters::default();
    // Everything the engine holds at startup came from the recovered
    // journal (or is a fresh empty database): the durable clock starts
    // at the engine clock, not 0.
    commits.note_durable(engine.tx().0);
    let shared = Arc::new(Shared {
        engine: RwLock::new(engine),
        linter: Mutex::new(linter),
        pool,
        queue: CommitQueue::new(cfg.commit_queue_depth),
        gate: Gate::new(inflight),
        sessions: SessionCounters::default(),
        commits,
        shutdown: AtomicBool::new(false),
        cfg,
    });

    let committer = {
        let shared = shared.clone();
        std::thread::Builder::new()
            .name("txtime-commit".into())
            .spawn(move || committer_loop(&shared, wal_file))?
    };
    let listener_thread = {
        let shared = shared.clone();
        std::thread::Builder::new()
            .name("txtime-accept".into())
            .spawn(move || accept_loop(&shared, listener))?
    };
    Ok(ServerHandle {
        addr,
        shared,
        listener: Some(listener_thread),
        committer: Some(committer),
    })
}

impl ServerHandle {
    /// The bound address (resolves `:0` listeners).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current session/admission gauges.
    pub fn session_stats(&self) -> SessionStats {
        self.shared.sessions.snapshot()
    }

    /// Current group-commit gauges.
    pub fn group_commit_stats(&self) -> GroupCommitStats {
        self.shared.commits.snapshot()
    }

    /// Asks the server to stop: no new sessions, live sessions finish
    /// their in-flight request. Equivalent to a client `SHUTDOWN`.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// Blocks until the server has shut down (via [`ServerHandle::shutdown`]
    /// or a client `SHUTDOWN`), joins every thread, drains the commit
    /// queue, flushes the engine, and returns the final report.
    pub fn wait(mut self) -> ServerReport {
        while !self.shared.shutdown.load(Ordering::SeqCst) {
            std::thread::sleep(POLL_INTERVAL);
        }
        if let Some(t) = self.listener.take() {
            let _ = t.join();
        }
        // Sessions poll the flag at POLL_INTERVAL; wait for them to
        // drain before closing the commit queue so no enqueue races the
        // close. A stuck session (peer holding a half-frame) is bounded
        // by FRAME_TIMEOUT.
        let deadline = Instant::now() + FRAME_TIMEOUT + Duration::from_secs(5);
        while self.shared.sessions.snapshot().active > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        self.shared.queue.close();
        if let Some(t) = self.committer.take() {
            let _ = t.join();
        }
        let sessions = self.shared.sessions.snapshot();
        let group_commit = self.shared.commits.snapshot();
        let shared = self.shared;
        // Every thread has joined; the Arc is now unique.
        let shared = Arc::try_unwrap(shared)
            .unwrap_or_else(|_| panic!("server threads joined but Shared still aliased"));
        let mut engine = shared
            .engine
            .into_inner()
            .unwrap_or_else(|e| e.into_inner());
        engine.shutdown();
        ServerReport {
            engine,
            sessions,
            group_commit,
        }
    }
}

/// Builds a [`Linter`] whose catalog matches a live engine's by replaying
/// synthetic commands (recovery path: the journal's commands are not
/// retained, but the catalog is fully described by the engine): a
/// `define_relation` per relation, plus — when the relation has states —
/// a `modify_state` of its current state as a constant, so the checker
/// knows the scheme and does not reject ρ of a recovered relation as
/// stateless (E010).
fn seed_linter(engine: &Engine) -> Linter {
    // A synthetic seeding command that fails its own check means the
    // rebuilt catalog is missing an entry the engine has — a restarted
    // server would then `ERR check` commands a fresh one accepts. That
    // must never be silent: loud in tests, logged in production.
    fn seed(linter: &mut Linter, cmd: &Command, what: &str, name: &str) {
        let diags = linter.check(cmd, None);
        if diags.is_empty() {
            let _ = linter.commit(cmd, None);
        } else {
            let rendered: Vec<String> = diags.iter().map(|d| d.to_string()).collect();
            debug_assert!(
                false,
                "seed_linter: synthetic {what} for {name:?} rejected, catalog drifts from engine: {rendered:?}"
            );
            eprintln!(
                "warning: linter catalog drift: synthetic {what} for {name:?} rejected ({}); \
                 post-recovery checks of {name:?} may diverge from a fresh server",
                rendered.join("; ")
            );
        }
    }
    let mut linter = Linter::new();
    for name in engine.relations() {
        let Some(rtype) = engine.relation_type(name) else {
            continue;
        };
        seed(
            &mut linter,
            &Command::define_relation(name, rtype),
            "define_relation",
            name,
        );
        let current = engine
            .eval(&Expr::current(name))
            .or_else(|_| engine.eval(&Expr::HRollback(name.to_string(), TxSpec::Current)));
        if let Ok(state) = current {
            let constant = match state {
                txtime_core::StateValue::Snapshot(s) => Expr::SnapshotConst(s),
                txtime_core::StateValue::Historical(h) => Expr::HistoricalConst(h),
            };
            seed(
                &mut linter,
                &Command::modify_state(name, constant),
                "modify_state",
                name,
            );
        }
    }
    linter
}

fn accept_loop(shared: &Arc<Shared>, listener: TcpListener) {
    let mut session_threads: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                session_threads.retain(|t| !t.is_finished());
                let active = shared.sessions.active.load(Ordering::Relaxed);
                if active >= shared.cfg.max_sessions {
                    shared
                        .sessions
                        .rejected_sessions
                        .fetch_add(1, Ordering::Relaxed);
                    let mut stream = stream;
                    let _ = protocol::write_frame(
                        &mut stream,
                        &format!(
                            "ERR busy: {active} session(s) active (max {}), retry later",
                            shared.cfg.max_sessions
                        ),
                    );
                    continue;
                }
                shared.sessions.accepted.fetch_add(1, Ordering::Relaxed);
                shared.sessions.active.fetch_add(1, Ordering::Relaxed);
                let session_shared = shared.clone();
                let spawned = std::thread::Builder::new()
                    .name("txtime-session".into())
                    .spawn(move || {
                        session_loop(&session_shared, stream);
                        session_shared
                            .sessions
                            .active
                            .fetch_sub(1, Ordering::Relaxed);
                    });
                match spawned {
                    Ok(t) => session_threads.push(t),
                    Err(_) => {
                        // Spawn failure: undo the active count; the
                        // stream drops and the client sees a close.
                        shared.sessions.active.fetch_sub(1, Ordering::Relaxed);
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => break,
        }
    }
    for t in session_threads {
        let _ = t.join();
    }
}

/// One session: frames in, frames out, until QUIT/EOF/shutdown.
fn session_loop(shared: &Arc<Shared>, stream: TcpStream) {
    stream.set_nodelay(true).ok();
    let Ok(reader_stream) = stream.try_clone() else {
        return;
    };
    let mut writer = stream;
    let mut reader = BufReader::new(reader_stream);
    // A session's pinned snapshot: reads rewrite ρ(·, ∞) to ρ(·, At(n)).
    let mut snapshot: Option<TransactionNumber> = None;
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            let _ = protocol::write_frame(&mut writer, "ERR shutdown: server stopping");
            return;
        }
        // Poll for the first byte so shutdown is honored promptly, then
        // allow FRAME_TIMEOUT for the rest of the frame.
        reader.get_ref().set_read_timeout(Some(POLL_INTERVAL)).ok();
        match std::io::BufRead::fill_buf(&mut reader) {
            Ok([]) => return, // clean EOF between frames
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => return,
        }
        reader.get_ref().set_read_timeout(Some(FRAME_TIMEOUT)).ok();
        let request = match protocol::read_frame(&mut reader) {
            Ok(Some(payload)) => payload,
            Ok(None) => return,
            Err(e) => {
                let _ = protocol::write_frame(&mut writer, &format!("ERR proto: {e}"));
                return;
            }
        };
        shared.sessions.requests.fetch_add(1, Ordering::Relaxed);
        let started = Instant::now();
        let (response, quit) = handle_request(shared, &request, &mut snapshot);
        shared
            .pool
            .record_external(OpKind::Serve, 1, started.elapsed());
        if protocol::write_frame(&mut writer, &response).is_err() || quit {
            return;
        }
    }
}

/// Dispatches one request payload; returns (response, close-session).
fn handle_request(
    shared: &Arc<Shared>,
    request: &str,
    snapshot: &mut Option<TransactionNumber>,
) -> (String, bool) {
    let request = request.trim();
    if let Some(text) = request.strip_prefix("EXEC ") {
        // Admission: a permit to execute, or shed under saturation. The
        // permit covers the CPU-bound pipeline (parse, check, evaluate,
        // enqueue) — NOT the wait for a commit ack, which burns no CPU
        // and is bounded separately by the commit queue's depth. Holding
        // the permit across the fsync wait would cap concurrent commits
        // at the gate width and starve the group-commit batcher.
        if !shared.gate.acquire(shared.cfg.queue_wait) {
            shared
                .sessions
                .shed_requests
                .fetch_add(1, Ordering::Relaxed);
            return (
                "ERR overloaded: execution queue saturated, retry".to_string(),
                false,
            );
        }
        let outcome = exec_command(shared, text, *snapshot);
        shared.gate.release();
        let response = match outcome {
            ExecOutcome::Ready(r) => r,
            ExecOutcome::Pending(rx) => match rx.recv_timeout(ACK_TIMEOUT) {
                Ok(Ok((outcome, tx, warnings))) => {
                    shared.sessions.writes.fetch_add(1, Ordering::Relaxed);
                    let mut out = format!("OK {} tx={}", outcome_name(&outcome), tx.0);
                    for w in warnings {
                        out.push('\n');
                        out.push_str(&w);
                    }
                    out
                }
                Ok(Err(e)) => format!("ERR exec: {e}"),
                // No ack in time: the commit's outcome is UNKNOWN (it may
                // yet be applied and fsynced), which is not the same
                // thing as a definite `exec` failure — a client that
                // retried on `exec` here could double-apply a write.
                Err(_) => "ERR timeout: commit outcome unknown (no ack within 60s) — \
                     the write may still become durable; consult the journal"
                    .to_string(),
            },
        };
        return (response, false);
    }
    match request {
        "PING" => ("OK pong".to_string(), false),
        "STATS" => (format!("OK stats\n{}", shared.stats_text()), false),
        "QUIT" => ("OK bye".to_string(), true),
        "SHUTDOWN" => {
            shared.shutdown.store(true, Ordering::SeqCst);
            ("OK stopping".to_string(), true)
        }
        "SNAPSHOT" => {
            let tx = shared.read_engine().tx();
            *snapshot = Some(tx);
            (format!("OK snapshot tx={}", tx.0), false)
        }
        "SNAPSHOT DURABLE" => {
            // Crash-consistent reads: pin to the newest transaction whose
            // group fsync has returned, never to applied-but-unsynced
            // state (the durability window DESIGN.md §14 documents).
            let tx = TransactionNumber(shared.commits.durable_tx());
            *snapshot = Some(tx);
            (format!("OK snapshot tx={}", tx.0), false)
        }
        "SNAPSHOT OFF" => {
            *snapshot = None;
            ("OK snapshot off".to_string(), false)
        }
        other if other.starts_with("SNAPSHOT AT ") => {
            match other["SNAPSHOT AT ".len()..].trim().parse::<u64>() {
                Ok(n) => {
                    *snapshot = Some(TransactionNumber(n));
                    (format!("OK snapshot tx={n}"), false)
                }
                Err(_) => (
                    "ERR proto: SNAPSHOT AT takes a transaction number".to_string(),
                    false,
                ),
            }
        }
        other => (
            format!(
                "ERR proto: unknown verb {:?} (EXEC, SNAPSHOT [AT n|DURABLE|OFF], PING, STATS, QUIT, SHUTDOWN)",
                other.split_whitespace().next().unwrap_or("")
            ),
            false,
        ),
    }
}

/// The per-session pipeline for one command: parse → check → execute,
/// with reads evaluated under the shared read lock and writes funneled
/// through the group committer.
/// What the gated stage of `exec_command` produced: a finished response,
/// or a pending commit ack to be awaited *after* the admission permit is
/// released.
enum ExecOutcome {
    Ready(String),
    Pending(mpsc::Receiver<WriteAck>),
}

fn exec_command(
    shared: &Arc<Shared>,
    text: &str,
    snapshot: Option<TransactionNumber>,
) -> ExecOutcome {
    use ExecOutcome::Ready;
    let (cmd, spans) = match parse_command_spanned(text.trim().trim_end_matches(';')) {
        Ok(pair) => pair,
        Err(e) => return Ready(format!("ERR parse: {e}")),
    };
    // Static check against the shared catalog — diagnostics carry spans
    // into the text the client sent.
    let diags = {
        let linter = shared.linter.lock().unwrap_or_else(|e| e.into_inner());
        linter.check(&cmd, Some(&spans))
    };
    if !diags.is_empty() {
        shared
            .sessions
            .check_rejected
            .fetch_add(1, Ordering::Relaxed);
        let mut out = format!("ERR check: {} diagnostic(s)", diags.len());
        for d in &diags {
            out.push('\n');
            out.push_str(&d.to_string());
        }
        return Ready(out);
    }
    if cmd.is_mutation() {
        let (ack_tx, ack_rx) = mpsc::channel();
        let req = WriteReq { cmd, ack: ack_tx };
        match shared.queue.push(req, &shared.commits) {
            Ok(()) => ExecOutcome::Pending(ack_rx),
            Err(true) => {
                shared
                    .sessions
                    .shed_requests
                    .fetch_add(1, Ordering::Relaxed);
                Ready("ERR overloaded: commit queue full, retry".to_string())
            }
            Err(false) => Ready("ERR shutdown: server stopping".to_string()),
        }
    } else {
        // Reads: evaluate under the read lock, pinned if the session
        // holds a snapshot. The lock spans one evaluation only.
        shared.sessions.reads.fetch_add(1, Ordering::Relaxed);
        let Command::Display(expr) = &cmd else {
            return Ready("ERR exec: unsupported non-mutating command".to_string());
        };
        let expr = match snapshot {
            Some(tx) => pin_expr(expr, tx),
            None => expr.clone(),
        };
        let eng = shared.read_engine();
        Ready(match eng.eval(&expr) {
            Ok(state) => format!("VAL\n{state}"),
            Err(e) => format!("ERR exec: {e}"),
        })
    }
}

fn outcome_name(outcome: &CommandOutcome) -> &'static str {
    match outcome {
        CommandOutcome::Defined => "defined",
        CommandOutcome::Modified => "modified",
        CommandOutcome::Deleted => "deleted",
        CommandOutcome::Evolved => "evolved",
        CommandOutcome::Displayed(_) => "displayed",
    }
}

/// Rewrites every ρ(·, ∞)/ρ̂(·, ∞) leaf to the pinned transaction number
/// — the MVCC read: append-only stores answer any past version, so the
/// pinned expression is repeatable under concurrent commits.
pub fn pin_expr(expr: &Expr, tx: TransactionNumber) -> Expr {
    let pin = |spec: &TxSpec| match spec {
        TxSpec::Current => TxSpec::At(tx),
        at => *at,
    };
    let rec = |e: &Expr| Box::new(pin_expr(e, tx));
    match expr {
        Expr::SnapshotConst(_) | Expr::HistoricalConst(_) => expr.clone(),
        Expr::Rollback(ident, spec) => Expr::Rollback(ident.clone(), pin(spec)),
        Expr::HRollback(ident, spec) => Expr::HRollback(ident.clone(), pin(spec)),
        Expr::Union(a, b) => Expr::Union(rec(a), rec(b)),
        Expr::Difference(a, b) => Expr::Difference(rec(a), rec(b)),
        Expr::Product(a, b) => Expr::Product(rec(a), rec(b)),
        Expr::Project(attrs, e) => Expr::Project(attrs.clone(), rec(e)),
        Expr::Select(pred, e) => Expr::Select(pred.clone(), rec(e)),
        Expr::HUnion(a, b) => Expr::HUnion(rec(a), rec(b)),
        Expr::HDifference(a, b) => Expr::HDifference(rec(a), rec(b)),
        Expr::HProduct(a, b) => Expr::HProduct(rec(a), rec(b)),
        Expr::HProject(attrs, e) => Expr::HProject(attrs.clone(), rec(e)),
        Expr::HSelect(pred, e) => Expr::HSelect(pred.clone(), rec(e)),
        Expr::Delta(pred, texpr, e) => Expr::Delta(pred.clone(), texpr.clone(), rec(e)),
        Expr::Join(spec, a, b) => Expr::Join(spec.clone(), rec(a), rec(b)),
        Expr::HJoin(spec, a, b) => Expr::HJoin(spec.clone(), rec(a), rec(b)),
    }
}

/// One applied-but-not-yet-durable commit, in flight between the apply
/// stage and the sync stage.
struct SyncItem {
    journal: Vec<u8>,
    ack_to: mpsc::Sender<WriteAck>,
    ack: WriteAck,
}

/// The hand-off queue between the apply stage and the sync stage.
#[derive(Default)]
struct SyncQueue {
    inner: Mutex<(VecDeque<SyncItem>, bool)>,
    nonempty: Condvar,
}

impl SyncQueue {
    fn push(&self, item: SyncItem) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.0.push_back(item);
        self.nonempty.notify_one();
    }

    /// Everything applied since the last fsync, up to [`MAX_GROUP`];
    /// `None` once closed and drained.
    fn drain_group(&self) -> Option<Vec<SyncItem>> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if !inner.0.is_empty() {
                let take = MAX_GROUP.min(inner.0.len());
                return Some(inner.0.drain(..take).collect());
            }
            if inner.1 {
                return None;
            }
            inner = self
                .nonempty
                .wait_timeout(inner, POLL_INTERVAL)
                .unwrap_or_else(|e| e.into_inner())
                .0;
        }
    }

    fn close(&self) {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).1 = true;
        self.nonempty.notify_all();
    }
}

/// Makes one group durable (single write + fsync) and acks it. The
/// group-commit core: every item in `group` shares the one fsync.
fn sync_group(shared: &Arc<Shared>, wal_file: &mut Option<std::fs::File>, group: Vec<SyncItem>) {
    let mut journal: Vec<u8> = Vec::new();
    for item in &group {
        journal.extend_from_slice(&item.journal);
    }
    let mut sync_err: Option<String> = None;
    if let (Some(file), false) = (wal_file.as_mut(), journal.is_empty()) {
        let sync = file
            .write_all(&journal)
            .and_then(|()| file.flush())
            .and_then(|()| file.sync_all());
        if let Err(e) = sync {
            sync_err = Some(format!("WAL sync failed: {e}"));
        }
    }
    let committed = group.iter().filter(|i| i.ack.is_ok()).count();
    if committed > 0 && sync_err.is_none() {
        if let Some(Failpoint::CrashBeforeGroupAck) = shared.cfg.failpoint {
            // The crash-recovery window: the group is durable, the acks
            // are not sent. Recovery must replay it; clients must treat
            // the silence as "unknown, consult the log".
            eprintln!("failpoint group-commit-ack: crashing before ack");
            std::process::exit(FAILPOINT_EXIT_CODE);
        }
        // The group's fsync has returned: advance the durable clock to
        // the newest commit it covered, *before* any ack goes out — an
        // acked commit is therefore always ≤ the durable gauge. (With no
        // journal attached there is nothing more durable to wait for;
        // the gauge then tracks the applied clock.)
        if let Some(tx) = group
            .iter()
            .filter_map(|i| i.ack.as_ref().ok().map(|(_, tx, _)| tx.0))
            .max()
        {
            shared.commits.note_durable(tx);
        }
    }
    shared.commits.record_group(committed);
    for item in group {
        let ack = match (&sync_err, item.ack) {
            // The state applied but is not durable: report the failure
            // instead of acking a commit that may not survive a crash.
            (Some(e), Ok(_)) => Err(e.clone()),
            (_, ack) => ack,
        };
        let _ = item.ack_to.send(ack);
    }
}

/// The apply stage of the committer: drains the session queue, applies
/// each command under a briefly-held write lock (readers interleave
/// between commands, never wait out a whole group), formats its journal
/// line, and hands it to the sync stage.
///
/// With group commit on, the sync stage runs in its own thread: while it
/// fsyncs group K, this stage keeps applying group K+1, so batches form
/// from genuine concurrency — no artificial batching window. With group
/// commit off, apply and fsync run in lockstep here, one fsync per
/// commit: the baseline BENCH_10 compares against.
fn committer_loop(shared: &Arc<Shared>, mut wal_file: Option<std::fs::File>) {
    let group_commit = shared.cfg.group_commit;
    let sync_queue = Arc::new(SyncQueue::default());
    let syncer = if group_commit {
        let shared = shared.clone();
        let sync_queue = sync_queue.clone();
        let mut wal_file = wal_file.take();
        Some(
            std::thread::Builder::new()
                .name("txtime-sync".into())
                .spawn(move || {
                    while let Some(group) = sync_queue.drain_group() {
                        sync_group(&shared, &mut wal_file, group);
                    }
                    // Closed and drained: one final sync so an empty
                    // tail can never leave buffered bytes behind.
                    if let Some(file) = &mut wal_file {
                        let _ = file.flush();
                        let _ = file.sync_all();
                    }
                })
                .expect("spawn sync stage"),
        )
    } else {
        None
    };

    let mut last_tx = TransactionNumber(0);
    while let Some(batch) = shared.queue.pop_batch(group_commit) {
        for req in batch {
            // The write lock is held for one engine apply at a time.
            // Commit order is still total — this thread is the only
            // writer — which is what keeps the clocks monotone.
            let mut eng = shared.write_engine();
            let (ack, journal) = match eng.execute(&req.cmd) {
                Ok(outcome) => {
                    let tx = eng.tx();
                    // Claim 4's invariant, checked at every commit: one
                    // committer, one total order, strictly increasing
                    // transaction numbers.
                    assert!(
                        txtime_txn::is_monotone(&[last_tx, tx]),
                        "commit clock regressed: {last_tx:?} then {tx:?}"
                    );
                    last_tx = tx;
                    // The engine has no WAL attached in serve mode; the
                    // journal line is formatted here and made durable by
                    // the sync stage, outside the lock.
                    let mut line = Vec::new();
                    let _ = wal::append_command(&mut line, &req.cmd);
                    // Keep the static catalog in lock-step with the
                    // engine, in commit order.
                    let warnings = shared
                        .linter
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .commit(&req.cmd, None)
                        .iter()
                        .map(|w| w.to_string())
                        .collect();
                    (Ok((outcome, tx, warnings)), line)
                }
                Err(e) => (Err(e.to_string()), Vec::new()),
            };
            drop(eng);
            let item = SyncItem {
                journal,
                ack_to: req.ack,
                ack,
            };
            if group_commit {
                sync_queue.push(item);
            } else {
                sync_group(shared, &mut wal_file, vec![item]);
            }
        }
    }
    sync_queue.close();
    if let Some(t) = syncer {
        let _ = t.join();
    }
    if let Some(file) = &mut wal_file {
        let _ = file.flush();
        let _ = file.sync_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pin_rewrites_current_leaves_only() {
        let e = Expr::current("r")
            .union(Expr::rollback("s", TxSpec::At(TransactionNumber(3))))
            .select(txtime_snapshot::Predicate::True);
        let pinned = pin_expr(&e, TransactionNumber(9));
        match pinned {
            Expr::Select(_, inner) => match *inner {
                Expr::Union(a, b) => {
                    assert_eq!(*a, Expr::rollback("r", TxSpec::At(TransactionNumber(9))));
                    assert_eq!(*b, Expr::rollback("s", TxSpec::At(TransactionNumber(3))));
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn gate_sheds_when_saturated() {
        let gate = Gate::new(1);
        assert!(gate.acquire(Duration::from_millis(1)));
        assert!(!gate.acquire(Duration::from_millis(10)));
        gate.release();
        assert!(gate.acquire(Duration::from_millis(1)));
    }

    #[test]
    fn queue_bounds_and_closes() {
        let gauges = GroupCommitCounters::default();
        let q = CommitQueue::new(1);
        let (tx, _rx) = mpsc::channel();
        let req = |t: &mpsc::Sender<WriteAck>| WriteReq {
            cmd: Command::delete_relation("r"),
            ack: t.clone(),
        };
        assert!(q.push(req(&tx), &gauges).is_ok());
        assert_eq!(q.push(req(&tx), &gauges), Err(true));
        q.close();
        assert_eq!(q.push(req(&tx), &gauges), Err(false));
        // Drain the queued request, then the closed queue reports done.
        assert_eq!(q.pop_batch(true).map(|b| b.len()), Some(1));
        assert!(q.pop_batch(true).is_none());
    }
}
