//! Crash-recovery test for the group-commit stage: kill the server at
//! the failpoint between the group's WAL fsync and the client acks, then
//! assert recovery replays a prefix of the journal consistent with
//! monotonically increasing transaction numbers (the paper's §3.2
//! commit-clock discipline) — nothing durable is lost, nothing torn is
//! replayed.

use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};

use txtime::core::TransactionNumber;
use txtime::server::{Client, FAILPOINT_EXIT_CODE};
use txtime::storage::{recovery::recover, BackendKind, CheckpointPolicy};
use txtime::txn::is_monotone;

fn tmp_wal(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("txtime-server-crash");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join(format!("{}-{name}.wal", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

/// Spawns `txtime serve --listen 127.0.0.1:0 --wal <wal>` (plus `env`)
/// and parses the bound address from its stderr banner.
fn spawn_server(wal: &PathBuf, env: &[(&str, &str)]) -> (Child, std::net::SocketAddr) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_txtime"));
    cmd.args(["serve", "--listen", "127.0.0.1:0", "--wal"])
        .arg(wal)
        .stderr(Stdio::piped())
        .stdout(Stdio::null());
    for (k, v) in env {
        cmd.env(k, v);
    }
    let mut child = cmd.spawn().expect("server spawns");
    let stderr = child.stderr.take().expect("stderr piped");
    let mut lines = BufReader::new(stderr).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("server banner before EOF")
            .expect("stderr readable");
        if let Some(rest) = line.strip_prefix("listening on ") {
            let addr = rest.split_whitespace().next().expect("addr in banner");
            break addr.parse().expect("addr parses");
        }
    };
    // Keep draining stderr so the child never blocks on a full pipe.
    std::thread::spawn(move || for _ in lines {});
    (child, addr)
}

#[test]
fn crash_between_group_fsync_and_ack_recovers_the_durable_prefix() {
    let wal = tmp_wal("group-ack");

    // Phase 1: a healthy server commits a base history and shuts down.
    let (mut child, addr) = spawn_server(&wal, &[]);
    let mut c = Client::connect_timeout(&addr, std::time::Duration::from_secs(5)).expect("connect");
    assert!(c.exec("define_relation(led, rollback);").unwrap().is_ok());
    assert!(c
        .exec("modify_state(led, {(x: int): (1)});")
        .unwrap()
        .is_ok());
    assert!(c
        .exec("modify_state(led, rho(led, inf) union {(x: int): (2)});")
        .unwrap()
        .is_ok());
    assert!(c.request("SHUTDOWN").unwrap().is_ok());
    let status = child.wait().expect("server exits");
    assert!(status.success(), "clean shutdown failed: {status:?}");

    // Phase 2: restart with the failpoint armed. The write is made
    // durable (journal append + fsync), then the process dies before the
    // ack — the client sees silence, not an OK.
    let (mut child, addr) = spawn_server(&wal, &[("TXTIME_FAILPOINT", "group-commit-ack")]);
    let mut c = Client::connect_timeout(&addr, std::time::Duration::from_secs(5)).expect("connect");
    let unacked = c.exec("modify_state(led, rho(led, inf) union {(x: int): (3)});");
    assert!(
        unacked.is_err(),
        "failpoint should kill the server before the ack, got {unacked:?}"
    );
    let status = child.wait().expect("server exits");
    assert_eq!(
        status.code(),
        Some(FAILPOINT_EXIT_CODE),
        "expected the failpoint exit code, got {status:?}"
    );

    // Phase 3: recovery replays the durable prefix — the 3 acked commands
    // AND the durable-but-unacked one — with monotone commit clocks.
    let rec = recover(
        wal.to_str().unwrap(),
        BackendKind::ForwardDelta,
        CheckpointPolicy::every_k(8).unwrap(),
    )
    .expect("recovery succeeds");
    assert_eq!(
        rec.skipped.len(),
        0,
        "torn lines in the journal: {:?}",
        rec.skipped
    );
    assert_eq!(
        rec.replayed, 4,
        "acked prefix plus the durable unacked commit"
    );
    assert_eq!(rec.engine.tx(), TransactionNumber(4));
    let clocks: Vec<TransactionNumber> = (1..=rec.replayed as u64).map(TransactionNumber).collect();
    assert!(is_monotone(&clocks));
    let state = rec
        .engine
        .eval(&txtime::core::Expr::current("led"))
        .expect("recovered state evaluates");
    let rendered = state.to_string();
    for v in 1..=3 {
        assert!(
            rendered.contains(&format!("({v})")),
            "lost tuple {v}: {rendered}"
        );
    }

    // Phase 4: a restarted server continues the same clock — the next
    // commit is tx 5, exactly as if the crash had never happened (the
    // sequential-semantics guarantee the whole design defends).
    let (mut child, addr) = spawn_server(&wal, &[]);
    let mut c = Client::connect_timeout(&addr, std::time::Duration::from_secs(5)).expect("connect");
    match c
        .exec("modify_state(led, rho(led, inf) union {(x: int): (4)});")
        .expect("post-recovery write")
    {
        txtime::server::Response::Ok(detail) => {
            assert!(detail.contains("tx=5"), "clock did not continue: {detail}")
        }
        other => panic!("post-recovery write failed: {other:?}"),
    }
    assert!(c.request("SHUTDOWN").unwrap().is_ok());
    assert!(child.wait().expect("server exits").success());

    let _ = std::fs::remove_file(&wal);
}

/// A server restarted over a journal with a torn tail must not append
/// new commits after the dead bytes: recovery's prefix discipline would
/// discard everything after the corruption on the *next* restart, losing
/// acked-and-fsynced writes. The server truncates the tail before
/// attaching the journal, so post-restart commits survive re-recovery.
#[test]
fn acked_commits_after_a_torn_tail_survive_the_next_recovery() {
    let wal = tmp_wal("torn-tail");

    // Phase 1: a healthy server commits a base history and shuts down.
    let (mut child, addr) = spawn_server(&wal, &[]);
    let mut c = Client::connect_timeout(&addr, std::time::Duration::from_secs(5)).expect("connect");
    assert!(c.exec("define_relation(led, rollback);").unwrap().is_ok());
    assert!(c
        .exec("modify_state(led, {(x: int): (1)});")
        .unwrap()
        .is_ok());
    assert!(c.request("SHUTDOWN").unwrap().is_ok());
    assert!(child.wait().expect("server exits").success());

    // Tear the journal's tail: a partial line with no terminator, the
    // classic artifact of a crash mid-append.
    let clean_len = std::fs::metadata(&wal).expect("wal exists").len();
    let mut data = std::fs::read(&wal).unwrap();
    data.extend_from_slice(b"deadbeef torn partial li");
    std::fs::write(&wal, data).unwrap();

    // Phase 2: restart over the torn journal and commit a new write. The
    // server must truncate the dead bytes before appending — the new
    // journal line may not merge into (or follow) the torn one.
    let (mut child, addr) = spawn_server(&wal, &[]);
    let mut c = Client::connect_timeout(&addr, std::time::Duration::from_secs(5)).expect("connect");
    match c
        .exec("modify_state(led, rho(led, inf) union {(x: int): (2)});")
        .expect("post-restart write")
    {
        txtime::server::Response::Ok(detail) => {
            assert!(detail.contains("tx=3"), "clock did not continue: {detail}")
        }
        other => panic!("post-restart write failed: {other:?}"),
    }
    assert!(c.request("SHUTDOWN").unwrap().is_ok());
    assert!(child.wait().expect("server exits").success());
    assert!(
        std::fs::metadata(&wal).unwrap().len() > clean_len,
        "the new commit was not journaled"
    );

    // Phase 3: recovery replays the base history AND the post-restart
    // commit — nothing torn, nothing lost.
    let rec = recover(
        wal.to_str().unwrap(),
        BackendKind::ForwardDelta,
        CheckpointPolicy::every_k(8).unwrap(),
    )
    .expect("recovery succeeds");
    assert_eq!(
        rec.skipped.len(),
        0,
        "torn bytes still in the journal: {:?}",
        rec.skipped
    );
    assert_eq!(rec.replayed, 3, "acked post-restart commit was discarded");
    assert_eq!(rec.engine.tx(), TransactionNumber(3));
    let state = rec
        .engine
        .eval(&txtime::core::Expr::current("led"))
        .expect("recovered state evaluates");
    let rendered = state.to_string();
    for v in 1..=2 {
        assert!(
            rendered.contains(&format!("({v})")),
            "lost tuple {v}: {rendered}"
        );
    }

    let _ = std::fs::remove_file(&wal);
}
