//! Lint-soundness differential tests: every fact `txtime-lint` states
//! must hold in the actual execution, on every storage backend, with the
//! view memo on and off.
//!
//! Three properties, each over random spiced command sequences:
//!
//! 1. **Claims hold.** A provably-∅ claim means the claimed
//!    subexpression evaluates to ∅; an equals-operand claim means the
//!    operator returns its operand's value; an equals-current-rollback
//!    claim means `ρ(I, n)` beyond the clock equals `ρ(I, inf)` — all
//!    verified by evaluating both sides on all four backends, memo on
//!    and off.
//! 2. **Cardinality bounds contain reality.** Every subexpression's
//!    static [`CardInterval`] contains the evaluated cardinality, and
//!    the end-of-sentence [`StatsCatalog`] intervals contain the true
//!    cardinality (and value ranges the true values) of every stored
//!    version.
//! 3. **Dead writes are dead.** Neutering every write the linter proved
//!    dead (replacing its expression with `σ_false` of itself) changes
//!    no display output and no final relation state, on every backend.

use proptest::prelude::*;
use txtime::snapshot::rng::rngs::StdRng;
use txtime::snapshot::rng::{Rng, SeedableRng};

use txtime::analyze::{
    analyze_expr, claim_target, lint_sentence, Checker, ClaimKind, ExprInterner, Linter, ValueRange,
};
use txtime::core::generate::{random_commands, CmdGenConfig};
use txtime::core::{
    Command, CommandOutcome, Expr, RelationType, SchemeChange, Sentence, TransactionNumber, TxSpec,
};
use txtime::snapshot::generate::GenConfig;
use txtime::snapshot::{DomainType, Predicate, Schema, Value};
use txtime::storage::{BackendKind, CheckpointPolicy, Engine};

fn schema() -> Schema {
    Schema::new(vec![("a0", DomainType::Int), ("a1", DomainType::Str)]).unwrap()
}

fn gen_cfg() -> CmdGenConfig {
    CmdGenConfig {
        values: GenConfig {
            arity: 2,
            cardinality: 8,
            int_range: 12,
            str_pool: 4,
        },
        relations: vec!["r0".into(), "r1".into()],
        churn: 0.4,
    }
}

/// A random query over the generated relations, biased toward shapes the
/// lint pass has judgments for: out-of-range rollbacks (W006/W007),
/// contradictory and vacuous selections against the statistics catalog's
/// value ranges (W001/W002), self-differences (W004), and identity
/// projections (W005).
fn random_query(rng: &mut StdRng) -> Expr {
    fn leaf(rng: &mut StdRng, rel: &str) -> Expr {
        if rng.gen_bool(0.6) {
            Expr::current(rel)
        } else {
            // Deliberately spans [1, 20]: below the first version, inside
            // the history, and beyond the clock are all reachable.
            Expr::rollback(rel, TxSpec::At(TransactionNumber(rng.gen_range(1..21))))
        }
    }
    let rel = if rng.gen_bool(0.5) { "r0" } else { "r1" };
    match rng.gen_range(0..8) {
        0 => leaf(rng, rel),
        1 => {
            let c = rng.gen_range(-20i64..21);
            leaf(rng, rel).select(Predicate::gt_const("a0", Value::Int(c)))
        }
        2 => {
            // Sometimes contradictory (lo ≥ hi), sometimes narrow.
            let lo = rng.gen_range(-15i64..16);
            let hi = rng.gen_range(-15i64..16);
            leaf(rng, rel).select(
                Predicate::gt_const("a0", Value::Int(lo))
                    .and(Predicate::lt_const("a0", Value::Int(hi))),
            )
        }
        3 => {
            let l = leaf(rng, rel);
            let r = leaf(rng, rel);
            l.minus_expr(r)
        }
        4 => {
            let e = leaf(rng, rel);
            e.clone().minus_expr(e)
        }
        5 => leaf(rng, rel).project(vec!["a0".to_string(), "a1".to_string()]),
        6 => leaf(rng, rel).project(vec!["a1".to_string()]),
        7 => leaf(rng, rel).union(Expr::current(if rel == "r0" { "r1" } else { "r0" })),
        _ => unreachable!(),
    }
}

/// `minus` without consuming ambiguity with std's `Sub`.
trait MinusExt {
    fn minus_expr(self, other: Expr) -> Expr;
}
impl MinusExt for Expr {
    fn minus_expr(self, other: Expr) -> Expr {
        self.difference(other)
    }
}

/// Random workload: generated modify_states over two rollback relations,
/// spiced with displays of lint-interesting queries, a delete/redefine,
/// and a scheme evolution.
fn arb_commands() -> impl Strategy<Value = Vec<Command>> {
    (any::<u64>(), 4usize..16).prop_map(|(seed, len)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut cmds = random_commands(&mut rng, &schema(), &gen_cfg(), len);
        let defines = gen_cfg().relations.len();
        let mut spice: Vec<Command> = (0..6)
            .map(|_| Command::display(random_query(&mut rng)))
            .collect();
        spice.push(Command::delete_relation("r1"));
        spice.push(Command::define_relation("r1", RelationType::Rollback));
        spice.push(Command::evolve_scheme(
            "r0",
            SchemeChange::AddAttribute {
                name: "extra".into(),
                domain: DomainType::Bool,
                default: Value::Bool(false),
            },
        ));
        for s in spice {
            let pos = rng.gen_range(defines..=cmds.len());
            cmds.insert(pos, s);
        }
        cmds
    })
}

/// Every backend × memo on/off: the lint's claims must hold on each.
fn all_engines() -> Vec<(String, Engine)> {
    let mut engines = Vec::new();
    for backend in BackendKind::ALL {
        for memo in [true, false] {
            let engine = Engine::new(backend, CheckpointPolicy::every_k(3).unwrap());
            if !memo {
                engine.set_memo_capacity(0);
            }
            engines.push((format!("{backend}/memo={memo}"), engine));
        }
    }
    engines
}

/// Collects every distinct subexpression (including the root).
fn subtrees<'e>(e: &'e Expr, out: &mut Vec<&'e Expr>) {
    out.push(e);
    for c in e.operands() {
        subtrees(c, out);
    }
}

/// The current-state query matching a relation's kind.
fn current_of(rtype: RelationType, name: &str) -> Expr {
    match rtype {
        RelationType::Historical | RelationType::Temporal => Expr::hcurrent(name),
        _ => Expr::current(name),
    }
}

/// The as-of query matching a relation's kind.
fn rollback_of(rtype: RelationType, name: &str, tx: TransactionNumber) -> Expr {
    match rtype {
        RelationType::Historical | RelationType::Temporal => Expr::hrollback(name, TxSpec::At(tx)),
        _ => Expr::rollback(name, TxSpec::At(tx)),
    }
}

/// Asserts a state's tuples fall inside the per-attribute value ranges.
fn assert_ranges_contain(state: &txtime::core::StateValue, ranges: &[ValueRange], context: &str) {
    use txtime::core::StateValue;
    let check = |tuples: Vec<&txtime::snapshot::Tuple>| {
        for t in tuples {
            for (i, r) in ranges.iter().enumerate() {
                assert!(
                    r.contains(t.get(i)),
                    "{context}: value {:?} escapes static range {r:?} at position {i}",
                    t.get(i)
                );
            }
        }
    };
    match state {
        StateValue::Snapshot(s) => check(s.iter().collect()),
        StateValue::Historical(h) => check(h.iter().map(|(t, _)| t).collect()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Properties 1 and 2: replay the sentence command-by-command (the
    /// REPL discipline — check, execute everywhere, commit), verifying
    /// every expression-level claim and cardinality bound against every
    /// engine at the moment the claim is made, and the statistics
    /// catalog against the surviving relations at the end.
    #[test]
    fn lint_claims_and_bounds_hold_on_all_backends(cmds in arb_commands()) {
        let mut linter = Linter::new();
        let mut engines = all_engines();
        let mut interner = ExprInterner::new();

        for cmd in &cmds {
            if !linter.check(cmd, None).is_empty() {
                continue; // erroring commands are no-ops everywhere
            }
            if let Some(e) = cmd.expr() {
                let analysis = analyze_expr(e, None, linter.catalog(), linter.stats(), &mut interner);
                // Claims: machine-checkable warning content, against the
                // pre-command state of every engine.
                for claim in &analysis.claims {
                    let node = claim_target(e, claim);
                    for (label, engine) in &engines {
                        match &claim.kind {
                            ClaimKind::Empty => {
                                let got = engine.eval(node).expect("claimed node evaluates");
                                prop_assert_eq!(
                                    got.len(), 0,
                                    "{}: ∅-claimed `{}` evaluated to {} tuples", label, node, got.len()
                                );
                            }
                            ClaimKind::EqualsOperand => {
                                let got = engine.eval(node).expect("claimed node evaluates");
                                let want = engine.eval(node.operands()[0]).expect("operand evaluates");
                                prop_assert_eq!(
                                    &got, &want,
                                    "{}: `{}` claimed equal to its operand", label, node
                                );
                            }
                            ClaimKind::EqualsCurrentRollback => {
                                let current = match node {
                                    Expr::Rollback(ident, _) => Expr::rollback(ident.clone(), TxSpec::Current),
                                    Expr::HRollback(ident, _) => Expr::hrollback(ident.clone(), TxSpec::Current),
                                    other => panic!("rollback claim on non-rollback {other}"),
                                };
                                let got = engine.eval(node).expect("claimed node evaluates");
                                let want = engine.eval(&current).expect("current evaluates");
                                prop_assert_eq!(
                                    &got, &want,
                                    "{}: `{}` claimed to resolve to the current version", label, node
                                );
                            }
                        }
                    }
                }
                // Bounds: every subexpression's static interval contains
                // its true cardinality (reference engine suffices — all
                // engines are pinned equivalent by the differential suite).
                let mut nodes = Vec::new();
                subtrees(e, &mut nodes);
                let reference = &engines[0].1;
                for sub in nodes {
                    let id = interner.intern(sub);
                    // `bounds` covers every distinct node of the interned
                    // DAG, so the lookup must succeed.
                    let bound = analysis
                        .bounds
                        .iter()
                        .find(|(b, _)| *b == id)
                        .map(|(_, c)| *c)
                        .unwrap_or_else(|| panic!("no bound recorded for `{sub}`"));
                    let got = reference.eval(sub).expect("subexpression evaluates");
                    prop_assert!(
                        bound.contains(got.len() as u64),
                        "static bound {bound:?} excludes true cardinality {} of `{sub}`",
                        got.len()
                    );
                }
            }
            for (label, engine) in &mut engines {
                engine.execute(cmd).unwrap_or_else(|e| panic!("{label}: clean command failed: {e}"));
            }
            linter.commit(cmd, None);
        }

        // The statistics catalog: every surviving relation's recorded
        // versions must contain the true cardinalities and value ranges.
        let reference = &engines[0].1;
        let names: Vec<String> = linter.stats().names().map(str::to_string).collect();
        for name in names {
            let rtype = linter.catalog().get(&name).expect("stats ⊆ catalog").rtype;
            let rs = linter.stats().get(&name).expect("listed");
            for v in &rs.versions {
                let q = if rtype.keeps_history() {
                    rollback_of(rtype, &name, v.tx)
                } else {
                    current_of(rtype, &name)
                };
                let got = reference.eval(&q).expect("stored version evaluates");
                prop_assert!(
                    v.card.contains(got.len() as u64),
                    "stats interval {:?} excludes true cardinality {} of {name} at tx {}",
                    v.card, got.len(), v.tx.0
                );
                if let Some(ranges) = &v.ranges {
                    assert_ranges_contain(&got, ranges, &format!("{name}@tx{}", v.tx.0));
                }
            }
        }
    }

    /// Property 3: neutering every dead write (σ_false of its own
    /// expression, preserving schema and transaction numbering) changes
    /// no display output and no surviving relation's final state.
    #[test]
    fn dead_writes_are_observationally_dead(cmds in arb_commands()) {
        let sentence = Sentence::new(cmds.clone()).expect("generated commands form a sentence");
        let report = lint_sentence(&sentence, None);
        if report.dead_writes.is_empty() {
            return Ok(()); // nothing proved dead in this case
        }

        // Neuter each dead write, picking σ̂ for historical-kind writes.
        let mut types: std::collections::BTreeMap<String, RelationType> = Default::default();
        let mut mutated = cmds.clone();
        let mut seen_errors = Checker::new();
        for (i, cmd) in cmds.iter().enumerate() {
            // Track types through the *clean* prefix exactly as the
            // linter did (erroring commands are no-ops).
            let clean = seen_errors.check(cmd, None).is_empty();
            if clean {
                seen_errors.commit(cmd);
                if let Command::DefineRelation(ident, rtype) = cmd {
                    types.insert(ident.clone(), *rtype);
                }
            }
            if report.dead_writes.contains(&i) {
                if let Command::ModifyState(ident, e) = cmd {
                    let historical = matches!(
                        types.get(ident),
                        Some(RelationType::Historical | RelationType::Temporal)
                    );
                    let neutered = if historical {
                        e.clone().hselect(Predicate::False)
                    } else {
                        e.clone().select(Predicate::False)
                    };
                    mutated[i] = Command::modify_state(ident.clone(), neutered);
                }
            }
        }

        for backend in BackendKind::ALL {
            let run = |commands: &[Command]| {
                let mut engine = Engine::new(backend, CheckpointPolicy::every_k(3).unwrap());
                let mut checker = Checker::new();
                let mut displays = Vec::new();
                for cmd in commands {
                    if !checker.check(cmd, None).is_empty() {
                        continue;
                    }
                    if let CommandOutcome::Displayed(state) =
                        engine.execute(cmd).expect("clean command executes")
                    {
                        displays.push(state);
                    }
                    checker.commit(cmd);
                }
                let finals: Vec<_> = engine
                    .relations()
                    .iter()
                    .map(|name| {
                        let rtype = engine.relation_type(name).expect("listed");
                        (name.to_string(), engine.eval(&current_of(rtype, name)).ok())
                    })
                    .collect();
                (displays, finals)
            };
            let (displays_orig, finals_orig) = run(&cmds);
            let (displays_mut, finals_mut) = run(&mutated);
            prop_assert_eq!(
                &displays_orig, &displays_mut,
                "{}: neutering dead writes changed a display", backend
            );
            prop_assert_eq!(
                &finals_orig, &finals_mut,
                "{}: neutering dead writes changed a final state", backend
            );
        }
    }
}

/// The warnings themselves never contradict execution on the checked-in
/// example scripts: they lint clean, so nothing to contradict — pinned
/// here so the CI lint-scripts gate and the test suite agree.
#[test]
fn example_scripts_lint_clean() {
    for entry in std::fs::read_dir(concat!(env!("CARGO_MANIFEST_DIR"), "/examples/scripts"))
        .expect("scripts directory exists")
    {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("txq") {
            continue;
        }
        let source = std::fs::read_to_string(&path).expect("script reads");
        let (sentence, spans) =
            txtime::parser::parse_sentence_spanned(&source).expect("script parses");
        let report = lint_sentence(&sentence, Some(&spans));
        assert!(
            report.diagnostics.is_empty(),
            "{}: {:#?}",
            path.display(),
            report.diagnostics
        );
        assert!(
            report.warnings.is_empty(),
            "{}: {:#?}",
            path.display(),
            report.warnings
        );
    }
}
