//! Smoke tests for `txtime serve`: many concurrent sessions against one
//! in-process server, clean shutdown, MVCC snapshot reads, and the
//! admission-control rejections.

use std::net::TcpListener;
use std::sync::Arc;

use txtime::server::{serve, Client, Response, ServerConfig};
use txtime::storage::{BackendKind, CheckpointPolicy, Engine};

fn listener() -> TcpListener {
    TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port")
}

/// Eight concurrent write/read sessions on disjoint relations: every
/// request is acked, shutdown is clean, and the final engine state is
/// exactly what each session's commands produce in isolation (disjoint
/// relations make the expected state interleave-independent).
#[test]
fn eight_concurrent_sessions_and_clean_shutdown() {
    let engine = Engine::new(
        BackendKind::ForwardDelta,
        CheckpointPolicy::every_k(8).unwrap(),
    );
    let handle = serve(engine, listener(), ServerConfig::default()).expect("server starts");
    let addr = handle.addr();

    const SESSIONS: usize = 8;
    const WRITES: usize = 10;
    let workers: Vec<_> = (0..SESSIONS)
        .map(|i| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).expect("connect");
                let rel = format!("r{i}");
                let r = c
                    .exec(&format!("define_relation({rel}, rollback);"))
                    .expect("define");
                assert!(r.is_ok(), "define failed: {r:?}");
                for v in 0..WRITES {
                    // The first state is a literal; later ones extend it
                    // (ρ of a stateless relation has no scheme — E010).
                    let expr = if v == 0 {
                        format!("{{(x: int): ({v})}}")
                    } else {
                        format!("rho({rel}, inf) union {{(x: int): ({v})}}")
                    };
                    let r = c
                        .exec(&format!("modify_state({rel}, {expr});"))
                        .expect("modify");
                    assert!(r.is_ok(), "modify failed: {r:?}");
                }
                let r = c
                    .exec(&format!("display(rho({rel}, inf));"))
                    .expect("display");
                match r {
                    Response::Val(state) => {
                        for v in 0..WRITES {
                            assert!(
                                state.contains(&format!("({v})")),
                                "session {i} lost tuple {v}: {state}"
                            );
                        }
                    }
                    other => panic!("display failed: {other:?}"),
                }
                assert!(c.request("QUIT").expect("quit").is_ok());
            })
        })
        .collect();
    for w in workers {
        w.join().expect("worker panicked");
    }

    handle.shutdown();
    let report = handle.wait();
    assert_eq!(report.sessions.accepted, SESSIONS as u64);
    assert_eq!(report.sessions.active, 0);
    assert_eq!(report.sessions.writes, (SESSIONS * (WRITES + 1)) as u64);
    assert_eq!(
        report.group_commit.commits,
        (SESSIONS * (WRITES + 1)) as u64
    );
    // One fsync per group; groups never exceed commits.
    assert_eq!(report.group_commit.fsyncs, report.group_commit.groups);
    assert_eq!(report.engine.relations().len(), SESSIONS);
    // The commit clock saw every write exactly once.
    assert_eq!(report.engine.tx().0, (SESSIONS * (WRITES + 1)) as u64);
}

/// A pinned snapshot is repeatable: concurrent commits never leak into
/// it, and unpinning sees them all (the MVCC read path).
#[test]
fn snapshot_reads_are_repeatable_under_concurrent_writes() {
    let engine = Engine::new(BackendKind::FullCopy, CheckpointPolicy::Never);
    let handle = serve(engine, listener(), ServerConfig::default()).expect("server starts");
    let addr = handle.addr();

    let mut writer = Client::connect(addr).expect("connect");
    assert!(writer
        .exec("define_relation(emp, rollback);")
        .unwrap()
        .is_ok());
    assert!(writer
        .exec("modify_state(emp, {(x: int): (1)});")
        .unwrap()
        .is_ok());

    let mut reader = Client::connect(addr).expect("connect");
    let pinned = reader.snapshot().expect("snapshot");
    assert!(pinned.is_ok(), "{pinned:?}");
    let before = reader.exec("display(rho(emp, inf));").expect("read");

    // Another session commits after the pin.
    assert!(writer
        .exec("modify_state(emp, rho(emp, inf) union {(x: int): (2)});")
        .unwrap()
        .is_ok());

    let after = reader.exec("display(rho(emp, inf));").expect("read");
    assert_eq!(
        before, after,
        "pinned read changed under a concurrent commit"
    );
    match &after {
        Response::Val(state) => assert!(!state.contains("(2)"), "pin leaked: {state}"),
        other => panic!("read failed: {other:?}"),
    }

    assert!(reader.request("SNAPSHOT OFF").unwrap().is_ok());
    match reader.exec("display(rho(emp, inf));").expect("read") {
        Response::Val(state) => assert!(state.contains("(2)"), "unpinned read stale: {state}"),
        other => panic!("read failed: {other:?}"),
    }

    handle.shutdown();
    handle.wait();
}

/// `SNAPSHOT DURABLE` pins to the fsynced clock: after an acked write
/// the durable gauge covers it (acks are sent only after the group's
/// fsync returns), so the pin equals the applied clock here and the read
/// can never observe state a crash would take back.
#[test]
fn snapshot_durable_pins_to_the_fsynced_clock() {
    let engine = Engine::new(BackendKind::FullCopy, CheckpointPolicy::Never);
    let handle = serve(engine, listener(), ServerConfig::default()).expect("server starts");
    let addr = handle.addr();

    let mut c = Client::connect(addr).expect("connect");
    assert!(c.exec("define_relation(emp, rollback);").unwrap().is_ok());
    assert!(c
        .exec("modify_state(emp, {(x: int): (1)});")
        .unwrap()
        .is_ok());

    // Both writes are acked, therefore durable: the pin is exactly tx 2.
    match c.snapshot_durable().expect("snapshot durable") {
        Response::Ok(detail) => assert_eq!(detail, "snapshot tx=2"),
        other => panic!("snapshot durable failed: {other:?}"),
    }
    match c.exec("display(rho(emp, inf));").expect("read") {
        Response::Val(state) => assert!(state.contains("(1)"), "durable read stale: {state}"),
        other => panic!("read failed: {other:?}"),
    }
    assert_eq!(handle.group_commit_stats().durable_tx, 2);
    let stats = c.stats().expect("stats");
    assert!(
        stats.contains("durable at tx 2"),
        "durable gauge missing from STATS: {stats}"
    );

    handle.shutdown();
    handle.wait();
}

/// Connections beyond `max_sessions` get `ERR busy` at the door.
#[test]
fn sessions_beyond_the_cap_are_rejected_busy() {
    let engine = Engine::new(BackendKind::FullCopy, CheckpointPolicy::Never);
    let cfg = ServerConfig {
        max_sessions: 1,
        ..ServerConfig::default()
    };
    let handle = serve(engine, listener(), cfg).expect("server starts");
    let addr = handle.addr();

    let mut first = Client::connect(addr).expect("connect");
    assert!(first.request("PING").unwrap().is_ok());

    // The second connection is turned away with a busy frame. The reject
    // happens at accept time, so poll until the acceptor has seen us.
    let mut rejected = false;
    for _ in 0..50 {
        let mut second = match Client::connect(addr) {
            Ok(c) => c,
            Err(_) => continue,
        };
        match second.request("PING") {
            Ok(Response::Err { kind, .. }) if kind == "busy" => {
                rejected = true;
                break;
            }
            Ok(_) => std::thread::sleep(std::time::Duration::from_millis(20)),
            Err(_) => {}
        }
    }
    assert!(rejected, "no busy rejection despite max_sessions=1");
    assert!(handle.session_stats().rejected_sessions >= 1);

    handle.shutdown();
    handle.wait();
}

/// Check rejections carry diagnostics with spans into the client's text,
/// and parse errors are reported without touching the engine.
#[test]
fn diagnostics_flow_back_to_the_client() {
    let engine = Engine::new(BackendKind::FullCopy, CheckpointPolicy::Never);
    let handle = serve(engine, listener(), ServerConfig::default()).expect("server starts");
    let addr = handle.addr();

    let mut c = Client::connect(addr).expect("connect");
    match c.exec("display(rho(ghost, inf));").expect("exec") {
        Response::Err { kind, message } => {
            assert_eq!(kind, "check");
            assert!(message.contains("E001"), "missing code: {message}");
            assert!(message.contains("ghost"), "missing ident: {message}");
        }
        other => panic!("expected check error, got {other:?}"),
    }
    match c.exec("not a command").expect("exec") {
        Response::Err { kind, .. } => assert_eq!(kind, "parse"),
        other => panic!("expected parse error, got {other:?}"),
    }
    // Unknown verbs are protocol errors, not session killers.
    match c.request("FROBNICATE").expect("request") {
        Response::Err { kind, .. } => assert_eq!(kind, "proto"),
        other => panic!("expected proto error, got {other:?}"),
    }
    assert!(c.request("PING").expect("still alive").is_ok());

    let stats = handle.session_stats();
    assert!(stats.check_rejected >= 1);

    handle.shutdown();
    handle.wait();
}

/// A client `SHUTDOWN` frame stops the whole server; `wait` returns the
/// flushed engine.
#[test]
fn client_shutdown_verb_stops_the_server() {
    let engine = Engine::new(
        BackendKind::ReverseDelta,
        CheckpointPolicy::every_k(4).unwrap(),
    );
    let handle = serve(engine, listener(), ServerConfig::default()).expect("server starts");
    let addr = handle.addr();

    let mut c = Client::connect(addr).expect("connect");
    assert!(c.exec("define_relation(r, rollback);").unwrap().is_ok());
    assert!(c.request("SHUTDOWN").unwrap().is_ok());

    let report = handle.wait();
    assert_eq!(report.engine.relations(), vec!["r"]);
    // New connections are refused or dead after shutdown.
    assert!(
        Client::connect(addr)
            .and_then(|mut c| c.request("PING"))
            .is_err(),
        "server still serving after shutdown"
    );
}

/// The server and an `Arc` of it are usable from multiple client threads
/// hammering reads while a writer commits — reads never error.
#[test]
fn readers_never_fail_under_concurrent_writes() {
    let engine = Engine::new(
        BackendKind::ForwardDelta,
        CheckpointPolicy::every_k(8).unwrap(),
    );
    let handle = serve(engine, listener(), ServerConfig::default()).expect("server starts");
    let addr = handle.addr();

    let mut setup = Client::connect(addr).expect("connect");
    assert!(setup
        .exec("define_relation(hot, rollback);")
        .unwrap()
        .is_ok());
    assert!(setup
        .exec("modify_state(hot, {(x: int): (0)});")
        .unwrap()
        .is_ok());

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let writer = {
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut c = Client::connect(addr).expect("connect");
            let mut v = 1;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let r = c
                    .exec(&format!(
                        "modify_state(hot, rho(hot, inf) union {{(x: int): ({v})}});"
                    ))
                    .expect("write");
                assert!(r.is_ok(), "{r:?}");
                v += 1;
            }
        })
    };
    let readers: Vec<_> = (0..3)
        .map(|_| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).expect("connect");
                for _ in 0..30 {
                    let r = c.exec("display(rho(hot, inf));").expect("read");
                    assert!(r.is_ok(), "read failed under write load: {r:?}");
                }
            })
        })
        .collect();
    for r in readers {
        r.join().expect("reader panicked");
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    writer.join().expect("writer panicked");

    handle.shutdown();
    handle.wait();
}
