//! End-to-end integration: surface syntax → parser → (optimizer) →
//! reference semantics and storage engines → WAL → recovery.

use txtime::core::{StateSource, TransactionNumber, TxSpec};
use txtime::optimizer::{optimize, SchemaCatalog};
use txtime::parser::{parse_expr, parse_sentence};
use txtime::storage::{
    check_equivalence, recovery::recover, BackendKind, CheckpointPolicy, Engine,
};

const SCRIPT: &str = r#"
    -- a rollback relation and a snapshot helper
    define_relation(emp, rollback);
    modify_state(emp, {(name: str, dept: str, sal: int):
        ("alice", "cs", 100), ("bob", "ee", 120)});
    modify_state(emp, rho(emp, inf) union
        {(name: str, dept: str, sal: int): ("carol", "cs", 90)});
    modify_state(emp,
        (rho(emp, inf) minus {(name: str, dept: str, sal: int): ("bob", "ee", 120)})
        union {(name: str, dept: str, sal: int): ("bob", "ee", 150)});

    define_relation(dept, snapshot);
    modify_state(dept, {(dname: str, bldg: str):
        ("cs", "sitterson"), ("ee", "phillips")});

    -- a temporal relation
    define_relation(staff, temporal);
    modify_state(staff, historical {(name: str):
        ("alice") @ {[0, 10)}, ("bob") @ {[3, forever)}});
    modify_state(staff, historical {(name: str):
        ("alice") @ {[0, 12)}, ("bob") @ {[3, forever)}});
"#;

#[test]
fn script_runs_on_reference_and_all_engines() {
    let sentence = parse_sentence(SCRIPT).expect("script parses");
    let db = sentence.eval().expect("script evaluates");
    assert_eq!(db.tx, TransactionNumber(9));

    // The same commands run identically on every storage engine.
    for backend in BackendKind::ALL {
        check_equivalence(
            sentence.commands(),
            backend,
            CheckpointPolicy::every_k(2).unwrap(),
        )
        .unwrap_or_else(|e| panic!("{backend}: {e}"));
    }
}

#[test]
fn parsed_queries_agree_before_and_after_optimization() {
    let db = parse_sentence(SCRIPT).unwrap().eval().unwrap();
    let catalog = SchemaCatalog::from_database(&db);

    let queries = [
        r#"project[name](select[sal > 100](rho(emp, inf)))"#,
        r#"select[dept = "cs"](rho(emp, 3)) union select[dept = "cs"](rho(emp, inf))"#,
        r#"select[sal > 100 and dname = "sitterson"](rho(emp, inf) times rho(dept, inf))"#,
        r#"project[name](project[name, sal](rho(emp, inf)))"#,
        r#"select[false](rho(emp, inf))"#,
    ];
    for text in queries {
        let q = parse_expr(text).expect("query parses");
        let o = optimize(&q, &catalog);
        let expected = q.eval(&db).expect("query evaluates");
        let got = o.eval(&db).expect("optimized query evaluates");
        assert_eq!(got, expected, "query {text}");
    }
}

#[test]
fn temporal_queries_compose_across_crates() {
    let db = parse_sentence(SCRIPT).unwrap().eval().unwrap();
    // δ parsed from text, evaluated against ρ̂ of a past transaction.
    let q =
        parse_expr("delta[valid overlaps {[9, 11)}; valid intersect {[9, 11)}](hrho(staff, 8))")
            .unwrap();
    let h = q.eval(&db).unwrap().into_historical().unwrap();
    // At tx 8 alice was valid over [0,10): she overlaps [9,11) at {9}.
    // bob is valid forever from 3.
    assert_eq!(h.len(), 2);
    let q8 =
        parse_expr("delta[valid overlaps {[9, 11)}; valid intersect {[9, 11)}](hrho(staff, 9))")
            .unwrap();
    let h8 = q8.eval(&db).unwrap().into_historical().unwrap();
    // After the tx-9 revision alice extends to 12: both chronons survive.
    let alice = txtime::snapshot::Tuple::new(vec![txtime::snapshot::Value::str("alice")]);
    assert!(h8.valid_time(&alice).unwrap().contains(10));
    assert!(!h.valid_time(&alice).unwrap().contains(10));
}

#[test]
fn wal_round_trip_through_the_parser() {
    let dir = std::env::temp_dir().join("txtime-e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("e2e-{}.wal", std::process::id()));
    let _ = std::fs::remove_file(&path);

    let sentence = parse_sentence(SCRIPT).unwrap();
    let mut live = Engine::with_wal(BackendKind::TupleTimestamp, CheckpointPolicy::Never, &path)
        .expect("wal engine");
    for c in sentence.commands() {
        live.execute(c).expect("command valid");
    }
    let rec = recover(&path, BackendKind::TupleTimestamp, CheckpointPolicy::Never)
        .expect("recovery succeeds");
    assert!(rec.skipped.is_empty());
    assert_eq!(rec.engine.tx(), live.tx());
    for name in live.relations() {
        let historical = matches!(
            live.relation_type(name),
            Some(txtime::core::RelationType::Historical | txtime::core::RelationType::Temporal)
        );
        for t in 0..=live.tx().0 {
            let spec = TxSpec::At(TransactionNumber(t));
            let a = live.resolve_rollback(name, spec, historical).ok();
            let b = rec.engine.resolve_rollback(name, spec, historical).ok();
            assert_eq!(a, b, "relation {name} at tx {t}");
        }
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn pretty_printed_scripts_round_trip() {
    let sentence = parse_sentence(SCRIPT).unwrap();
    let printed = txtime::parser::print::print_sentence(&sentence);
    let reparsed = parse_sentence(&printed).expect("printed script reparses");
    assert_eq!(reparsed, sentence);
    assert_eq!(
        reparsed.eval().unwrap(),
        sentence.eval().unwrap(),
        "round-tripped script evaluates identically"
    );
}

#[test]
fn transactions_over_parsed_commands() {
    use txtime::txn::{Transaction, TransactionManager};
    let mgr = TransactionManager::new();
    let setup = parse_sentence(SCRIPT).unwrap();
    mgr.submit(&Transaction::new(1, setup.commands().to_vec()))
        .expect("setup transaction commits");

    // A failing transaction leaves everything untouched.
    let bad = parse_sentence(
        r#"
        modify_state(emp, rho(emp, inf) minus rho(emp, inf));
        modify_state(ghost, rho(ghost, inf));
        "#,
    )
    .unwrap();
    let before = mgr.snapshot();
    assert!(mgr
        .submit(&Transaction::new(2, bad.commands().to_vec()))
        .is_err());
    assert_eq!(mgr.snapshot(), before);

    // The data is still fully queryable.
    let cur = mgr
        .query(&parse_expr("rho(emp, inf)").unwrap())
        .expect("query runs");
    assert_eq!(cur.len(), 3);
}
