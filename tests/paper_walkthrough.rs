//! A section-by-section walkthrough of the paper, with each definitional
//! rule checked as executable behaviour. Section numbers refer to
//! McKenzie & Snodgrass, SIGMOD 1987.

use txtime::core::prelude::*;
use txtime::core::EvalError;
use txtime::historical::{HistoricalState, TemporalElement};
use txtime::snapshot::{DomainType, Schema, SnapshotState, Tuple, Value};

fn schema() -> Schema {
    Schema::new(vec![("x", DomainType::Int)]).unwrap()
}

fn snap(vals: &[i64]) -> SnapshotState {
    SnapshotState::from_rows(schema(), vals.iter().map(|&v| vec![Value::Int(v)])).unwrap()
}

fn hist(vals: &[(i64, u32, u32)]) -> HistoricalState {
    HistoricalState::new(
        schema(),
        vals.iter().map(|&(v, s, e)| {
            (
                Tuple::new(vec![Value::Int(v)]),
                TemporalElement::period(s, e),
            )
        }),
    )
    .unwrap()
}

mod section_3_2_semantic_domains {
    use super::*;

    /// "The sequence of states for a snapshot relation will always be a
    /// single-element sequence."
    #[test]
    fn snapshot_relations_have_single_element_sequences() {
        let db = Sentence::new(vec![
            Command::define_relation("s", RelationType::Snapshot),
            Command::modify_state("s", Expr::snapshot_const(snap(&[1]))),
            Command::modify_state("s", Expr::snapshot_const(snap(&[2]))),
            Command::modify_state("s", Expr::snapshot_const(snap(&[3]))),
        ])
        .unwrap()
        .eval()
        .unwrap();
        assert_eq!(db.state.lookup("s").unwrap().versions().len(), 1);
    }

    /// "Rollback relations are append only relations defined in terms of
    /// snapshot states."
    #[test]
    fn rollback_relations_are_append_only() {
        let db = Sentence::new(vec![
            Command::define_relation("r", RelationType::Rollback),
            Command::modify_state("r", Expr::snapshot_const(snap(&[1]))),
            Command::modify_state("r", Expr::snapshot_const(snap(&[2]))),
        ])
        .unwrap()
        .eval()
        .unwrap();
        let r = db.state.lookup("r").unwrap();
        assert_eq!(r.versions().len(), 2);
        // Appending never rewrote the first pair.
        assert_eq!(r.versions()[0].state.as_snapshot().unwrap(), &snap(&[1]));
    }

    /// "The transaction-number components of a state sequence, while not
    /// necessarily consecutive, will be nevertheless strictly increasing."
    #[test]
    fn transaction_numbers_increase_but_need_not_be_consecutive() {
        let db = Sentence::new(vec![
            Command::define_relation("r", RelationType::Rollback),
            Command::modify_state("r", Expr::snapshot_const(snap(&[1]))), // tx 2
            Command::define_relation("q", RelationType::Snapshot),        // tx 3
            Command::modify_state("r", Expr::snapshot_const(snap(&[2]))), // tx 4
        ])
        .unwrap()
        .eval()
        .unwrap();
        let txs: Vec<u64> = db
            .state
            .lookup("r")
            .unwrap()
            .versions()
            .iter()
            .map(|v| v.tx.0)
            .collect();
        assert_eq!(txs, vec![2, 4]); // gap at 3, strictly increasing
    }
}

mod section_3_3_auxiliary_functions {
    use super::*;
    use txtime::core::semantics::aux::find_state;

    /// "FINDSTATE maps a relation into the snapshot-state component of
    /// the element … having the largest transaction-number component less
    /// than or equal to a given integer."
    #[test]
    fn findstate_is_the_floor_lookup() {
        let db = Sentence::new(vec![
            Command::define_relation("r", RelationType::Rollback),
            Command::modify_state("r", Expr::snapshot_const(snap(&[1]))), // tx 2
            Command::define_relation("pad1", RelationType::Snapshot),
            Command::define_relation("pad2", RelationType::Snapshot),
            Command::modify_state("r", Expr::snapshot_const(snap(&[2]))), // tx 5
        ])
        .unwrap()
        .eval()
        .unwrap();
        let r = db.state.lookup("r").unwrap();
        for t in 2..5 {
            assert_eq!(
                find_state(r, TransactionNumber(t)).unwrap().as_snapshot(),
                Some(&snap(&[1])),
                "interpolated at tx {t}"
            );
        }
        assert_eq!(
            find_state(r, TransactionNumber(5)).unwrap().as_snapshot(),
            Some(&snap(&[2]))
        );
        // "If the sequence is empty or no such element exists in the
        // sequence, then FINDSTATE returns the empty set."
        assert!(find_state(r, TransactionNumber(1)).is_none());
    }
}

mod section_3_4_expressions {
    use super::*;

    fn db() -> Database {
        Sentence::new(vec![
            Command::define_relation("r", RelationType::Rollback),
            Command::modify_state("r", Expr::snapshot_const(snap(&[1, 2]))), // tx 2
            Command::modify_state("r", Expr::snapshot_const(snap(&[2, 3]))), // tx 3
            Command::define_relation("s", RelationType::Snapshot),
            Command::modify_state("s", Expr::snapshot_const(snap(&[9]))),
        ])
        .unwrap()
        .eval()
        .unwrap()
    }

    /// "Evaluation of an expression on a specific database does not
    /// change that database."
    #[test]
    fn expressions_are_side_effect_free() {
        let d = db();
        let before = d.clone();
        let _ = Expr::current("r")
            .union(Expr::current("r"))
            .select(txtime::snapshot::Predicate::gt_const("x", Value::Int(1)))
            .eval(&d);
        assert_eq!(d, before);
    }

    /// "If N = ∞, then the result … is the most recent snapshot state";
    /// "the operator ρ may be applied to either a snapshot or a rollback
    /// relation".
    #[test]
    fn rho_with_infinity_reads_the_present_of_both_types() {
        let d = db();
        assert_eq!(
            Expr::current("r")
                .eval(&d)
                .unwrap()
                .into_snapshot()
                .unwrap(),
            snap(&[2, 3])
        );
        assert_eq!(
            Expr::current("s")
                .eval(&d)
                .unwrap()
                .into_snapshot()
                .unwrap(),
            snap(&[9])
        );
    }

    /// "If N is not ∞, ρ may only be applied to a rollback relation …
    /// The rollback operator cannot retrieve a past state of a snapshot
    /// relation."
    #[test]
    fn rho_with_past_tx_is_rollback_only() {
        let d = db();
        assert_eq!(
            Expr::rollback("r", TxSpec::At(TransactionNumber(2)))
                .eval(&d)
                .unwrap()
                .into_snapshot()
                .unwrap(),
            snap(&[1, 2])
        );
        assert!(matches!(
            Expr::rollback("s", TxSpec::At(TransactionNumber(4))).eval(&d),
            Err(EvalError::RollbackOnSnapshot(_))
        ));
    }
}

mod section_3_5_commands {
    use super::*;

    /// "If the database's database-state component does not currently map
    /// the identifier I into ⊥ … the command leaves the database
    /// unchanged."
    #[test]
    fn define_relation_on_bound_identifier_is_a_noop() {
        let d =
            Command::define_relation("r", RelationType::Rollback).execute_total(&Database::empty());
        let d2 = Command::define_relation("r", RelationType::Temporal).execute_total(&d);
        assert_eq!(d, d2);
        assert_eq!(
            d2.state.lookup("r").unwrap().rtype(),
            RelationType::Rollback
        );
    }

    /// "Append is accommodated by an expression E that evaluates to a
    /// snapshot state containing all of the tuples in a relation's most
    /// recent state plus one or more tuples not in [it]" — and delete and
    /// replace analogously (§3.5).
    #[test]
    fn modify_state_subsumes_append_delete_replace() {
        let d = Sentence::new(vec![
            Command::define_relation("r", RelationType::Rollback),
            Command::modify_state("r", Expr::snapshot_const(snap(&[1]))),
            // append
            Command::modify_state(
                "r",
                Expr::current("r").union(Expr::snapshot_const(snap(&[2]))),
            ),
            // delete
            Command::modify_state(
                "r",
                Expr::current("r").difference(Expr::snapshot_const(snap(&[1]))),
            ),
            // replace
            Command::modify_state(
                "r",
                Expr::current("r")
                    .difference(Expr::snapshot_const(snap(&[2])))
                    .union(Expr::snapshot_const(snap(&[20]))),
            ),
        ])
        .unwrap()
        .eval()
        .unwrap();
        let states: Vec<SnapshotState> = d
            .state
            .lookup("r")
            .unwrap()
            .versions()
            .iter()
            .map(|v| v.state.as_snapshot().unwrap().clone())
            .collect();
        assert_eq!(
            states,
            vec![snap(&[1]), snap(&[1, 2]), snap(&[2]), snap(&[20])]
        );
    }

    /// "C⟦C₁, C₂⟧ d ≜ C⟦C₂⟧ (C⟦C₁⟧ d)" — sequencing is function
    /// composition.
    #[test]
    fn sequencing_is_composition() {
        let c1 = Command::define_relation("r", RelationType::Rollback);
        let c2 = Command::modify_state("r", Expr::snapshot_const(snap(&[7])));
        let composed = c2.execute_total(&c1.execute_total(&Database::empty()));
        let sentence = Sentence::new(vec![c1, c2]).unwrap().eval().unwrap();
        assert_eq!(composed, sentence);
    }
}

mod section_3_6_sentences {
    use super::*;

    /// "P⟦C⟧ ≜ C⟦C⟧ (EMPTY, 0)" — evaluation always starts from the
    /// empty database with transaction count 0.
    #[test]
    fn sentences_start_from_the_empty_database() {
        let d = Database::empty();
        assert_eq!(d.tx, TransactionNumber(0));
        assert!(d.state.is_empty());
        let s = Sentence::new(vec![Command::define_relation("a", RelationType::Snapshot)]).unwrap();
        // eval() and resume(empty) coincide.
        assert_eq!(s.eval().unwrap(), s.resume(&Database::empty()).unwrap());
    }
}

mod section_4_valid_and_transaction_time {
    use super::*;

    fn tdb() -> Database {
        Sentence::new(vec![
            Command::define_relation("t", RelationType::Temporal),
            Command::modify_state("t", Expr::historical_const(hist(&[(1, 0, 10)]))), // tx 2
            Command::modify_state("t", Expr::historical_const(hist(&[(1, 0, 10), (2, 5, 20)]))), // tx 3
            Command::define_relation("h", RelationType::Historical),
            Command::modify_state("h", Expr::historical_const(hist(&[(7, 0, 4)]))),
        ])
        .unwrap()
        .eval()
        .unwrap()
    }

    /// "Historical relations are handled similarly to snapshot relations
    /// … The same relationship holds between rollback and temporal
    /// relations" (the §4 modify_state extension).
    #[test]
    fn historical_replaces_temporal_appends() {
        let d = tdb();
        assert_eq!(d.state.lookup("t").unwrap().versions().len(), 2);
        assert_eq!(d.state.lookup("h").unwrap().versions().len(), 1);
    }

    /// ρ̂ retrieves historical states by transaction time, exactly as ρ
    /// retrieves snapshot states.
    #[test]
    fn hrho_navigates_transaction_time() {
        let d = tdb();
        let v1 = Expr::hrollback("t", TxSpec::At(TransactionNumber(2)))
            .eval(&d)
            .unwrap()
            .into_historical()
            .unwrap();
        assert_eq!(v1, hist(&[(1, 0, 10)]));
        let v2 = Expr::hcurrent("t")
            .eval(&d)
            .unwrap()
            .into_historical()
            .unwrap();
        assert_eq!(v2.len(), 2);
    }

    /// Mixing the operator families across state kinds is ill-typed: ρ on
    /// temporal relations and ρ̂ on rollback relations are both illegal.
    #[test]
    fn the_operator_families_do_not_mix() {
        let d = tdb();
        assert!(matches!(
            Expr::current("t").eval(&d),
            Err(EvalError::RollbackTypeMismatch { .. })
        ));
        assert!(Expr::hcurrent("h")
            .hunion(Expr::historical_const(hist(&[(1, 0, 1)])))
            .eval(&d)
            .is_ok());
    }
}

mod section_5_related_work {
    use super::*;
    use txtime::benzvi::bridge;

    /// "The Time-View operator thus rolls back a relation to a
    /// transaction time but returns only a subset of the tuples in the
    /// relation at that transaction time (i.e., those tuples valid at
    /// some specified time)" — our ρ̂ subsumes it.
    #[test]
    fn time_view_is_a_slice_of_rho_hat() {
        let versions = vec![hist(&[(1, 0, 10)]), hist(&[(1, 0, 10), (2, 5, 20)])];
        let b = bridge::load(&versions);
        b.check_correspondence(25).unwrap();
    }
}
