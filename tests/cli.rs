//! Integration tests for the `txtime` CLI binary (run / recover / check).

use std::path::PathBuf;
use std::process::{Command, Output};

fn txtime(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_txtime"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn tmpdir() -> PathBuf {
    let dir = std::env::temp_dir().join("txtime-cli-tests");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    dir
}

fn write_script(name: &str, contents: &str) -> PathBuf {
    let path = tmpdir().join(format!("{}-{name}", std::process::id()));
    std::fs::write(&path, contents).expect("script written");
    path
}

const SCRIPT: &str = r#"
    define_relation(emp, rollback);
    modify_state(emp, {(name: str, sal: int): ("alice", 100), ("bob", 200)});
    modify_state(emp, rho(emp, inf) union {(name: str, sal: int): ("carol", 50)});
    display(project[name](select[sal > 60](rho(emp, inf))));
"#;

#[test]
fn run_executes_and_prints_displays() {
    let script = write_script("run.txq", SCRIPT);
    let out = txtime(&["run", script.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("alice"));
    assert!(stdout.contains("bob"));
    assert!(!stdout.contains("carol")); // filtered by sal > 60
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("clock at tx 3"));
    let _ = std::fs::remove_file(&script);
}

#[test]
fn run_supports_every_backend_flag() {
    let script = write_script("backends.txq", SCRIPT);
    for backend in ["full-copy", "fwd-delta", "rev-delta", "tuple-ts"] {
        let out = txtime(&["run", script.to_str().unwrap(), "--backend", backend]);
        assert!(out.status.success(), "backend {backend}");
    }
    let out = txtime(&["run", script.to_str().unwrap(), "--backend", "btree"]);
    assert!(!out.status.success());
    let _ = std::fs::remove_file(&script);
}

#[test]
fn run_reports_parse_errors_with_position() {
    let script = write_script("bad.txq", "define_relation(emp rollback);");
    let out = txtime(&["run", script.to_str().unwrap()]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("parse error"), "stderr: {stderr}");
    let _ = std::fs::remove_file(&script);
}

#[test]
fn wal_then_recover_round_trips() {
    let script = write_script("journal.txq", SCRIPT);
    let wal = tmpdir().join(format!("{}-journal.wal", std::process::id()));
    let _ = std::fs::remove_file(&wal);

    let out = txtime(&[
        "run",
        script.to_str().unwrap(),
        "--wal",
        wal.to_str().unwrap(),
        "--backend",
        "fwd-delta",
    ]);
    assert!(out.status.success());

    let out = txtime(&["recover", wal.to_str().unwrap()]);
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("recovered 3 commands"), "stderr: {stderr}");
    assert!(stderr.contains("emp: rollback (2 versions)"));

    let _ = std::fs::remove_file(&script);
    let _ = std::fs::remove_file(&wal);
}

#[test]
fn check_verifies_all_backends() {
    let script = write_script("check.txq", SCRIPT);
    let out = txtime(&["check", script.to_str().unwrap()]);
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    for backend in [
        "full-copy",
        "forward-delta",
        "reverse-delta",
        "tuple-timestamp",
    ] {
        assert!(
            stderr.contains(&format!("{backend}: ≡ reference semantics")),
            "stderr: {stderr}"
        );
    }
    let _ = std::fs::remove_file(&script);
}

#[test]
fn usage_on_bad_invocation() {
    let out = txtime(&[]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
    let out = txtime(&["run"]);
    assert!(!out.status.success());
}

#[test]
fn stats_reports_memo_and_interner_pools() {
    let script = write_script("stats.txq", SCRIPT);
    let out = txtime(&["stats", script.to_str().unwrap(), "--backend", "fwd-delta"]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    // Space and cache counters from earlier milestones still lead.
    assert!(stdout.contains("cache:"), "stdout: {stdout}");
    // View-memo counters and the hash-consed expression DAG footprint.
    assert!(stdout.contains("memo:"), "stdout: {stdout}");
    assert!(stdout.contains("hit rate"), "stdout: {stdout}");
    assert!(stdout.contains("expr interner:"), "stdout: {stdout}");
    // The delta backends expose their per-relation string pools.
    assert!(stdout.contains("pool:  emp:"), "stdout: {stdout}");
    assert!(stdout.contains("strings"), "stdout: {stdout}");
    let _ = std::fs::remove_file(&script);
}
