//! Integration tests for the `txtime` CLI binary (run / recover / check).

use std::path::PathBuf;
use std::process::{Command, Output};

fn txtime(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_txtime"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn tmpdir() -> PathBuf {
    let dir = std::env::temp_dir().join("txtime-cli-tests");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    dir
}

fn write_script(name: &str, contents: &str) -> PathBuf {
    let path = tmpdir().join(format!("{}-{name}", std::process::id()));
    std::fs::write(&path, contents).expect("script written");
    path
}

const SCRIPT: &str = r#"
    define_relation(emp, rollback);
    modify_state(emp, {(name: str, sal: int): ("alice", 100), ("bob", 200)});
    modify_state(emp, rho(emp, inf) union {(name: str, sal: int): ("carol", 50)});
    display(project[name](select[sal > 60](rho(emp, inf))));
"#;

#[test]
fn run_executes_and_prints_displays() {
    let script = write_script("run.txq", SCRIPT);
    let out = txtime(&["run", script.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("alice"));
    assert!(stdout.contains("bob"));
    assert!(!stdout.contains("carol")); // filtered by sal > 60
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("clock at tx 3"));
    let _ = std::fs::remove_file(&script);
}

#[test]
fn run_supports_every_backend_flag() {
    let script = write_script("backends.txq", SCRIPT);
    for backend in ["full-copy", "fwd-delta", "rev-delta", "tuple-ts"] {
        let out = txtime(&["run", script.to_str().unwrap(), "--backend", backend]);
        assert!(out.status.success(), "backend {backend}");
    }
    let out = txtime(&["run", script.to_str().unwrap(), "--backend", "btree"]);
    assert!(!out.status.success());
    let _ = std::fs::remove_file(&script);
}

#[test]
fn run_reports_parse_errors_with_position() {
    let script = write_script("bad.txq", "define_relation(emp rollback);");
    let out = txtime(&["run", script.to_str().unwrap()]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("parse error"), "stderr: {stderr}");
    let _ = std::fs::remove_file(&script);
}

#[test]
fn wal_then_recover_round_trips() {
    let script = write_script("journal.txq", SCRIPT);
    let wal = tmpdir().join(format!("{}-journal.wal", std::process::id()));
    let _ = std::fs::remove_file(&wal);

    let out = txtime(&[
        "run",
        script.to_str().unwrap(),
        "--wal",
        wal.to_str().unwrap(),
        "--backend",
        "fwd-delta",
    ]);
    assert!(out.status.success());

    let out = txtime(&["recover", wal.to_str().unwrap()]);
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("recovered 3 commands"), "stderr: {stderr}");
    assert!(stderr.contains("emp: rollback (2 versions)"));

    let _ = std::fs::remove_file(&script);
    let _ = std::fs::remove_file(&wal);
}

#[test]
fn check_verifies_all_backends() {
    let script = write_script("check.txq", SCRIPT);
    let out = txtime(&["check", script.to_str().unwrap()]);
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    for backend in [
        "full-copy",
        "forward-delta",
        "reverse-delta",
        "tuple-timestamp",
    ] {
        assert!(
            stderr.contains(&format!("{backend}: ≡ reference semantics")),
            "stderr: {stderr}"
        );
    }
    let _ = std::fs::remove_file(&script);
}

/// A script that checks clean but trips W001 (contradictory select) and
/// W021 (relation written then deleted, never read).
const WARNED: &str = r#"
    define_relation(emp, rollback);
    modify_state(emp, {(name: str, sal: int): ("alice", 100), ("bob", 200)});
    display(select[sal > 100 and sal < 60](rho(emp, inf)));
    define_relation(tmp, rollback);
    modify_state(tmp, {(x: int): (1)});
    delete_relation(tmp);
"#;

#[test]
fn check_lint_warns_but_exits_zero() {
    let script = write_script("lint-warn.txq", WARNED);
    let out = txtime(&["check", script.to_str().unwrap(), "--lint"]);
    assert!(
        out.status.success(),
        "warnings alone must not fail the check: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("warning[W001]"), "stderr: {stderr}");
    assert!(stderr.contains("warning[W021]"), "stderr: {stderr}");
    assert!(stderr.contains("lint: 2 warning(s)"), "stderr: {stderr}");
    let _ = std::fs::remove_file(&script);
}

#[test]
fn check_deny_warnings_exits_nonzero() {
    let script = write_script("lint-deny.txq", WARNED);
    let out = txtime(&["check", script.to_str().unwrap(), "--deny-warnings"]);
    assert!(
        !out.status.success(),
        "--deny-warnings must fail on a warned script"
    );
    // The warnings are still printed so the user can see what to fix.
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("warning[W001]"), "stderr: {stderr}");
    let _ = std::fs::remove_file(&script);
}

#[test]
fn check_without_lint_ignores_warnings() {
    let script = write_script("lint-off.txq", WARNED);
    let out = txtime(&["check", script.to_str().unwrap()]);
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!stderr.contains("warning[W"), "stderr: {stderr}");
    let _ = std::fs::remove_file(&script);
}

#[test]
fn check_deny_warnings_still_reports_errors_first() {
    // An erroring script under --deny-warnings fails for the E-series
    // diagnostic, not the lint.
    let script = write_script("lint-err.txq", "display(rho(ghost, inf));");
    let out = txtime(&["check", script.to_str().unwrap(), "--deny-warnings"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("error[E"), "stderr: {stderr}");
    let _ = std::fs::remove_file(&script);
}

#[test]
fn run_lint_prints_warnings_and_still_executes() {
    let script = write_script("lint-run.txq", WARNED);
    let out = txtime(&["run", script.to_str().unwrap(), "--lint"]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("warning[W001]"), "stderr: {stderr}");
    // The provably-∅ display still ran and printed an empty state.
    assert!(stderr.contains("clock at tx"), "stderr: {stderr}");
    let _ = std::fs::remove_file(&script);
}

#[test]
fn bundled_example_scripts_pass_strict_lint() {
    // The CI gate in words: every checked-in example script must parse,
    // check, and lint clean under --deny-warnings on every backend.
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("examples/scripts");
    let mut seen = 0;
    for entry in std::fs::read_dir(dir).expect("scripts directory exists") {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("txq") {
            continue;
        }
        seen += 1;
        let out = txtime(&["check", path.to_str().unwrap(), "--lint", "--deny-warnings"]);
        assert!(
            out.status.success(),
            "{}: {}",
            path.display(),
            String::from_utf8_lossy(&out.stderr)
        );
    }
    assert!(seen >= 3, "expected the bundled scripts, found {seen}");
}

#[test]
fn usage_on_bad_invocation() {
    let out = txtime(&[]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
    let out = txtime(&["run"]);
    assert!(!out.status.success());
}

#[test]
fn stats_reports_shard_layout_and_compact_folds_chains() {
    let script = write_script("shards.txq", SCRIPT);
    // --shards 4 partitions emp across 4 chains; stats shows one row per
    // shard plus the compaction counters.
    let out = txtime(&[
        "stats",
        script.to_str().unwrap(),
        "--backend",
        "rev-delta",
        "--shards",
        "4",
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("shards: emp: 4 shard(s)"),
        "stdout: {stdout}"
    );
    assert!(stdout.contains("shard  3:"), "stdout: {stdout}");
    assert!(stdout.contains("compaction:"), "stdout: {stdout}");

    // compact folds the (tiny) chain and reports the pass. `--shards 1`
    // is explicit so a `TXTIME_SHARDS` in the environment (the CI shard
    // leg) cannot change the expected layout.
    let out = txtime(&[
        "compact",
        script.to_str().unwrap(),
        "--backend",
        "rev-delta",
        "--checkpoint",
        "0",
        "--every",
        "1",
        "--shards",
        "1",
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("compacted every 1 versions:"),
        "stdout: {stdout}"
    );
    assert!(stdout.contains("run(s)"), "stdout: {stdout}");
    assert!(
        stdout.contains("shards: emp: 1 shard(s)"),
        "stdout: {stdout}"
    );
    let _ = std::fs::remove_file(&script);
}

#[test]
fn stats_reports_memo_and_interner_pools() {
    let script = write_script("stats.txq", SCRIPT);
    let out = txtime(&["stats", script.to_str().unwrap(), "--backend", "fwd-delta"]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    // Space and cache counters from earlier milestones still lead.
    assert!(stdout.contains("cache:"), "stdout: {stdout}");
    // View-memo counters and the hash-consed expression DAG footprint.
    assert!(stdout.contains("memo:"), "stdout: {stdout}");
    assert!(stdout.contains("hit rate"), "stdout: {stdout}");
    assert!(stdout.contains("expr interner:"), "stdout: {stdout}");
    // The delta backends expose their per-relation string pools.
    assert!(stdout.contains("pool:  emp:"), "stdout: {stdout}");
    assert!(stdout.contains("strings"), "stdout: {stdout}");
    let _ = std::fs::remove_file(&script);
}

/// A product-heavy script: the shape the cost-based searcher rewrites
/// into a filtered join (conjuncts split across the product's operands).
const PRODUCT: &str = r#"
    define_relation(emp, rollback);
    modify_state(emp, {(name: str, sal: int): ("alice", 50), ("bob", 70)});
    define_relation(dept, rollback);
    modify_state(dept, {(dno: int): (1), (2)});
    display(select[sal > 60 and dno < 2](rho(emp, inf) times rho(dept, inf)));
"#;

#[test]
fn explain_prints_costed_plan_and_rewrites() {
    let script = write_script("explain.txq", PRODUCT);
    let out = txtime(&["explain", script.to_str().unwrap(), "--optimize", "2"]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    // The chosen tree, with per-node cardinality/cost annotations.
    assert!(
        stdout.contains("plan (optimize level 2):"),
        "stdout: {stdout}"
    );
    assert!(stdout.contains("rho(emp, inf)"), "stdout: {stdout}");
    assert!(stdout.contains("rows≈"), "stdout: {stdout}");
    assert!(stdout.contains("cost≈"), "stdout: {stdout}");
    // The searcher split the conjunction across the product and says so.
    assert!(
        stdout.contains("select-through-product"),
        "stdout: {stdout}"
    );
    assert!(stdout.contains("estimated rows:"), "stdout: {stdout}");
    // Plans, not states: the display's tuples are never printed.
    assert!(!stdout.contains("alice"), "stdout: {stdout}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("1 plan(s) explained at optimize level 2"),
        "stderr: {stderr}"
    );
    let _ = std::fs::remove_file(&script);
}

#[test]
fn explain_levels_change_the_printed_plan() {
    let script = write_script("explain-levels.txq", PRODUCT);
    // Level 0 explains the query exactly as written: σ over ×.
    let out = txtime(&["explain", script.to_str().unwrap(), "--optimize", "0"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("plan (optimize level 0):"),
        "stdout: {stdout}"
    );
    assert!(
        stdout.contains("rewrites: none (original plan kept)"),
        "stdout: {stdout}"
    );
    // Levels above 2 are rejected up front.
    let out = txtime(&["explain", script.to_str().unwrap(), "--optimize", "3"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--optimize takes"), "stderr: {stderr}");
    let _ = std::fs::remove_file(&script);
}

#[test]
fn explain_honors_check_and_lint_flags() {
    // A script that fails the static checker: explain refuses...
    let script = write_script("explain-bad.txq", "display(rho(ghost, inf));");
    let out = txtime(&["explain", script.to_str().unwrap()]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("static check failed"), "stderr: {stderr}");
    // ...unless --no-check forces it; the plan is still printable since
    // explain estimates rather than evaluates.
    let out = txtime(&["explain", script.to_str().unwrap(), "--no-check"]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("rho(ghost, inf)"), "stdout: {stdout}");
    let _ = std::fs::remove_file(&script);

    // Warned scripts explain fine, but --deny-warnings is fatal.
    let script = write_script("explain-warned.txq", WARNED);
    let out = txtime(&["explain", script.to_str().unwrap(), "--lint"]);
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("warning[W001]"), "stderr: {stderr}");
    let out = txtime(&["explain", script.to_str().unwrap(), "--deny-warnings"]);
    assert!(!out.status.success());
    let _ = std::fs::remove_file(&script);
}

#[test]
fn stats_reports_optimizer_counters() {
    let script = write_script("optim-stats.txq", PRODUCT);
    let out = txtime(&["stats", script.to_str().unwrap(), "--optimize", "2"]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("optim: level 2"), "stdout: {stdout}");
    assert!(stdout.contains("search(es)"), "stdout: {stdout}");
    assert!(stdout.contains("rewrite(s) fired"), "stdout: {stdout}");
    // Levels 0/1 keep the line (house style: every subsystem reports).
    let out = txtime(&["stats", script.to_str().unwrap(), "--optimize", "1"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("optim: level 1"), "stdout: {stdout}");
    let _ = std::fs::remove_file(&script);
}

/// An equi-join script: the cross-operand key `sal = dno` is exactly
/// the σ(×) shape the searcher lowers to a physical hash join. Three
/// rows a side, because at 2×2 the join's build+probe cost ties the
/// product's row count and the searcher keeps the original plan.
const EQUIJOIN: &str = r#"
    define_relation(emp, rollback);
    modify_state(emp, {(name: str, sal: int): ("alice", 1), ("bob", 2), ("carol", 3)});
    define_relation(dept, rollback);
    modify_state(dept, {(dno: int): (1), (3), (4)});
    display(select[sal = dno](rho(emp, inf) times rho(dept, inf)));
"#;

#[test]
fn explain_lowers_equi_select_to_physical_join() {
    let script = write_script("explain-join.txq", EQUIJOIN);
    let out = txtime(&["explain", script.to_str().unwrap(), "--optimize", "2"]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    // The chosen plan is a physical join node with labeled sides, not a
    // filtered product; the lowering rule announces itself.
    assert!(stdout.contains("join[hash"), "stdout: {stdout}");
    assert!(
        stdout.contains("build=right, probe=left"),
        "stdout: {stdout}"
    );
    assert!(stdout.contains("select-to-hash-join"), "stdout: {stdout}");
    // Level 0 explains the query exactly as written: σ over ×, no join.
    let out = txtime(&["explain", script.to_str().unwrap(), "--optimize", "0"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(!stdout.contains("join["), "stdout: {stdout}");
    assert!(stdout.contains("times"), "stdout: {stdout}");
    let _ = std::fs::remove_file(&script);
}

#[test]
fn stats_reports_join_counters() {
    let script = write_script("join-stats.txq", EQUIJOIN);
    let out = txtime(&["stats", script.to_str().unwrap(), "--optimize", "2"]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    // The display query lowered to one hash join; the gauges record the
    // build/probe sides it actually ran with.
    assert!(stdout.contains("joins: 1 ("), "stdout: {stdout}");
    assert!(stdout.contains("build rows"), "stdout: {stdout}");
    assert!(stdout.contains("probe rows"), "stdout: {stdout}");
    // Without the searcher the σ(×) shape never becomes a join, and the
    // gauge stays at zero (house style: the line itself still prints).
    let out = txtime(&["stats", script.to_str().unwrap(), "--optimize", "1"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("joins: 0 ("), "stdout: {stdout}");
    let _ = std::fs::remove_file(&script);
}

#[test]
fn auto_compact_flag_rejects_zero_and_garbage() {
    let script = write_script("auto-compact.txq", SCRIPT);
    let out = txtime(&["run", script.to_str().unwrap(), "--auto-compact", "0"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("auto-compact threshold must be at least 1"),
        "stderr: {stderr}"
    );
    let out = txtime(&["run", script.to_str().unwrap(), "--auto-compact", "soon"]);
    assert!(!out.status.success());
    // A valid threshold is accepted and the run succeeds.
    let out = txtime(&["run", script.to_str().unwrap(), "--auto-compact", "2"]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let _ = std::fs::remove_file(&script);
}

#[test]
fn serve_requires_a_bindable_listen_address() {
    // An unparseable listen address fails fast with a clear error
    // instead of hanging a server.
    let out = txtime(&["serve", "--listen", "not-an-address"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cannot bind"), "stderr: {stderr}");
}

#[test]
fn stats_addr_reports_unreachable_server() {
    // --addr with nothing listening is a connection error, not a hang
    // (port 1 is reserved and never bound in the test environment).
    let out = txtime(&["stats", "--addr", "127.0.0.1:1"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cannot query"), "stderr: {stderr}");
}
