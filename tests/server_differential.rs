//! The concurrent-session differential suite: N sessions running an
//! interleaved mix of reads and writes must be observationally identical
//! — values AND errors — to *some* sequential ordering of the same
//! commands (the paper's §3.2 claim 4: concurrency is legal exactly when
//! its effect equals sequential update with monotonically increasing
//! transaction numbers).
//!
//! The oracle is constructed from the server's own acks: every acked
//! write carries its commit-time transaction number, so replaying the
//! acked writes in tx order on a fresh single-threaded engine *is* the
//! sequential ordering the server claims to have implemented. The suite
//! then checks, across memo on/off × 1/4 shards × every backend:
//!
//! * every version of every relation matches the oracle's (the full
//!   rollback history, not just the final state);
//! * every concurrent read returned a state the oracle actually passed
//!   through (reads are consistent with some prefix);
//! * scripted error commands failed identically on server and oracle.

use std::net::TcpListener;
use std::sync::{Arc, Barrier, Mutex};

use txtime::core::{Expr, TransactionNumber, TxSpec};
use txtime::server::{serve, Client, Response, ServerConfig};
use txtime::storage::{BackendKind, CheckpointPolicy, Engine};

const SESSIONS: usize = 4;
const ROUNDS: usize = 4;

/// One session's observation log: the command text sent and the parsed
/// response, in order.
type Log = Vec<(String, Response)>;

fn ack_tx(resp: &Response) -> Option<u64> {
    match resp {
        Response::Ok(detail) => detail
            .split_whitespace()
            .find_map(|tok| tok.strip_prefix("tx=")?.parse().ok()),
        _ => None,
    }
}

/// Drives `SESSIONS` concurrent sessions through an interleaved script
/// against a freshly configured server; returns the per-session logs and
/// the server's final engine.
fn run_server(backend: BackendKind, memo: bool, shards: usize) -> (Vec<Log>, Engine) {
    let mut engine = Engine::new(backend, CheckpointPolicy::every_k(4).unwrap());
    engine.set_shards(shards);
    engine.set_memo_capacity(if memo { 256 } else { 0 });
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let handle = serve(engine, listener, ServerConfig::default()).expect("server starts");
    let addr = handle.addr();

    let barrier = Arc::new(Barrier::new(SESSIONS));
    let logs: Arc<Mutex<Vec<Log>>> = Arc::new(Mutex::new(vec![Vec::new(); SESSIONS]));
    let workers: Vec<_> = (0..SESSIONS)
        .map(|i| {
            let barrier = barrier.clone();
            let logs = logs.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).expect("connect");
                let mut log = Log::new();
                let send = |c: &mut Client, log: &mut Log, cmd: String| {
                    let resp = c.exec(&cmd).expect("request survives");
                    log.push((cmd, resp));
                };
                // Private setup: disjoint relations, no interleaving
                // hazards.
                send(&mut c, &mut log, format!("define_relation(p{i}, rollback);"));
                send(
                    &mut c,
                    &mut log,
                    format!("modify_state(p{i}, {{(x: int): ({i})}});"),
                );
                // Session 0 owns the shared relation's definition and
                // seed; everyone synchronizes before touching it.
                if i == 0 {
                    send(&mut c, &mut log, "define_relation(shared, rollback);".into());
                    send(
                        &mut c,
                        &mut log,
                        "modify_state(shared, {(s: int, v: int): (99, 99)});".into(),
                    );
                }
                barrier.wait();
                // The contended phase: every session appends to the
                // shared relation, reads it back, reads its private
                // relation, and fires a deterministic error.
                for round in 0..ROUNDS {
                    send(
                        &mut c,
                        &mut log,
                        format!(
                            "modify_state(shared, rho(shared, inf) union {{(s: int, v: int): ({i}, {round})}});"
                        ),
                    );
                    send(&mut c, &mut log, "display(rho(shared, inf));".into());
                    send(&mut c, &mut log, format!("display(rho(p{i}, inf));"));
                    // `nosuch` is never defined by any session, so this
                    // check error is interleave-independent.
                    send(&mut c, &mut log, "display(rho(nosuch, inf));".into());
                }
                assert!(c.request("QUIT").expect("quit").is_ok());
                logs.lock().unwrap()[i] = log;
            })
        })
        .collect();
    for w in workers {
        w.join().expect("session panicked");
    }
    handle.shutdown();
    let report = handle.wait();
    let logs = Arc::try_unwrap(logs).unwrap().into_inner().unwrap();
    (logs, report.engine)
}

/// Replays the acked writes in commit-clock order on a fresh engine of
/// the same configuration — the sequential oracle.
fn replay_oracle(backend: BackendKind, memo: bool, shards: usize, logs: &[Log]) -> Engine {
    let mut writes: Vec<(u64, &str)> = Vec::new();
    for log in logs {
        for (cmd, resp) in log {
            if let Some(tx) = ack_tx(resp) {
                writes.push((tx, cmd));
            }
        }
    }
    writes.sort_by_key(|(tx, _)| *tx);
    // The commit clocks the sessions saw form one gapless monotone
    // sequence — claim 4's "monotonically increasing transaction time".
    let clocks: Vec<TransactionNumber> = writes
        .iter()
        .map(|(tx, _)| TransactionNumber(*tx))
        .collect();
    assert!(
        txtime::txn::is_monotone(&clocks),
        "acked commit clocks are not monotone: {clocks:?}"
    );
    assert_eq!(
        clocks.first(),
        Some(&TransactionNumber(1)),
        "history does not start at tx 1"
    );
    assert_eq!(
        clocks.last().map(|t| t.0),
        Some(writes.len() as u64),
        "gaps in the acked commit clocks"
    );

    let mut oracle = Engine::new(backend, CheckpointPolicy::every_k(4).unwrap());
    oracle.set_shards(shards);
    oracle.set_memo_capacity(if memo { 256 } else { 0 });
    for (tx, cmd) in &writes {
        let script = format!("{cmd}\n");
        oracle
            .execute_script(&script)
            .unwrap_or_else(|e| panic!("oracle replay failed at tx {tx} ({cmd}): {e}"));
        assert_eq!(oracle.tx().0, *tx, "oracle clock diverged at {cmd}");
    }
    oracle
}

fn rendered(engine: &Engine, expr: &Expr) -> Result<String, String> {
    engine
        .eval(expr)
        .map(|s| s.to_string())
        .map_err(|e| e.to_string())
}

fn assert_differential(backend: BackendKind, memo: bool, shards: usize) {
    let label = format!("{backend} memo={memo} shards={shards}");
    let (logs, server_engine) = run_server(backend, memo, shards);
    let oracle = replay_oracle(backend, memo, shards, &logs);

    // 1. The full version history of every relation matches: server and
    //    oracle agree on ρ(r, t) — value or error — for every t.
    let final_tx = oracle.tx().0;
    assert_eq!(server_engine.tx().0, final_tx, "[{label}] clock mismatch");
    let mut relations = server_engine.relations();
    relations.sort_unstable();
    let mut oracle_relations = oracle.relations();
    oracle_relations.sort_unstable();
    assert_eq!(relations, oracle_relations, "[{label}] catalog mismatch");
    for rel in &relations {
        for t in 0..=final_tx {
            let at = Expr::rollback(*rel, TxSpec::At(TransactionNumber(t)));
            assert_eq!(
                rendered(&server_engine, &at),
                rendered(&oracle, &at),
                "[{label}] version divergence at rho({rel}, {t})"
            );
        }
    }

    // 2. Every concurrent read of the shared relation returned a state
    //    the sequential oracle actually passes through.
    let shared_versions: Vec<String> = (0..=final_tx)
        .filter_map(|t| {
            rendered(
                &oracle,
                &Expr::rollback("shared", TxSpec::At(TransactionNumber(t))),
            )
            .ok()
        })
        .collect();
    for (i, log) in logs.iter().enumerate() {
        for (cmd, resp) in log {
            if cmd != "display(rho(shared, inf));" {
                continue;
            }
            match resp {
                Response::Val(state) => assert!(
                    shared_versions.iter().any(|v| v == state),
                    "[{label}] session {i} read a state outside the sequential history: {state}"
                ),
                other => panic!("[{label}] shared read failed: {other:?}"),
            }
        }
    }

    // 3. Error parity: the scripted failing reads erred identically on
    //    both sides (kind and diagnostic), and nothing else erred.
    let oracle_nosuch =
        rendered(&oracle, &Expr::current("nosuch")).expect_err("oracle accepts undefined relation");
    for (i, log) in logs.iter().enumerate() {
        for (cmd, resp) in log {
            if cmd == "display(rho(nosuch, inf));" {
                match resp {
                    Response::Err { kind, message } => {
                        assert_eq!(kind, "check", "[{label}] wrong error class");
                        assert!(
                            message.contains("E001") && message.contains("nosuch"),
                            "[{label}] diagnostic mismatch: {message}"
                        );
                    }
                    other => panic!(
                        "[{label}] session {i} error divergence: {cmd} got {other:?}, oracle said {oracle_nosuch}"
                    ),
                }
            } else {
                assert!(
                    resp.is_ok(),
                    "[{label}] session {i} unexpected failure on {cmd}: {resp:?}"
                );
            }
        }
    }
}

#[test]
fn full_copy_matches_sequential_oracle() {
    for memo in [true, false] {
        for shards in [1, 4] {
            assert_differential(BackendKind::FullCopy, memo, shards);
        }
    }
}

#[test]
fn forward_delta_matches_sequential_oracle() {
    for memo in [true, false] {
        for shards in [1, 4] {
            assert_differential(BackendKind::ForwardDelta, memo, shards);
        }
    }
}

#[test]
fn reverse_delta_matches_sequential_oracle() {
    for memo in [true, false] {
        for shards in [1, 4] {
            assert_differential(BackendKind::ReverseDelta, memo, shards);
        }
    }
}

#[test]
fn tuple_timestamp_matches_sequential_oracle() {
    for memo in [true, false] {
        for shards in [1, 4] {
            assert_differential(BackendKind::TupleTimestamp, memo, shards);
        }
    }
}
