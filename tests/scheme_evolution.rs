//! Scheme evolution end-to-end: "changes to the scheme are properly the
//! province of transaction time" (§5).
//!
//! A relation's scheme changes over transaction time; past versions keep
//! their old schemes and stay reachable by ρ. This must hold identically
//! in the reference semantics and in every storage engine (the
//! tuple-timestamp backend handles it with scheme epochs).

use txtime::core::prelude::*;
use txtime::core::{SchemeChange, StateSource};
use txtime::optimizer::SchemaCatalog;
use txtime::parser::parse_sentence;
use txtime::snapshot::{DomainType, Value};
use txtime::storage::{check_equivalence, BackendKind, CheckpointPolicy, Engine};

const SCRIPT: &str = r#"
    define_relation(emp, rollback);
    modify_state(emp, {(name: str, sal: int): ("alice", 100), ("bob", 200)});
    -- grow the scheme: everyone gets a department, defaulted.
    evolve_scheme(emp, add dept: str default "unassigned");
    modify_state(emp,
        (rho(emp, inf) minus {(name: str, sal: int, dept: str): ("alice", 100, "unassigned")})
        union {(name: str, sal: int, dept: str): ("alice", 100, "cs")});
    -- rename, then shrink.
    evolve_scheme(emp, rename sal to salary);
    evolve_scheme(emp, drop salary);
"#;

#[test]
fn evolution_history_is_fully_reachable() {
    let db = parse_sentence(SCRIPT).unwrap().eval().unwrap();
    let versions = db.state.lookup("emp").unwrap().versions();
    assert_eq!(versions.len(), 5);

    // Each version's scheme reflects the evolution step that created it.
    let schemes: Vec<Vec<String>> = versions
        .iter()
        .map(|v| {
            v.state
                .as_snapshot()
                .unwrap()
                .schema()
                .attributes()
                .iter()
                .map(|a| a.name.to_string())
                .collect()
        })
        .collect();
    assert_eq!(schemes[0], vec!["name", "sal"]);
    assert_eq!(schemes[1], vec!["name", "sal", "dept"]);
    assert_eq!(schemes[2], vec!["name", "sal", "dept"]);
    assert_eq!(schemes[3], vec!["name", "salary", "dept"]);
    assert_eq!(schemes[4], vec!["name", "dept"]);

    // Old-scheme queries still run against old versions.
    let old = Expr::rollback("emp", TxSpec::At(TransactionNumber(2)))
        .select(txtime::snapshot::Predicate::gt_const(
            "sal",
            Value::Int(150),
        ))
        .eval(&db)
        .unwrap()
        .into_snapshot()
        .unwrap();
    assert_eq!(old.len(), 1);

    // New-scheme queries run against the present.
    let now = Expr::current("emp")
        .select(txtime::snapshot::Predicate::eq_const(
            "dept",
            Value::str("cs"),
        ))
        .eval(&db)
        .unwrap()
        .into_snapshot()
        .unwrap();
    assert_eq!(now.len(), 1);
    assert!(!now.schema().contains("sal"));
}

#[test]
fn engines_agree_with_reference_under_evolution() {
    let sentence = parse_sentence(SCRIPT).unwrap();
    for backend in BackendKind::ALL {
        check_equivalence(
            sentence.commands(),
            backend,
            CheckpointPolicy::every_k(2).unwrap(),
        )
        .unwrap_or_else(|e| panic!("{backend}: {e}"));
    }
}

#[test]
fn catalog_refuses_unstable_schemes_for_optimization() {
    let db = parse_sentence(SCRIPT).unwrap().eval().unwrap();
    let catalog = SchemaCatalog::from_database(&db);
    // emp's scheme varied across versions, so scheme-sensitive rewrites
    // must be disabled for it.
    assert!(catalog.get("emp").is_none());
}

#[test]
fn evolution_on_historical_relations() {
    let mut engine = Engine::new(BackendKind::TupleTimestamp, CheckpointPolicy::Never);
    engine
        .execute_script(
            r#"
            define_relation(h, temporal);
            modify_state(h, historical {(name: str): ("alice") @ {[0, 10)}});
            "#,
        )
        .unwrap();
    engine
        .execute(&Command::evolve_scheme(
            "h",
            SchemeChange::AddAttribute {
                name: "grade".into(),
                domain: DomainType::Int,
                default: Value::Int(0),
            },
        ))
        .unwrap();

    // The evolved version carries the new attribute; the old one doesn't.
    let new = engine
        .resolve_rollback("h", TxSpec::Current, true)
        .unwrap()
        .into_historical()
        .unwrap();
    assert!(new.schema().contains("grade"));
    let old = engine
        .resolve_rollback("h", TxSpec::At(TransactionNumber(2)), true)
        .unwrap()
        .into_historical()
        .unwrap();
    assert!(!old.schema().contains("grade"));
    // Valid times survived the evolution.
    assert_eq!(new.iter().next().unwrap().1.first(), Some(0));
}

#[test]
fn evolution_survives_archival() {
    let mut engine = Engine::new(
        BackendKind::ForwardDelta,
        CheckpointPolicy::every_k(2).unwrap(),
    );
    let sentence = parse_sentence(SCRIPT).unwrap();
    for c in sentence.commands() {
        engine.execute(c).unwrap();
    }
    // Archive everything older than the rename (tx 5).
    let report = engine
        .archive_before("emp", TransactionNumber(5), None)
        .unwrap();
    assert_eq!(report.archived, 3);
    // The renamed and dropped versions still answer with their schemes.
    let renamed = engine
        .resolve_rollback("emp", TxSpec::At(TransactionNumber(5)), false)
        .unwrap()
        .into_snapshot()
        .unwrap();
    assert!(renamed.schema().contains("salary"));
    let current = engine
        .resolve_rollback("emp", TxSpec::Current, false)
        .unwrap()
        .into_snapshot()
        .unwrap();
    assert!(!current.schema().contains("salary"));
}
